"""Partition pruning — zone maps skip whole files, wall clock included.

An N-file date-range sweep: one month of daily CSV files declared as a
single partitioned table (``partition_by 'd from filename'``), probed
with range predicates of growing width. The zone maps prune every file
outside the window, so both the virtual clock and the *real* Python
wall clock drop roughly in proportion to the window — the point of the
tentpole: pruning is not a counter trick, the interpreter genuinely
never touches the skipped files.

The smoke case (CI tripwire) asserts the two load-bearing facts on a
small table: the scanned-file counter collapses to the window size,
and a cold pruned scan is measurably faster in wall-clock terms than
the same rows scanned without any pruning opportunity.
"""

import random
import time

from figshared import header, table

from repro import PostgresRaw, PostgresRawConfig, VirtualFS

DAYS = 30
ROWS_PER_DAY = 400


def _day_lines(rng, day: str, rows: int) -> bytes:
    return "".join(
        f"{day},{rng.randrange(100000)},{rng.uniform(0, 100):.3f}\n"
        for _ in range(rows)).encode()


def build_partitioned(days=DAYS, rows=ROWS_PER_DAY, workers=1):
    rng = random.Random(31)
    vfs = VirtualFS()
    for day in range(1, days + 1):
        stamp = f"2024-06-{day:02d}"
        vfs.create(f"d-{stamp}.csv", _day_lines(rng, stamp, rows))
    db = PostgresRaw(vfs=vfs, config=PostgresRawConfig(
        scan_workers=workers))
    db.query("CREATE TABLE ev (d DATE, uid INTEGER, v FLOAT) USING csv "
             "OPTIONS (path 'd-*.csv', partition_by 'd from filename')")
    return db


def build_unpartitioned(days=DAYS, rows=ROWS_PER_DAY, workers=1):
    """Same rows, same file layout — but no partition_by, so a cold
    engine has no zone maps and every file must be scanned."""
    rng = random.Random(31)
    vfs = VirtualFS()
    for day in range(1, days + 1):
        stamp = f"2024-06-{day:02d}"
        vfs.create(f"d-{stamp}.csv", _day_lines(rng, stamp, rows))
    db = PostgresRaw(vfs=vfs, config=PostgresRawConfig(
        scan_workers=workers))
    db.query("CREATE TABLE ev (d DATE, uid INTEGER, v FLOAT) USING csv "
             "OPTIONS (path 'd-*.csv')")
    return db


def range_sql(width: int) -> str:
    return (f"SELECT count(*), sum(v) FROM ev WHERE d BETWEEN "
            f"DATE '2024-06-01' AND DATE '2024-06-{width:02d}'")


def timed_cold(build, sql):
    db = build()
    start = time.perf_counter()
    result = db.query(sql)
    return time.perf_counter() - start, result


def test_partition_pruning_smoke(benchmark):
    """CI tripwire: the counters collapse to the window and the cold
    wall clock actually improves."""
    width = 3
    sql = range_sql(width)
    pruned_wall, pruned = timed_cold(build_partitioned, sql)
    full_wall, full = timed_cold(build_unpartitioned, sql)

    assert pruned.rows == full.rows
    assert pruned.counters["files_scanned"] == width
    assert pruned.counters["files_pruned"] == DAYS - width
    assert full.counters["files_scanned"] == DAYS
    assert "files_pruned" not in full.counters
    # 3 files of work vs 30: demand a clear real-time win, with slack
    # for interpreter noise on loaded CI boxes.
    assert pruned_wall < full_wall * 0.6, (
        f"pruned cold scan {pruned_wall * 1e3:.1f}ms not clearly under "
        f"unpruned {full_wall * 1e3:.1f}ms")

    header("Partition pruning smoke (cold, wall clock)",
           f"{DAYS} daily files, {width}-day window")
    table(["variant", "cold ms", "files scanned", "virtual s"],
          [["partitioned", pruned_wall * 1e3,
            pruned.counters["files_scanned"], pruned.elapsed],
           ["unpartitioned", full_wall * 1e3,
            full.counters["files_scanned"], full.elapsed]])

    benchmark.pedantic(lambda: build_partitioned().query(sql),
                       rounds=2, iterations=1)


def test_date_range_sweep():
    """Window sweep: scanned files, virtual seconds and wall clock all
    track the window width, not the table size."""
    rows = []
    for width in (1, 3, 7, 15, 30):
        sql = range_sql(width)
        wall, result = timed_cold(build_partitioned, sql)
        assert result.counters["files_scanned"] == width
        assert result.counters.get("files_pruned", 0) == DAYS - width
        rows.append([f"{width}d", result.counters["files_scanned"],
                     result.counters.get("files_pruned", 0),
                     wall * 1e3, result.elapsed])
    header("Date-range sweep over a 30-file month",
           "pruning scales with the predicate window")
    table(["window", "scanned", "pruned", "cold ms", "virtual s"], rows)
    # Virtual time must scale ~linearly with the window too.
    assert rows[0][4] < rows[-1][4] / 10
