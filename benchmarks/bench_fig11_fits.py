"""Figure 11 — PostgresRaw on FITS files vs a custom CFITSIO program.

Paper setup (§5.3): a 12 GB FITS file with a binary table of ~4.3M rows
(wide, survey-style); queries are MIN/MAX/AVG aggregates over float
columns; the comparator is a hand-written C program using CFITSIO.
Both enjoy a warm filesystem cache. Claims:

* CFITSIO's time is nearly constant — it must scan the whole file for
  every query;
* PostgresRaw gains after the first query (caches built);
* within ~10 queries PostgresRaw's cumulative data-to-query time drops
  below CFITSIO's;
* each CFITSIO query is a bespoke C program; PostgresRaw takes SQL.
"""

import random
import statistics

from figshared import header, table

from repro import CFitsioProgram, PostgresRaw, VirtualFS
from repro.formats.fits import write_bintable

ROWS = 2000
N_BANDS = 295   # wide survey table (12 GB / 4.3M rows ~ 2.8 KB/row in
                # the paper): queries touch few of many columns
QUERIES = [("min", "mag"), ("max", "mag"), ("avg", "mag"),
           ("avg", "z"), ("min", "z"), ("max", "z"),
           ("avg", "mag"), ("min", "mag"), ("avg", "z"), ("max", "z")]


def build_file(vfs):
    rng = random.Random(42)
    names = (["obj_id", "ra", "dec", "mag", "z"]
             + [f"flux_{i}" for i in range(N_BANDS)])
    tforms = ["K", "D", "D", "D", "D"] + ["D"] * N_BANDS
    rows = [
        (i, rng.uniform(0, 360), rng.uniform(-90, 90),
         rng.uniform(12, 25), rng.uniform(0, 3.5),
         *(rng.uniform(0, 100) for _ in range(N_BANDS)))
        for i in range(ROWS)
    ]
    vfs.create("survey.fits", write_bintable(names, tforms, rows))


def run_pair():
    vfs = VirtualFS()
    build_file(vfs)
    # Warm the filesystem cache, as the paper does ("the file system
    # caches are warm" — otherwise both pay ~16 s extra on Q1).
    warmup = CFitsioProgram(vfs, "survey.fits")
    warmup.aggregate("min", "mag")

    program = CFitsioProgram(vfs, "survey.fits")
    engine = PostgresRaw(vfs=vfs)
    engine.register_fits("survey", "survey.fits")

    cfitsio_times, raw_times = [], []
    for func, column in QUERIES:
        answer = program.aggregate(func, column)
        result = engine.query(f"SELECT {func}({column}) FROM survey")
        assert abs(answer.value - result.scalar()) <= 1e-9 * max(
            1.0, abs(answer.value))
        cfitsio_times.append(answer.elapsed)
        raw_times.append(result.elapsed)
    return cfitsio_times, raw_times


def test_fig11_fits(benchmark):
    cfitsio_times, raw_times = run_pair()

    header("Figure 11: FITS — CFITSIO program vs PostgresRaw",
           "CFITSIO ~constant per query; PostgresRaw drops after Q1; "
           "cumulative crossover within ~10 queries")
    rows = []
    cumulative_c, cumulative_r = 0.0, 0.0
    for i, ((func, col), ct, rt) in enumerate(
            zip(QUERIES, cfitsio_times, raw_times)):
        cumulative_c += ct
        cumulative_r += rt
        rows.append([f"Q{i + 1} {func}({col})", ct, rt,
                     cumulative_c, cumulative_r])
    table(["query", "CFITSIO (s)", "PostgresRaw (s)",
           "cum CFITSIO", "cum PostgresRaw"], rows)

    # (a) CFITSIO: nearly constant (full scan every time).
    spread = max(cfitsio_times) / min(cfitsio_times)
    assert spread < 1.25, f"CFITSIO spread {spread:.2f} should be ~1"

    # (b) PostgresRaw improves once its cache holds the queried column.
    warm_raw = statistics.mean(raw_times[1:])
    assert raw_times[0] > 1.4 * warm_raw

    # (c) Warm PostgresRaw beats CFITSIO per query.
    warm_cfitsio = statistics.mean(cfitsio_times[1:])
    assert warm_raw < warm_cfitsio

    # (d) Cumulative crossover within the 10-query sequence.
    assert sum(raw_times) < sum(cfitsio_times), (
        "PostgresRaw's data-to-query time should cross below CFITSIO's")

    benchmark.pedantic(run_pair, rounds=1, iterations=1)
