"""Ablation — design-choice knobs DESIGN.md calls out.

* PM chunk size (row_block_size): granularity of chunking/prefetching;
* eager prefix indexing (§4.2 "all positions from 1 to 15 may be
  kept") vs lazy (requested attributes only);
* spill-to-disk for evicted map chunks (§4.2 Maintenance) vs discard.
"""

import random

from figshared import header, micro_engine, table

from repro import PostgresRawConfig, VirtualFS
from repro.simcost.clock import CostEvent
from repro.workloads.queries import random_projection_query

ROWS = 800
ATTRS = 60


def sequence_time(config, queries=16, seed=3):
    vfs = VirtualFS()
    engine = micro_engine(vfs, ROWS, ATTRS, config)
    rng = random.Random(seed)
    total = 0.0
    for _ in range(queries):
        total += engine.query(random_projection_query(
            rng, "m", ATTRS, 6)).elapsed
    return total, engine


def test_chunk_size_sweep(benchmark):
    results = []
    for block in (32, 128, 512, 2048):
        total, engine = sequence_time(PostgresRawConfig(
            enable_statistics=False, row_block_size=block))
        pm = engine.positional_map_of("m")
        results.append([block, total, pm.chunk_bytes])

    header("Ablation: PM chunk size (row_block_size)",
           "chunking is a locality knob — totals should be stable "
           "across sane sizes")
    table(["rows/chunk", "sequence time (s)", "map bytes"], results)

    times = [r[1] for r in results]
    assert max(times) <= min(times) * 1.5, (
        "chunk size should not change costs dramatically")
    benchmark.pedantic(sequence_time, args=(PostgresRawConfig(
        enable_statistics=False, row_block_size=256),),
        rounds=1, iterations=1)


def test_eager_vs_lazy_prefix_indexing(benchmark):
    def run(eager):
        config = PostgresRawConfig(
            enable_statistics=False, enable_cache=False,
            eager_prefix_indexing=eager)
        vfs = VirtualFS()
        engine = micro_engine(vfs, ROWS, ATTRS, config)
        rng = random.Random(3)
        first_sql = random_projection_query(rng, "m", ATTRS, 6)
        engine.query(first_sql)
        pointers_after_q1 = engine.positional_map_of("m").pointer_count
        total = 0.0
        for _ in range(15):
            total += engine.query(random_projection_query(
                rng, "m", ATTRS, 6)).elapsed
        return pointers_after_q1, total

    lazy_pointers, lazy_total = run(eager=False)
    eager_pointers, eager_total = run(eager=True)

    header("Ablation: eager vs lazy prefix indexing (§4.2)",
           '"all positions from 1 to 15 may be kept": eager indexes the '
           "whole tokenized prefix on Q1 — bigger map, cheaper later "
           "navigation")
    table(["policy", "pointers after Q1", "later 15 queries (s)"],
          [["lazy (requested only)", lazy_pointers, lazy_total],
           ["eager (whole prefix)", eager_pointers, eager_total]])

    # The first query tokenizes a long prefix either way; eager keeps
    # several times more of what it saw.
    assert eager_pointers > 2 * lazy_pointers
    # Eager trades memory for tokenize work; it must not be slower.
    assert eager_total <= lazy_total * 1.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_spill_vs_discard(benchmark):
    budget = 6_000  # deliberately tight: forces constant eviction
    discard_cfg = PostgresRawConfig(
        enable_statistics=False, enable_cache=False,
        pm_budget_bytes=budget, pm_spill_enabled=False)
    spill_cfg = PostgresRawConfig(
        enable_statistics=False, enable_cache=False,
        pm_budget_bytes=budget, pm_spill_enabled=True)

    discard_total, discard_engine = sequence_time(discard_cfg, queries=24)
    spill_total, spill_engine = sequence_time(spill_cfg, queries=24)

    discard_tok = discard_engine.model.count(CostEvent.TOKENIZE)
    spill_tok = spill_engine.model.count(CostEvent.TOKENIZE)
    spill_loads = spill_engine.positional_map_of("m").spill_loads

    header("Ablation: spill evicted map chunks vs discard (§4.2)",
           "spilling preserves positional knowledge at I/O cost: less "
           "re-tokenizing")
    table(["policy", "sequence time (s)", "chars tokenized",
           "spill reloads"],
          [["discard", discard_total, discard_tok, 0],
           ["spill to disk", spill_total, spill_tok, spill_loads]])

    assert spill_loads > 0, "tight budget must trigger spill reloads"
    assert spill_tok < discard_tok, (
        "spilled positions should avoid re-tokenizing")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
