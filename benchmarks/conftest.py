"""Benchmark fixtures (pytest-benchmark)."""

import sys
from pathlib import Path

import pytest

# Allow `import figshared` from bench modules when run as
# `pytest benchmarks/`.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def show_output(pytestconfig):
    """Benches print paper-vs-measured tables; -s shows them live."""
    return pytestconfig.getoption("capture") == "no"
