"""Shared harness for the figure-reproduction benchmarks.

Every ``bench_figNN_*.py`` file reproduces one table/figure from the
paper's evaluation (§5–§6): it builds the figure's workload at laptop
scale, runs it on deterministic virtual time, prints the series next to
the paper's claim, and asserts the *shape* (who wins, by roughly what
factor, where crossovers fall). EXPERIMENTS.md indexes the results.
"""

from __future__ import annotations

from repro import (
    CSV_ENGINE_PROFILE,
    DBMS_X_EXTERNAL_PROFILE,
    DBMS_X_PROFILE,
    MYSQL_PROFILE,
    ExternalFilesDBMS,
    LoadedDBMS,
    PostgresRaw,
    PostgresRawConfig,
    VirtualFS,
)
from repro.workloads.micro import generate_micro_csv, micro_schema
from repro.workloads.tpch import generate_tpch, tpch_schema


def header(figure: str, claim: str) -> None:
    print()
    print("=" * 72)
    print(f"{figure}")
    print(f"paper claim: {claim}")
    print("=" * 72)


def table(columns: list[str], rows: list[list]) -> None:
    widths = [max(len(str(col)), 12) for col in columns]
    print("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4f}".rjust(width))
            else:
                cells.append(str(value).rjust(width))
        print("  ".join(cells))


def micro_engine(vfs: VirtualFS, rows: int, nattrs: int,
                 config: PostgresRawConfig | None = None,
                 table_name: str = "m", path: str = "m.csv",
                 seed: int = 0) -> PostgresRaw:
    """A PostgresRaw over a fresh §5.1 micro file on ``vfs``."""
    if not vfs.exists(path):
        generate_micro_csv(vfs, path, rows, nattrs, seed=seed)
    engine = PostgresRaw(config=config, vfs=vfs)
    engine.register_csv(table_name, path, micro_schema(nattrs))
    return engine


def loaded_engine(vfs: VirtualFS, nattrs: int, profile=None,
                  table_name: str = "m", path: str = "m.csv",
                  ) -> tuple[LoadedDBMS, float]:
    """A loaded comparator over the same file; returns (engine, load s)."""
    engine = (LoadedDBMS(profile=profile, vfs=vfs) if profile is not None
              else LoadedDBMS(vfs=vfs))
    load_seconds = engine.load_csv(table_name, path, micro_schema(nattrs))
    return engine, load_seconds


def external_engine(vfs: VirtualFS, nattrs: int, profile=CSV_ENGINE_PROFILE,
                    table_name: str = "m", path: str = "m.csv",
                    ) -> ExternalFilesDBMS:
    engine = ExternalFilesDBMS(profile=profile, vfs=vfs)
    engine.register_csv(table_name, path, micro_schema(nattrs))
    return engine


def tpch_raw(vfs: VirtualFS, data, config: PostgresRawConfig | None = None,
             ) -> PostgresRaw:
    engine = PostgresRaw(config=config, vfs=vfs)
    for table, path in data.paths.items():
        engine.register_csv(table, path, tpch_schema(table))
    return engine


def tpch_loaded(vfs: VirtualFS, data, profile=None,
                ) -> tuple[LoadedDBMS, float]:
    engine = (LoadedDBMS(profile=profile, vfs=vfs) if profile is not None
              else LoadedDBMS(vfs=vfs))
    load_seconds = sum(engine.load_csv(t, p, tpch_schema(t))
                       for t, p in data.paths.items())
    return engine, load_seconds


def build_tpch(scale_factor: float = 0.0008, seed: int = 0):
    vfs = VirtualFS()
    data = generate_tpch(vfs, scale_factor=scale_factor, seed=seed)
    return vfs, data


__all__ = [
    "header", "table", "micro_engine", "loaded_engine", "external_engine",
    "tpch_raw", "tpch_loaded", "build_tpch",
    "DBMS_X_PROFILE", "MYSQL_PROFILE", "CSV_ENGINE_PROFILE",
    "DBMS_X_EXTERNAL_PROFILE",
]
