"""Rollup router: priced-cost collapse for hot aggregate patterns.

Positional maps and caches amortize *access*; rollups amortize
*computation*. Once a hot GROUP BY pattern is materialized, the router
answers it from a heap of group rows instead of re-aggregating the raw
file, so the priced (virtual-clock) cost collapses by the data-to-group
ratio while the answer stays bit-identical.

The smoke case is the CI tripwire: a routed hot aggregate must cost
>= 10x less than the same query on a router-less twin, and a cold,
non-covered query on the rollup-bearing engine must still answer
identically (the router never changes results, only costs).
"""

import random

from figshared import header, table

from repro import (
    FLOAT,
    INTEGER,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)

ROWS = 20_000
REGIONS = ["east", "west", "north", "south"]
PRODUCTS = [f"p{i:02d}" for i in range(12)]

HOT = ("SELECT region, product, count(*), sum(qty), avg(price) "
       "FROM sales GROUP BY region, product")
COLD = ("SELECT qty, count(*) FROM sales WHERE qty < 3 GROUP BY qty")


def sales_csv(rows: int, seed: int = 17) -> bytes:
    rng = random.Random(seed)
    return "".join(
        f"{rng.choice(REGIONS)},{rng.choice(PRODUCTS)},"
        f"{rng.randint(0, 99)},{rng.randint(100, 9999) / 100.0}\n"
        for _ in range(rows)
    ).encode()


def make_engine(data: bytes) -> PostgresRaw:
    vfs = VirtualFS()
    vfs.create("sales.csv", data)
    db = PostgresRaw(vfs=vfs, config=PostgresRawConfig())
    db.register_csv("sales", "sales.csv", Schema([
        ("region", varchar()),
        ("product", varchar()),
        ("qty", INTEGER),
        ("price", FLOAT),
    ]))
    return db


def build_twins():
    """Identically-warmed engines; only one carries the rollup."""
    data = sales_csv(ROWS)
    baseline, routed = make_engine(data), make_engine(data)
    for db in (baseline, routed):
        db.query("SELECT region, product, qty, price FROM sales")
        db.query(HOT)  # warm raw aggregate: best case for the baseline
    routed.query("CREATE ROLLUP hot ON sales (region, product) "
                 "AGG (count(*), sum(qty), avg(price))")
    return baseline, routed


def test_rollup_router_smoke(benchmark):
    baseline, routed = build_twins()

    raw = baseline.query(HOT)
    hit = routed.query(HOT)
    assert hit.plan.get("rollup") == "hot"
    assert hit.rows == raw.rows  # bit-identical: values and order
    collapse = raw.elapsed / hit.elapsed
    assert collapse >= 10, (
        f"routed hot aggregate only {collapse:.1f}x cheaper "
        f"({hit.elapsed:.6f}s vs {raw.elapsed:.6f}s)")

    # a query the rollup cannot cover is untouched: annotated miss,
    # same answer, and the miss deliberation itself is unpriced
    cold_raw = baseline.query(COLD)
    cold = routed.query(COLD)
    assert cold.plan.get("rollup", "").startswith("none (")
    assert cold.rows == cold_raw.rows
    assert routed.counters().get("rollup_misses") == 1

    header("Rollup router smoke (priced virtual seconds)",
           f"{ROWS} rows -> {routed.rollups.get('hot').row_count} "
           f"group rows; hot pattern collapses, cold pattern unharmed")
    table(["query", "raw twin (s)", "routed (s)", "ratio"],
          [["hot GROUP BY", raw.elapsed, hit.elapsed,
            f"{collapse:.0f}x"],
           ["cold (miss)", cold_raw.elapsed, cold.elapsed,
            f"{cold_raw.elapsed / cold.elapsed:.2f}x"]])

    benchmark.pedantic(lambda: routed.query(HOT), rounds=3, iterations=1)


def test_reaggregation_sweep(benchmark):
    """Dimension-subset probes: coarser groupings re-aggregate the same
    rollup, so every covered shape collapses, not just the exact one."""
    baseline, routed = build_twins()
    shapes = [
        ("region, product", HOT),
        ("region", "SELECT region, count(*), sum(qty) FROM sales "
                   "GROUP BY region"),
        ("product", "SELECT product, count(*), sum(qty) FROM sales "
                    "GROUP BY product"),
        ("(global)", "SELECT count(*), sum(qty) FROM sales"),
    ]
    rows = []
    for label, sql in shapes:
        raw = baseline.query(sql)
        hit = routed.query(sql)
        assert hit.plan.get("rollup") == "hot", sql
        assert hit.rows == raw.rows, sql
        rows.append([label, raw.elapsed, hit.elapsed,
                     f"{raw.elapsed / hit.elapsed:.0f}x"])
        assert raw.elapsed / hit.elapsed >= 10, sql

    header("Re-aggregation over dimension subsets",
           "one rollup serves every coarser grouping bit-identically")
    table(["grouping", "raw twin (s)", "routed (s)", "ratio"], rows)

    benchmark.pedantic(
        lambda: routed.query(shapes[1][1]), rounds=3, iterations=1)
