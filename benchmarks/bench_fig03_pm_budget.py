"""Figure 3 — Effect of the number of pointers in the positional map.

Paper setup (§5.1.1): random select-project queries, 10 random
attributes each, selectivity 100%, over the 150-attribute file; the
positional map's storage capacity is swept. Claim: response times
improve by more than a factor of 2; with ~1/4 of the pointers the time
is already within ~15% of fully indexed; past ~3/4 it is flat.

Here: the same query generator over a scaled file; budget swept from a
sliver to unlimited; cache disabled to isolate the map (as in §5.1.1).
"""

import random

from figshared import header, micro_engine, table

from repro import PostgresRawConfig, VirtualFS
from repro.workloads.queries import random_projection_query

ROWS = 800
ATTRS = 150          # the paper's width: tokenizing dominates (§5.1)
QUERIES = 25
ATTRS_PER_QUERY = 10

#: Budget as a fraction of the full map footprint (measured below).
FRACTIONS = [0.02, 0.10, 0.25, 0.50, 0.75, 1.0]


def run_sequence(budget_bytes):
    vfs = VirtualFS()
    config = PostgresRawConfig(
        enable_cache=False,
        enable_statistics=False,
        row_block_size=256,
        pm_budget_bytes=budget_bytes,
    )
    engine = micro_engine(vfs, ROWS, ATTRS, config)
    rng = random.Random(99)
    times = []
    for _ in range(QUERIES):
        sql = random_projection_query(rng, "m", ATTRS, ATTRS_PER_QUERY)
        times.append(engine.query(sql).elapsed)
    access = engine.catalog.get("m").access
    return (sum(times) / len(times),
            access.pm.pointer_count if access.pm else 0)


def full_map_bytes():
    """Footprint of the map with unlimited budget (the sweep's 100%)."""
    vfs = VirtualFS()
    engine = micro_engine(
        vfs, ROWS, ATTRS,
        PostgresRawConfig(enable_cache=False, enable_statistics=False,
                          row_block_size=256))
    rng = random.Random(99)
    for _ in range(QUERIES):
        engine.query(random_projection_query(rng, "m", ATTRS,
                                             ATTRS_PER_QUERY))
    return engine.catalog.get("m").access.pm.chunk_bytes


def test_fig03_pm_budget_sweep(benchmark):
    full = full_map_bytes()
    rows = []
    averages = {}
    for fraction in FRACTIONS:
        budget = None if fraction == 1.0 else max(1, int(full * fraction))
        avg, pointers = run_sequence(budget)
        averages[fraction] = avg
        rows.append([f"{fraction:.0%}", pointers, avg])

    header("Figure 3: execution time vs positional-map budget",
           ">2x improvement; ~15% from optimum at 1/4 of pointers; flat "
           "beyond 3/4")
    table(["PM budget", "pointers stored", "avg query time (s)"], rows)

    # Shape assertions -----------------------------------------------------
    # (a) More map helps: full budget beats the sliver by a clear factor.
    assert averages[1.0] < averages[0.02] / 1.6, (
        "full positional map should be >1.6x faster than a ~2% budget")
    # (b) Diminishing returns: half the budget is already close to full.
    assert averages[0.50] <= averages[1.0] * 1.35
    # (c) Flat tail: 3/4 budget within ~12% of full.
    assert averages[0.75] <= averages[1.0] * 1.12
    # (d) Monotone-ish: each step up in budget never hurts much.
    ordered = [averages[f] for f in FRACTIONS]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= earlier * 1.10

    benchmark.pedantic(run_sequence, args=(int(full * 0.25),),
                       rounds=1, iterations=1)
