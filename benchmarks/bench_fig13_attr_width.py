"""Figure 13 — Varying attribute width: PostgreSQL vs PostgresRaw (§6).

Paper setup ("Complex Database Schemas"): the same query sequence over
files whose (string) attributes are 16 vs 64 characters wide. Claims:

* PostgreSQL degrades dramatically with wide attributes (20x-70x):
  wide tuples interact badly with slotted pages (fewer tuples per page,
  overflow handling, larger secondary copy);
* PostgresRaw degrades mildly (usually ~50%, at most 6x): strings need
  no conversion, and the raw file is the only copy.

Our storage substrate reproduces the *mechanism* (wider tuples -> more
pages -> more I/O and memory traffic, vs near-flat raw access); the
20-70x extreme depends on vendor-specific page pathologies we model
only partially — EXPERIMENTS.md records the measured factors.
"""

import random

from figshared import header, table

from repro import LoadedDBMS, PostgresRaw, VirtualFS
from repro.workloads.micro import generate_string_csv

ROWS = 800
ATTRS = 40    # at width 64 tuples exceed the TOAST threshold (~2 KB)
QUERIES = 9


def run_width(width):
    vfs = VirtualFS()
    schema = generate_string_csv(vfs, "s.csv", ROWS, ATTRS, width, seed=4)

    raw = PostgresRaw(vfs=vfs)
    raw.register_csv("s", "s.csv", schema)
    postgres = LoadedDBMS(vfs=vfs)
    postgres.load_csv("s", "s.csv", schema)
    postgres.restart()

    rng = random.Random(31)
    raw_times, postgres_times = [], []
    for _ in range(QUERIES):
        attrs = rng.sample(range(1, ATTRS + 1), 5)
        sql = ("SELECT " + ", ".join(f"s{i}" for i in attrs)
               + " FROM s")
        raw_times.append(raw.query(sql).elapsed)
        postgres_times.append(postgres.query(sql).elapsed)
    return sum(raw_times) / QUERIES, sum(postgres_times) / QUERIES


def test_fig13_attribute_width(benchmark):
    raw_16, postgres_16 = run_width(16)
    raw_64, postgres_64 = run_width(64)

    raw_slowdown = raw_64 / raw_16
    postgres_slowdown = postgres_64 / postgres_16

    header("Figure 13: attribute width 16 vs 64",
           "PostgreSQL slows 20-70x; PostgresRaw ~50% and at most 6x")
    table(["engine", "width 16 (s)", "width 64 (s)", "slowdown"],
          [["PostgresRaw", raw_16, raw_64, raw_slowdown],
           ["PostgreSQL", postgres_16, postgres_64, postgres_slowdown]])

    # (a) PostgresRaw barely notices: strings need no conversion and
    # the map jumps over them (paper: usually ~50%, at most 6x).
    assert raw_slowdown < 6.0
    # (b) PostgreSQL suffers disproportionately: wide tuples overflow
    # into TOAST and every touched attribute pays an extra fetch.
    assert postgres_slowdown > 2.0
    assert postgres_slowdown > raw_slowdown * 1.5, (
        f"PostgreSQL should degrade much faster: "
        f"{postgres_slowdown:.2f}x vs {raw_slowdown:.2f}x")
    # (c) At width 64, PostgresRaw outperforms PostgreSQL outright.
    assert raw_64 < postgres_64

    benchmark.pedantic(run_width, args=(16,), rounds=1, iterations=1)
