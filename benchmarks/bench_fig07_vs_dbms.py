"""Figure 7 — PostgresRaw vs other DBMS: cumulative data-to-query time.

Paper setup (§5.1.4): a 9-query sequence (Q1 at 100% selectivity /
projectivity; Q2-Q5 decreasing selectivity by 20%; Q6-Q9 decreasing
projectivity by 20%) against MySQL (CSV engine + loaded), DBMS X
(external files + loaded) and PostgreSQL (loaded), with load costs
stacked on the loaded engines. Claims:

* PostgresRaw has the best cumulative data-to-query time;
* external files (CSV engine, DBMS X external) are the worst by far —
  they re-scan the whole file per query;
* PostgreSQL ends ~25.75% slower than PostgresRaw despite sharing the
  same executor (it paid the load);
* PostgresRaw edges out DBMS X (~6%) whose executor is faster, because
  it answered the first queries while DBMS X was still loading.
"""

from figshared import (
    CSV_ENGINE_PROFILE,
    DBMS_X_EXTERNAL_PROFILE,
    DBMS_X_PROFILE,
    MYSQL_PROFILE,
    external_engine,
    header,
    loaded_engine,
    micro_engine,
    table,
)

from repro import VirtualFS
from repro.workloads.micro import generate_micro_csv
from repro.workloads.queries import selectivity_query

ROWS = 1500
ATTRS = 40

SEQUENCE = [(1.0, 1.0), (0.8, 1.0), (0.6, 1.0), (0.4, 1.0), (0.2, 1.0),
            (1.0, 0.8), (1.0, 0.6), (1.0, 0.4), (1.0, 0.2)]


def build_engines():
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=17)
    raw = micro_engine(vfs, ROWS, ATTRS)
    postgres, postgres_load = loaded_engine(vfs, ATTRS)
    dbms_x, dbms_x_load = loaded_engine(vfs, ATTRS, DBMS_X_PROFILE)
    mysql, mysql_load = loaded_engine(vfs, ATTRS, MYSQL_PROFILE)
    csv_engine = external_engine(vfs, ATTRS, CSV_ENGINE_PROFILE)
    dbms_x_ext = external_engine(vfs, ATTRS, DBMS_X_EXTERNAL_PROFILE)
    return {
        "PostgresRaw PM+C": (raw, 0.0),
        "PostgreSQL": (postgres, postgres_load),
        "DBMS X": (dbms_x, dbms_x_load),
        "MySQL": (mysql, mysql_load),
        "MySQL CSV engine": (csv_engine, 0.0),
        "DBMS X w/ external files": (dbms_x_ext, 0.0),
    }


def run_sequence():
    engines = build_engines()
    queries = [selectivity_query("m", ATTRS, sel, proj)
               for sel, proj in SEQUENCE]
    totals = {}
    first_answer = {}
    for name, (engine, load_seconds) in engines.items():
        cumulative = load_seconds
        for i, sql in enumerate(queries):
            cumulative += engine.query(sql).elapsed
            if i == 0:
                first_answer[name] = cumulative
        totals[name] = cumulative
    return totals, first_answer


def test_fig07_vs_other_dbms(benchmark):
    totals, first_answer = run_sequence()

    header("Figure 7: cumulative time, 9-query sequence + load",
           "PostgresRaw best; externals worst; PostgreSQL ~26% behind "
           "PostgresRaw; PostgresRaw ~6% ahead of DBMS X")
    table(["engine", "total incl. load (s)", "first answer at (s)"],
          [[name, totals[name], first_answer[name]]
           for name in sorted(totals, key=totals.get)])

    raw = totals["PostgresRaw PM+C"]
    postgres = totals["PostgreSQL"]
    dbms_x = totals["DBMS X"]
    mysql = totals["MySQL"]
    csv_engine = totals["MySQL CSV engine"]
    dbms_x_ext = totals["DBMS X w/ external files"]

    # (a) PostgresRaw wins the cumulative race.
    assert raw == min(totals.values())
    # (b) PostgreSQL pays its load: clearly behind (paper: ~26%).
    assert postgres > raw * 1.15
    # (c) DBMS X's faster executor does not make up for its load.
    assert dbms_x > raw
    # (d) External files are the worst strategy by a wide margin.
    assert csv_engine > mysql
    assert csv_engine > 2 * raw
    assert dbms_x_ext > dbms_x
    # (e) Figure 1's story: PostgresRaw's first answer arrives before
    # any loaded engine finishes loading.
    assert first_answer["PostgresRaw PM+C"] < min(
        first_answer["PostgreSQL"], first_answer["DBMS X"],
        first_answer["MySQL"])

    benchmark.pedantic(run_sequence, rounds=1, iterations=1)
