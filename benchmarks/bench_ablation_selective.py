"""Ablation — the §4.1 selective-processing trio, as exact counters.

The paper introduces selective tokenizing, selective parsing and
selective tuple formation but evaluates them only jointly. This
ablation isolates each mechanism with the cost ledger:

* selective tokenizing: characters examined grow with the largest
  requested attribute, not the line width;
* selective parsing: SELECT-attribute conversions happen only for
  qualifying tuples (the straw-man converts everything);
* selective tuple formation: emitted tuples carry only requested
  attributes.
"""

from figshared import external_engine, header, micro_engine, table

from repro import PostgresRawConfig, VirtualFS
from repro.simcost.clock import CostEvent
from repro.workloads.micro import generate_micro_csv

ROWS = 600
ATTRS = 60


def fresh(vfs_seed=0):
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=9)
    config = PostgresRawConfig(enable_positional_map=False,
                               enable_cache=False,
                               enable_statistics=False)
    return micro_engine(vfs, ROWS, ATTRS, config), vfs


def test_selective_tokenizing(benchmark):
    tokenized = {}
    for attr in (5, 30, 59):
        engine, _vfs = fresh()
        engine.query(f"SELECT a{attr + 1} FROM m")
        tokenized[attr] = engine.model.count(CostEvent.TOKENIZE)

    header("Ablation: selective tokenizing (§4.1)",
           "chars examined ~ position of last needed attribute")
    table(["last attr", "chars tokenized"],
          [[attr + 1, count] for attr, count in tokenized.items()])

    assert tokenized[5] < tokenized[30] < tokenized[59]
    # Roughly proportional to the attribute position.
    assert tokenized[30] / tokenized[5] > 3
    benchmark.pedantic(fresh, rounds=1, iterations=1)


def test_selective_parsing_vs_strawman(benchmark):
    engine, vfs = fresh()
    threshold = 100_000_000  # ~10% selectivity on uniform [0, 1e9)
    engine.query(f"SELECT a30 FROM m WHERE a1 < {threshold}")
    raw_converts = engine.model.count(CostEvent.CONVERT_INT)

    straw = external_engine(vfs, ATTRS)
    straw.query(f"SELECT a30 FROM m WHERE a1 < {threshold}")
    straw_converts = straw.model.count(CostEvent.CONVERT_INT)

    qualifying = engine.query(
        f"SELECT count(*) FROM m WHERE a1 < {threshold}").scalar()

    header("Ablation: selective parsing vs straw-man (§4.1)",
           "PostgresRaw converts WHERE attrs always, SELECT attrs only "
           "for qualifying tuples; the straw-man converts everything")
    table(["engine", "int conversions"],
          [["PostgresRaw", raw_converts],
           ["external straw-man", straw_converts],
           ["(rows + qualifying)", ROWS + qualifying],
           ["(rows x attrs)", ROWS * ATTRS]])

    assert raw_converts == ROWS + qualifying
    assert straw_converts == ROWS * ATTRS
    assert raw_converts < straw_converts / 10
    benchmark.pedantic(fresh, rounds=1, iterations=1)


def test_selective_tuple_formation(benchmark):
    engine, _vfs = fresh()
    engine.query("SELECT a3, a7 FROM m")
    formed = engine.model.count(CostEvent.TUPLE_FORM)

    wide_engine, _vfs2 = fresh()
    wide_engine.query("SELECT " + ", ".join(
        f"a{i}" for i in range(1, ATTRS + 1)) + " FROM m")
    formed_wide = wide_engine.model.count(CostEvent.TUPLE_FORM)

    header("Ablation: selective tuple formation (§4.1)",
           "tuples carry only the requested attributes")
    table(["query", "attr placements"],
          [["2 attrs", formed], [f"{ATTRS} attrs", formed_wide]])

    # Scan-level placements: exactly rows x requested attrs (the final
    # projection adds its own output placements on top).
    assert formed >= ROWS * 2
    assert formed <= ROWS * 2 * 2.5
    assert formed_wide >= ROWS * ATTRS
    benchmark.pedantic(fresh, rounds=1, iterations=1)
