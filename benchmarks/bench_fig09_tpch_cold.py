"""Figure 9 — TPC-H from cold: loading vs in-situ (Q10 + Q14).

Paper setup (§5.2): cold systems; PostgreSQL must load all eight tables
before Q10 (4-way join) and Q14 (2-way join) can run; PostgresRaw
queries immediately, in two variants (PM only; PM + cache). Claims:

* PostgresRaw answers both queries before PostgreSQL finishes loading —
  it is faster whenever positional maps are enabled;
* PM+C is slower than PM alone on this cold sequence: building and
  populating the cache costs extra up front.
"""

from figshared import build_tpch, header, table, tpch_loaded, tpch_raw

from repro import PostgresRawConfig
from repro.workloads.tpch import tpch_query

QUERIES = ("q10", "q14")


def run_cold():
    results = {}

    vfs, data = build_tpch()
    loaded, load_seconds = tpch_loaded(vfs, data)
    loaded.restart()  # cold buffers; load already on the clock
    loaded_queries = [loaded.query(tpch_query(q)).elapsed for q in QUERIES]
    results["PostgreSQL"] = (load_seconds, loaded_queries)

    vfs, data = build_tpch()
    pm_cache = tpch_raw(vfs, data, PostgresRawConfig(
        enable_statistics=False))
    results["PostgresRaw PM+C"] = (
        0.0, [pm_cache.query(tpch_query(q)).elapsed for q in QUERIES])

    vfs, data = build_tpch()
    pm_only = tpch_raw(vfs, data, PostgresRawConfig(
        enable_cache=False, enable_statistics=False))
    results["PostgresRaw PM"] = (
        0.0, [pm_only.query(tpch_query(q)).elapsed for q in QUERIES])

    return results


def test_fig09_tpch_cold(benchmark):
    results = run_cold()

    header("Figure 9: TPC-H Q10 + Q14 from cold (load + queries)",
           "PostgresRaw beats PostgreSQL+loading whenever the map is on; "
           "cache building makes PM+C slower than PM alone here")
    rows = []
    for name, (load_seconds, queries) in results.items():
        rows.append([name, load_seconds, queries[0], queries[1],
                     load_seconds + sum(queries)])
    table(["engine", "load (s)", "Q10 (s)", "Q14 (s)", "total (s)"], rows)

    def total(name):
        load_seconds, queries = results[name]
        return load_seconds + sum(queries)

    # (a) Both raw variants finish before the loaded engine.
    assert total("PostgresRaw PM") < total("PostgreSQL")
    assert total("PostgresRaw PM+C") < total("PostgreSQL")
    # (b) The load alone already exceeds the raw engines' whole run.
    assert results["PostgreSQL"][0] > total("PostgresRaw PM")
    # (c) Cache construction overhead: PM+C >= PM on this cold pair.
    assert total("PostgresRaw PM+C") >= total("PostgresRaw PM")

    benchmark.pedantic(run_cold, rounds=1, iterations=1)
