"""Figure 5 — Effect of the positional map and caching.

Paper setup (§5.1.2): 50 queries, each projecting 5 random attributes,
no WHERE clause; four PostgresRaw variants: Baseline (straw-man, no
auxiliary structures), PM only, Cache only (+minimal end-of-line map),
PM+C. Claims:

* all variants pay the same expensive first query;
* as of the second query PM+C is 82-88% faster than the first;
* Baseline stays flat (only fs caching helps a little) and
  uncompetitive;
* cache-only fluctuates: a miss forces re-parsing (3-5x);
* PM+C dominates the whole sequence.
"""

import random
import statistics

from figshared import header, micro_engine, table

from repro import PostgresRawConfig, VirtualFS
from repro.workloads.queries import random_projection_query

ROWS = 700
ATTRS = 120
QUERIES = 50
ATTRS_PER_QUERY = 5

VARIANTS = {
    "Baseline": PostgresRawConfig(
        enable_positional_map=False, enable_cache=False,
        enable_statistics=False),
    "PostgresRaw PM": PostgresRawConfig(
        enable_positional_map=True, enable_cache=False,
        enable_statistics=False, row_block_size=256),
    "PostgresRaw C": PostgresRawConfig(
        enable_positional_map=False, enable_cache=True,
        enable_statistics=False, row_block_size=256),
    "PostgresRaw PM+C": PostgresRawConfig(
        enable_positional_map=True, enable_cache=True,
        enable_statistics=False, row_block_size=256),
}


def run_variant(config):
    vfs = VirtualFS()
    engine = micro_engine(vfs, ROWS, ATTRS, config)
    rng = random.Random(123)  # same query sequence for every variant
    return [engine.query(random_projection_query(
        rng, "m", ATTRS, ATTRS_PER_QUERY)).elapsed
        for _ in range(QUERIES)]


def test_fig05_pm_and_cache(benchmark):
    series = {name: run_variant(config)
              for name, config in VARIANTS.items()}

    header("Figure 5: positional map and caching over a query sequence",
           "first query equal; PM+C drops 82-88% at Q2; baseline flat; "
           "cache-only fluctuates; PM+C best overall")
    rows = []
    for i in (0, 1, 2, 9, 24, 49):
        rows.append([f"Q{i + 1}"] + [series[n][i] for n in VARIANTS])
    rows.append(["mean"] + [statistics.mean(series[n]) for n in VARIANTS])
    table(["query"] + list(VARIANTS), rows)

    baseline = series["Baseline"]
    pm_only = series["PostgresRaw PM"]
    cache_only = series["PostgresRaw C"]
    pm_cache = series["PostgresRaw PM+C"]

    # (a) First query: no prior knowledge, all variants comparable.
    first = [s[0] for s in series.values()]
    assert max(first) <= min(first) * 1.45, (
        "all variants must pay a similar first-query cost")

    # (b) PM+C: second query dramatically cheaper (paper: 82-88%).
    assert pm_cache[1] <= pm_cache[0] * 0.35

    # (c) Baseline: flat after fs-cache warmup (variation only from the
    # random max projected attribute), never competitive.
    flat = baseline[1:]
    assert max(flat) <= min(flat) * 1.6
    assert statistics.mean(flat) > 2 * statistics.mean(pm_cache[1:])

    # (d) Cache-only fluctuates while coverage grows: misses re-parse.
    early = cache_only[1:20]
    assert max(early) > 2 * min(early), (
        "cache-only should swing between hits and full re-parses")

    # (e) Ordering over the whole sequence: PM+C <= PM <= Baseline.
    assert statistics.mean(pm_cache) < statistics.mean(pm_only)
    assert statistics.mean(pm_only) < statistics.mean(baseline)
    assert statistics.mean(pm_cache) < statistics.mean(cache_only)

    benchmark.pedantic(
        run_variant, args=(VARIANTS["PostgresRaw PM+C"],),
        rounds=1, iterations=1)
