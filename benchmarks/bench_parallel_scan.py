"""Parallel chunk scans — wall-clock scaling with determinism checks.

Like ``bench_batch_pipeline.py`` this measures the Python interpreter,
not virtual time: the point of fanning row-block groups across workers
is real elapsed time on the dominant cold-scan path (fig 9 shapes),
while the virtual cost model — by construction — charges exactly the
same units at any worker count. Every case therefore asserts the
determinism contract (identical result sequences, counters and
auxiliary-structure footprints across ``scan_workers``) and reports
the wall-clock scaling.

The scaling bar (>= 1.8x cold-scan speedup at 4 workers) is only
asserted when the machine actually has >= 4 CPUs — thread fan-out
cannot beat physics on the 1- and 2-core boxes CI sometimes hands us;
there the bench still runs the full determinism checks and prints the
measured (flat) scaling.
"""

import os
import time

from figshared import build_tpch, header, table, tpch_raw

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.workloads.micro import generate_micro_csv, micro_schema

WORKER_COUNTS = (1, 2, 4)
CAN_SCALE = (os.cpu_count() or 1) >= 4


def micro_engine(workers: int, rows: int, nattrs: int,
                 block: int) -> PostgresRaw:
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", rows, nattrs, seed=3)
    config = PostgresRawConfig(
        scan_workers=workers, row_block_size=block,
        # Stats sampling is per-row Python on the merge thread; the
        # Q1 sweep bench sets the same switch for the same reason.
        enable_statistics=False)
    engine = PostgresRaw(config=config, vfs=vfs)
    engine.register_csv("m", "m.csv", micro_schema(nattrs))
    return engine


def timed_cold_query(engine: PostgresRaw, sql: str):
    start = time.perf_counter()
    result = engine.query(sql)
    return time.perf_counter() - start, result


def test_parallel_scan_smoke(benchmark):
    """Correctness tripwire for the CI smoke job: a cold parallel scan
    must produce the identical row sequence, identical counters and
    identical auxiliary footprints as the serial scan — and must
    actually fan out to the pool."""
    sql = "SELECT a1, a4 FROM m WHERE a2 > 200000000"
    engines = {w: micro_engine(w, rows=3000, nattrs=8, block=256)
               for w in (1, 4)}
    results = {}
    timings = {}
    for workers, engine in engines.items():
        timings[workers], results[workers] = timed_cold_query(engine, sql)

    assert results[4].rows == results[1].rows
    assert results[4].counters == results[1].counters
    assert engines[4].auxiliary_bytes("m") == engines[1].auxiliary_bytes("m")
    assert engines[1].scan_pool is None
    assert engines[4].scan_pool is not None
    assert engines[4].scan_pool.tasks_submitted > 0

    # Warm repeat stays deterministic too (indexed region, cache hits).
    warm = {w: engines[w].query(sql) for w in (1, 4)}
    assert warm[4].rows == warm[1].rows
    assert warm[4].counters == warm[1].counters

    header("Parallel chunk scan smoke (wall clock, cold)",
           "fan-out changes elapsed time only — never results or cost")
    table(["workers", "cold ms", "pool tasks"],
          [[w, timings[w] * 1e3,
            engines[w].scan_pool.tasks_submitted if engines[w].scan_pool
            else 0] for w in (1, 4)])

    benchmark.pedantic(
        lambda: micro_engine(4, 3000, 8, 256).query(sql), rounds=2,
        iterations=1)


def test_parallel_cold_scan_scaling(benchmark):
    """The acceptance case: cold batch scan of the micro file at 1/2/4
    workers. Determinism is asserted unconditionally; the >= 1.8x
    4-worker bar only where 4 CPUs exist."""
    rows, nattrs, block = 60_000, 12, 4096
    sql = "SELECT a1, a3, a7 FROM m WHERE a2 > 100000000"

    timings = {}
    results = {}
    engines = {}
    for workers in WORKER_COUNTS:
        engine = micro_engine(workers, rows, nattrs, block)
        timings[workers], results[workers] = timed_cold_query(engine, sql)
        engines[workers] = engine

    for workers in WORKER_COUNTS[1:]:
        assert results[workers].rows == results[1].rows, workers
        assert results[workers].counters == results[1].counters, workers
        assert engines[workers].auxiliary_bytes("m") \
            == engines[1].auxiliary_bytes("m"), workers

    speedup4 = timings[1] / timings[4]
    header("Parallel cold scan scaling (wall clock)",
           "raw-data scans parallelize at chunk granularity "
           f"(machine has {os.cpu_count()} CPUs)")
    table(["workers", "cold ms", "speedup"],
          [[w, timings[w] * 1e3, timings[1] / timings[w]]
           for w in WORKER_COUNTS])

    if CAN_SCALE:
        assert speedup4 >= 1.8, (
            f"4-worker cold-scan speedup {speedup4:.2f}x below the "
            f"1.8x bar on a {os.cpu_count()}-CPU machine")

    benchmark.pedantic(
        lambda: micro_engine(4, rows, nattrs, block).query(sql),
        rounds=2, iterations=1)


# ---------------------------------------------------------------------------
# Tier-2 sweep: TPC-H cold-scan shapes (fig 9/10) at 1/2/4 workers
# ---------------------------------------------------------------------------
_TPCH_QUERIES = {
    "Q1-shape": """
        SELECT l_returnflag, l_linestatus, sum(l_quantity),
               sum(l_extendedprice), count(*)
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-09-02'
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    "Q6-shape": """
        SELECT sum(l_extendedprice * l_discount)
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
}


def test_tpch_cold_sweep_parallel(benchmark):
    """Fig 9/10 shapes, batch vs scalar and 1/2/4 workers: the cold
    first-touch query dominated by the raw scan. Batch results must
    match the scalar oracle; worker counts must agree exactly; the
    wall-clock table reports both the batch-vs-scalar win and the
    cold-scan worker scaling."""
    scale = 0.004
    rows = []
    scalar_cold = {}
    for name, sql in _TPCH_QUERIES.items():
        vfs, data = build_tpch(scale_factor=scale)
        scalar = tpch_raw(vfs, data, PostgresRawConfig(
            batch_mode=False, enable_statistics=False))
        scalar_cold[name], scalar_result = timed_cold_query(scalar, sql)

        cold = {}
        reference = None
        for workers in WORKER_COUNTS:
            vfs, data = build_tpch(scale_factor=scale)
            engine = tpch_raw(vfs, data, PostgresRawConfig(
                scan_workers=workers, enable_statistics=False))
            cold[workers], result = timed_cold_query(engine, sql)
            assert result.rows == scalar_result.rows, (name, workers)
            if reference is None:
                reference = result
            else:
                assert result.counters == reference.counters, \
                    (name, workers)
        rows.append([name, scalar_cold[name] * 1e3, cold[1] * 1e3,
                     cold[2] * 1e3, cold[4] * 1e3, cold[1] / cold[4]])

    header("TPC-H cold scans: scalar vs batch x workers (wall clock)",
           "cold raw-file queries are scan-bound; chunk fan-out "
           "attacks the residual after vectorization")
    table(["query", "scalar ms", "batch w1 ms", "w2 ms", "w4 ms",
           "w4 speedup"], rows)

    if CAN_SCALE:
        worst = min(row[-1] for row in rows)
        assert worst >= 1.3, (
            f"TPC-H cold-scan 4-worker speedup {worst:.2f}x below the "
            "1.3x bar")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
