"""Figure 8 — Per-query response time vs (a) selectivity and (b)
projectivity.

Paper setup (§5.1.4): loaded comparators query pre-loaded data (load
time excluded, buffer caches cold); PostgresRaw queries raw files. The
first query is 100%/100% — PostgresRaw's worst case (empty map+cache),
merely ~2.3x slower than PostgreSQL. Claims:

* PostgresRaw outperforms PostgreSQL on every query after the first,
  despite in-situ access and the same executor;
* everyone improves as selectivity/projectivity decreases;
* PostgresRaw's margin *grows* as projectivity decreases (it brings
  only useful attribute values into the CPU caches).
"""

from figshared import (
    DBMS_X_PROFILE,
    MYSQL_PROFILE,
    header,
    loaded_engine,
    micro_engine,
    table,
)

from repro import VirtualFS
from repro.workloads.micro import generate_micro_csv
from repro.workloads.queries import selectivity_query

ROWS = 1500
ATTRS = 40

SELECTIVITY_STEPS = [1.0, 1.0, 0.8, 0.6, 0.4, 0.2, 0.01]
PROJECTIVITY_STEPS = [1.0, 1.0, 0.8, 0.6, 0.5, 0.4, 0.2, 0.1]


def build():
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=23)
    raw = micro_engine(vfs, ROWS, ATTRS)
    postgres, _ = loaded_engine(vfs, ATTRS)
    dbms_x, _ = loaded_engine(vfs, ATTRS, DBMS_X_PROFILE)
    mysql, _ = loaded_engine(vfs, ATTRS, MYSQL_PROFILE)
    # "buffer caches are cold, however": loaded engines restart after
    # loading; the OS cache keeps the raw file warm for everyone.
    postgres.restart()
    dbms_x.restart()
    mysql.restart()
    return {"PostgresRaw PM+C": raw, "PostgreSQL": postgres,
            "DBMS X": dbms_x, "MySQL": mysql}


def sweep(steps, vary):
    engines = build()
    series = {name: [] for name in engines}
    for step in steps:
        sel, proj = (step, 1.0) if vary == "selectivity" else (1.0, step)
        sql = selectivity_query("m", ATTRS, sel, proj)
        for name, engine in engines.items():
            series[name].append(engine.query(sql).elapsed)
    return series


def print_series(title, claim, steps, series, label):
    header(title, claim)
    rows = []
    for i, step in enumerate(steps):
        rows.append([f"Q{i + 1}: {step:.0%}"]
                    + [series[name][i] for name in series])
    table([label] + list(series), rows)


def check_common_shape(series, steps):
    raw = series["PostgresRaw PM+C"]
    postgres = series["PostgreSQL"]
    # (a) Worst case first query: raw pays full parse, 1.5-4x slower
    # than PostgreSQL over loaded data (paper: 2.3x).
    ratio = raw[0] / postgres[0]
    assert 1.3 <= ratio <= 4.5, f"first-query ratio {ratio:.2f}"
    # (b) After the first query PostgresRaw is competitive or better.
    wins = sum(1 for i in range(1, len(steps)) if raw[i] <= postgres[i])
    assert wins >= (len(steps) - 1) * 0.7
    # (c) Everyone speeds up as the sweep descends.
    for name in series:
        assert series[name][-1] < series[name][1]


def test_fig08a_selectivity(benchmark):
    series = sweep(SELECTIVITY_STEPS, "selectivity")
    print_series(
        "Figure 8a: response time vs selectivity (projectivity 100%)",
        "raw worst-case ~2.3x on Q1, then PostgresRaw wins; all improve "
        "with lower selectivity", SELECTIVITY_STEPS, series,
        "selectivity")
    check_common_shape(series, SELECTIVITY_STEPS)
    benchmark.pedantic(sweep, args=(SELECTIVITY_STEPS, "selectivity"),
                       rounds=1, iterations=1)


def test_fig08b_projectivity(benchmark):
    series = sweep(PROJECTIVITY_STEPS, "projectivity")
    print_series(
        "Figure 8b: response time vs projectivity (selectivity 100%)",
        "same first-query worst case; PostgresRaw's margin grows as "
        "projectivity drops", PROJECTIVITY_STEPS, series, "projectivity")
    check_common_shape(series, PROJECTIVITY_STEPS)
    # The paper's extra claim for (b): the PostgresRaw:PostgreSQL gap
    # widens as projectivity decreases.
    raw = series["PostgresRaw PM+C"]
    postgres = series["PostgreSQL"]
    margin_high = postgres[1] / raw[1]      # 100% projectivity, warm
    margin_low = postgres[-1] / raw[-1]     # 10% projectivity
    assert margin_low > margin_high, (
        f"margin should grow: {margin_high:.2f} -> {margin_low:.2f}")
    benchmark.pedantic(sweep, args=(PROJECTIVITY_STEPS[:3], "projectivity"),
                       rounds=1, iterations=1)
