"""§5.1 setup parity — the micro-benchmark file generator.

The paper's file: "a raw data file of 11 GB, containing 7.5*10^6
tuples. Each tuple contains 150 attributes with integers distributed
randomly in the range [0-10^9)". That works out to ~1.47 KB/row
(~9.8 bytes per value incl. delimiter). This bench checks our scaled
generator matches those densities, so byte-level costs transfer.
"""

import statistics

from figshared import header, micro_engine, table

from repro import VirtualFS
from repro.workloads.micro import generate_micro_csv

PAPER_BYTES_PER_ROW = 11e9 / 7.5e6        # ~1467
PAPER_BYTES_PER_VALUE = PAPER_BYTES_PER_ROW / 150


def test_micro_generator_parity(benchmark):
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", rows=2000, nattrs=150, seed=0)
    size = vfs.size("m.csv")
    bytes_per_row = size / 2000
    bytes_per_value = bytes_per_row / 150

    header("Micro-file parity with the paper's §5.1 dataset",
           "11 GB / 7.5M rows / 150 int attrs -> ~1.47 KB/row")
    table(["metric", "paper", "ours"],
          [["bytes/row", PAPER_BYTES_PER_ROW, bytes_per_row],
           ["bytes/value", PAPER_BYTES_PER_VALUE, bytes_per_value]])

    assert abs(bytes_per_row - PAPER_BYTES_PER_ROW) < 0.15 * \
        PAPER_BYTES_PER_ROW
    assert abs(bytes_per_value - PAPER_BYTES_PER_VALUE) < 0.15 * \
        PAPER_BYTES_PER_VALUE

    # Values must span the paper's domain.
    first_line = vfs.read_bytes("m.csv").split(b"\n", 1)[0]
    values = [int(v) for v in first_line.split(b",")]
    assert all(0 <= v < 10 ** 9 for v in values)

    benchmark.pedantic(
        generate_micro_csv, args=(VirtualFS(), "m.csv", 500, 150),
        rounds=1, iterations=1)


def test_micro_scan_throughput_counters(benchmark):
    """Sanity: one full scan touches each byte/value exactly once."""
    vfs = VirtualFS()
    engine = micro_engine(vfs, 500, 30)
    engine.query("SELECT " + ", ".join(f"a{i}" for i in range(1, 31))
                 + " FROM m")
    counters = engine.counters()
    size = vfs.size("m.csv")

    header("Scan cost-counter sanity (single full scan)",
           "bytes read ~ file size; conversions = rows x attrs")
    table(["counter", "value", "expected"],
          [["disk bytes", counters["disk_read_cold"]
            + counters.get("disk_read_warm", 0), size],
           ["newline_scan", counters["newline_scan"], size],
           ["convert_int", counters["convert_int"], 500 * 30],
           ["tuple_overhead", counters["tuple_overhead"], 500]])

    read = counters["disk_read_cold"] + counters.get("disk_read_warm", 0)
    assert read == size
    assert counters["newline_scan"] == size
    assert counters["convert_int"] == 500 * 30
    assert counters["tuple_overhead"] == 500

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
