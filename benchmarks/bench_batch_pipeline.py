"""Batch vs scalar scan pipeline — real wall-clock, not virtual time.

Every other bench in this directory measures *virtual* seconds on the
cost model; this one measures the Python interpreter itself, because
the batch pipeline's whole point is removing per-row interpreter
overhead from the hot loop. The acceptance bar (PR 1): >= 2x wall-clock
speedup for the batch path over the scalar path on a warm
repeated-query scan. Measured headroom is typically 4-10x, so the
assertion uses 2x to stay robust on slow CI machines.
"""

import time

from figshared import build_tpch, header, table, tpch_raw

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.workloads.micro import generate_micro_csv, micro_schema

ROWS = 4000
ATTRS = 30
REPEATS = 5
PROJECTED = list(range(0, ATTRS, 3))


def build(batch: bool) -> PostgresRaw:
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=3)
    db = PostgresRaw(config=PostgresRawConfig(batch_mode=batch), vfs=vfs)
    db.register_csv("m", "m.csv", micro_schema(ATTRS))
    return db


def timed_scan(db: PostgresRaw, repeats: int = 1) -> tuple[float, int]:
    access = db.catalog.get("m").access
    start = time.perf_counter()
    count = 0
    for _ in range(repeats):
        count = sum(1 for _ in access.scan(PROJECTED, None))
    return (time.perf_counter() - start) / repeats, count


def test_warm_repeated_scan_speedup(benchmark):
    db_batch = build(batch=True)
    db_scalar = build(batch=False)

    cold_batch, n_batch = timed_scan(db_batch)      # warms PM + cache
    cold_scalar, n_scalar = timed_scan(db_scalar)
    assert n_batch == n_scalar == ROWS

    warm_batch, _ = timed_scan(db_batch, REPEATS)
    warm_scalar, _ = timed_scan(db_scalar, REPEATS)
    warm_speedup = warm_scalar / warm_batch
    cold_speedup = cold_scalar / cold_batch

    header("Vectorized batch pipeline vs scalar scan (wall clock)",
           "batching the raw-data hot loop removes per-tuple overhead")
    table(["scan", "scalar ms", "batch ms", "speedup"],
          [["cold first query", cold_scalar * 1e3, cold_batch * 1e3,
            cold_speedup],
           [f"warm x{REPEATS} avg", warm_scalar * 1e3, warm_batch * 1e3,
            warm_speedup]])

    assert warm_speedup >= 2.0, (
        f"warm batch speedup {warm_speedup:.2f}x below the 2x bar")
    # The cold path (tokenize + convert everything) must also win.
    assert cold_speedup >= 1.5, (
        f"cold batch speedup {cold_speedup:.2f}x regressed")

    benchmark.pedantic(lambda: timed_scan(db_batch), rounds=3,
                       iterations=1)


def test_batch_and_scalar_same_virtual_time_shape(benchmark):
    """Virtual (cost-model) time must NOT depend on the pull mode: the
    batch pipeline charges the same unit totals per-block that the
    scalar path charges per-row (conversion, I/O, map and cache
    traffic), so the paper's figures are invariant to batch_mode."""
    db_batch = build(batch=True)
    db_scalar = build(batch=False)
    sql = ("SELECT " + ", ".join(f"a{i + 1}" for i in PROJECTED)
           + " FROM m WHERE a1 < 500000000")
    for _ in range(3):
        rb = db_batch.query(sql)
        rs = db_scalar.query(sql)
        assert sorted(rb.rows) == sorted(rs.rows)

    cb = db_batch.counters()
    cs = db_scalar.counters()
    # tokenize is invariant here because the cold scan's streaming
    # tokenization replays the scalar locate-state machine exactly and
    # the warm repeats are fully map/cache-covered (zero tokenize in
    # both modes); only warm *partial-coverage* scans may deviate (the
    # batch path never re-scans a field — see simcost/model.py).
    invariant = ["disk_read_cold", "disk_read_warm", "newline_scan",
                 "tokenize", "convert_int", "tuple_overhead",
                 "tuple_form", "predicate_eval", "cache_read",
                 "cache_write", "map_insert", "map_access",
                 "stats_sample"]
    rows = []
    for key in invariant:
        rows.append([key, cs.get(key, 0), cb.get(key, 0)])
        assert cb.get(key, 0) == cs.get(key, 0), key

    header("Cost-counter parity across pull modes",
           "same work units whether charged per row or per block")
    table(["counter", "scalar", "batch"], rows)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# TPC-H Q1-style aggregate sweep (PR 3): the columnar operator tree
# ---------------------------------------------------------------------------
_Q1_CUTOFFS = ("1995-06-17", "1997-06-17", "1998-12-01")  # selectivity sweep


def _q1_sql(cutoff: str) -> str:
    return f"""
        SELECT l_returnflag, l_linestatus,
               sum(l_quantity), sum(l_extendedprice),
               sum(l_extendedprice * (1 - l_discount)),
               avg(l_quantity), avg(l_discount), count(*)
        FROM lineitem
        WHERE l_shipdate <= DATE '{cutoff}'
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """


def test_q1_aggregate_sweep_smoke(benchmark):
    """Vectorized GROUP BY aggregation vs the scalar operator path,
    wall-clock, on TPC-H Q1 shapes across a shipdate-selectivity sweep.
    Batch mode must (a) return identical rows, (b) keep the whole plan
    columnar (``rows_materialized == 0``), and (c) beat the scalar
    path's wall clock once structures are warm — the tripwire for
    operator-level regressions."""
    engines = {}
    for mode, batch in (("batch", True), ("scalar", False)):
        vfs, data = build_tpch(scale_factor=0.002)
        engines[mode] = tpch_raw(vfs, data, PostgresRawConfig(
            batch_mode=batch, enable_statistics=False))

    rows = []
    warm_batch_total = warm_scalar_total = 0.0
    for cutoff in _Q1_CUTOFFS:
        sql = _q1_sql(cutoff)
        timings = {}
        for mode, engine in engines.items():
            start = time.perf_counter()
            cold = engine.query(sql)
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = engine.query(sql)
            warm_seconds = time.perf_counter() - start
            timings[mode] = (cold_seconds, warm_seconds, cold, warm)
        b_cold, b_warm, b_res, b_res_warm = timings["batch"]
        s_cold, s_warm, s_res, _ = timings["scalar"]
        assert b_res.rows == s_res.rows, cutoff
        assert b_res.rows_materialized == 0, cutoff
        assert b_res_warm.rows_materialized == 0, cutoff
        warm_batch_total += b_warm
        warm_scalar_total += s_warm
        rows.append([f"shipdate <= {cutoff}", s_warm * 1e3, b_warm * 1e3,
                     s_warm / b_warm])

    header("TPC-H Q1-style aggregate sweep (wall clock, warm)",
           "vectorized grouped accumulation vs per-row accumulators")
    table(["query", "scalar ms", "batch ms", "speedup"], rows)

    speedup = warm_scalar_total / warm_batch_total
    assert speedup >= 1.3, (
        f"warm Q1 batch speedup {speedup:.2f}x below the 1.3x bar")

    benchmark.pedantic(
        lambda: engines["batch"].query(_q1_sql(_Q1_CUTOFFS[-1])),
        rounds=3, iterations=1)
