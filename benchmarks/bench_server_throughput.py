"""Server throughput — concurrent wire clients over one engine.

Unlike the figure benches this measures the *front end*, not the cost
model: real wall-clock time for N threaded wire clients streaming
results through the asyncio server, against the single-threaded
in-process baseline running the same queries back to back. The server
adds protocol framing, an event loop and an executor hop per request —
the bench reports that overhead and how it amortizes as clients share
the engine thread's admission gate.

The smoke test is the CI tripwire: at least 8 concurrent streaming
clients must all complete with correct rows while every stream keeps
the bounded-buffer guarantee (peak buffered rows stays a small
multiple of the row-block size, never the full result).
"""

import threading
import time

from figshared import header, table

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.server import QueryServer, wire_connect
from repro.workloads.micro import generate_micro_csv, micro_schema

N_CLIENTS = 8
QUERIES_PER_CLIENT = 3
ROWS = 2000
BLOCK = 128

# No ORDER BY: a sort would materialize the result inside the plan,
# and the point here is the *streaming* path's bounded buffer.
SQL = "SELECT a1, a2, a4 FROM m WHERE a1 > ?"


def build_engine() -> PostgresRaw:
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", rows=ROWS, nattrs=6, seed=5)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=BLOCK), vfs=vfs)
    engine.register_csv("m", "m.csv", micro_schema(6))
    return engine


def run_clients(port: int, n_clients: int):
    """N threads, each streaming QUERIES_PER_CLIENT results in chunks;
    returns (per-client row counts, per-client peak buffered rows,
    failures)."""
    row_counts = [0] * n_clients
    peaks = [0] * n_clients
    failures: list[tuple[int, str]] = []
    barrier = threading.Barrier(n_clients)

    def client_main(k: int) -> None:
        try:
            with wire_connect("127.0.0.1", port) as session:
                barrier.wait(timeout=30)
                for q in range(QUERIES_PER_CLIENT):
                    cursor = session.execute(SQL, (100 * (q + 1),))
                    while True:
                        got = cursor.fetchmany(64)
                        if not got:
                            break
                        row_counts[k] += len(got)
                    peaks[k] = max(peaks[k], cursor.peak_buffered_rows)
                    cursor.close()
        except Exception as exc:
            failures.append((k, repr(exc)))

    threads = [threading.Thread(target=client_main, args=(k,))
               for k in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return time.perf_counter() - start, row_counts, peaks, failures


def expected_rows_per_client() -> int:
    engine = build_engine()
    return sum(len(engine.query(SQL.replace("?", str(100 * (q + 1)))).rows)
               for q in range(QUERIES_PER_CLIENT))


def test_server_throughput_smoke():
    """CI smoke: >= 8 concurrent streaming clients all complete with
    correct row counts and bounded peak buffering."""
    expected = expected_rows_per_client()

    # In-process baseline: same total work on one thread.
    engine = build_engine()
    start = time.perf_counter()
    for _ in range(N_CLIENTS):
        session_rows = 0
        for q in range(QUERIES_PER_CLIENT):
            session_rows += len(
                engine.query(SQL.replace("?", str(100 * (q + 1)))).rows)
        assert session_rows == expected
    baseline = time.perf_counter() - start

    with QueryServer(build_engine(), max_in_flight=16) as server:
        elapsed, row_counts, peaks, failures = run_clients(
            server.port, N_CLIENTS)
        stats = dict(server.stats)

    assert not failures, failures
    assert row_counts == [expected] * N_CLIENTS
    assert stats["queries"] == N_CLIENTS * QUERIES_PER_CLIENT
    assert stats["rejected_busy"] == 0
    # The streaming bound holds for every client under full concurrency:
    # a handful of blocks, never the whole result buffered server-side.
    assert all(0 < peak <= 8 * BLOCK for peak in peaks), peaks

    header("server throughput",
           f"{N_CLIENTS} threaded wire clients x {QUERIES_PER_CLIENT} "
           f"streamed queries vs the in-process loop")
    total = N_CLIENTS * QUERIES_PER_CLIENT
    table(
        ["mode", "queries", "wall_s", "q_per_s"],
        [["in-process", total, baseline, total / baseline],
         ["wire x8", total, elapsed, total / elapsed]])
    print(f"peak buffered rows per client: {peaks} (block={BLOCK})")
