"""Figure 6 — Adapting to changes in the workload.

Paper setup (§5.1.3): 250 queries in 5 epochs of 50; each epoch's
queries project 5 random attributes from a region of the file's columns
(1-50, 51-100, 1-100, 75-125, 85-135); the cache is capped. Claims:

* within each epoch the engine stabilizes to good performance;
* epoch 3 (revisits fully-cached regions) runs at optimal speed with no
  raw-file access;
* epochs 4/5 pay again only for the newly-touched columns (LRU evicts
  old regions);
* cache utilisation climbs, then saturates at the cap.
"""

import statistics

from figshared import header, micro_engine, table

from repro import PostgresRawConfig, VirtualFS
from repro.simcost.clock import CostEvent
from repro.workloads.queries import epoch_queries

ROWS = 600
ATTRS = 135
PER_EPOCH = 30
EPOCHS = [(1, 50), (51, 100), (1, 100), (75, 125), (85, 135)]


def run():
    vfs = VirtualFS()
    config = PostgresRawConfig(
        row_block_size=256,
        enable_statistics=False,
        cache_budget_bytes=620_000,   # holds ~two epochs' regions
        pm_budget_bytes=250_000,
    )
    engine = micro_engine(vfs, ROWS, ATTRS, config)
    queries = epoch_queries("m", ATTRS, EPOCHS, PER_EPOCH,
                            attrs_per_query=5, seed=5)
    cache = engine.cache_of("m")
    times, utilisation, io_per_query = [], [], []
    for sql in queries:
        io_before = (engine.model.count(CostEvent.DISK_READ_COLD)
                     + engine.model.count(CostEvent.DISK_READ_WARM))
        times.append(engine.query(sql).elapsed)
        io_after = (engine.model.count(CostEvent.DISK_READ_COLD)
                    + engine.model.count(CostEvent.DISK_READ_WARM))
        utilisation.append(cache.utilization())
        io_per_query.append(io_after - io_before)
    return times, utilisation, io_per_query, cache


def epoch_slice(series, epoch):
    return series[epoch * PER_EPOCH:(epoch + 1) * PER_EPOCH]


def test_fig06_workload_shift(benchmark):
    times, utilisation, io_per_query, cache = run()

    header("Figure 6: adapting to workload changes (5 epochs)",
           "stabilizes per epoch; revisited regions served from cache; "
           "LRU follows the drift; utilisation saturates")
    rows = []
    for epoch, region in enumerate(EPOCHS):
        t = epoch_slice(times, epoch)
        rows.append([
            f"{epoch + 1} ({region[0]}-{region[1]})",
            t[0], statistics.mean(t[-10:]),
            f"{epoch_slice(utilisation, epoch)[-1]:.0%}",
            round(statistics.mean(epoch_slice(io_per_query, epoch))),
        ])
    table(["epoch (cols)", "first query (s)", "tail mean (s)",
           "cache use", "avg I/O bytes/query"], rows)

    # (a) Adaptation within epochs 1 and 2: tail much cheaper than entry.
    for epoch in (0, 1):
        t = epoch_slice(times, epoch)
        assert statistics.mean(t[-10:]) < t[0] * 0.6, (
            f"epoch {epoch + 1} should stabilize below its first query")

    # (b) Epoch 3 revisits cached regions: raw-file I/O (nearly)
    # disappears — residual reads only for the few columns the random
    # epoch-1/2 queries never touched.
    io_epoch3 = epoch_slice(io_per_query, 2)
    io_epoch1 = epoch_slice(io_per_query, 0)
    assert statistics.mean(io_epoch3) < 0.2 * statistics.mean(io_epoch1)

    # (c) Epoch 4 drifts into new columns: raw-file access returns.
    io_epoch4 = epoch_slice(io_per_query, 3)
    assert statistics.mean(io_epoch4) > statistics.mean(io_epoch3)

    # (d) The cache ends saturated at its budget, having evicted.
    assert utilisation[-1] > 0.9
    assert cache.evictions > 0

    # (e) Every epoch's tail is far better than a cold first query.
    cold = times[0]
    for epoch in range(5):
        tail = statistics.mean(epoch_slice(times, epoch)[-10:])
        assert tail < cold * 0.7

    benchmark.pedantic(run, rounds=1, iterations=1)
