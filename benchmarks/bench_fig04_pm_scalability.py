"""Figure 4 — Scalability of the positional map.

Paper setup (§5.1.1): the file grows from 2 GB to 92 GB two ways — by
appending rows and by adding attributes — with queries adjusted so every
configuration does similar work per byte. Claim: execution time grows
*linearly* with file size in both directions.

This bench is also the justification for running everything else at
laptop scale: virtual time is linear in file size, so shapes measured
on MB-scale files transfer to the paper's GB-scale ones.
"""

import random

from figshared import header, micro_engine, table

from repro import PostgresRawConfig, VirtualFS
from repro.workloads.queries import random_projection_query

QUERIES = 10
BASE_ROWS = 400
BASE_ATTRS = 25


def average_time(rows, nattrs, attrs_per_query):
    """Average PM-assisted query time. Cache off (this is the §5.1.1
    positional-map experiment) so scan work scales with file bytes."""
    vfs = VirtualFS()
    config = PostgresRawConfig(enable_statistics=False,
                               enable_cache=False,
                               row_block_size=256)
    engine = micro_engine(vfs, rows, nattrs, config)
    rng = random.Random(7)
    times = []
    for _ in range(QUERIES):
        sql = random_projection_query(rng, "m", nattrs, attrs_per_query)
        times.append(engine.query(sql).elapsed)
    return sum(times) / len(times), vfs.size("m.csv")


def test_fig04_scalability_by_rows(benchmark):
    scales = [1, 2, 4, 8]
    results = []
    for scale in scales:
        avg, size = average_time(BASE_ROWS * scale, BASE_ATTRS,
                                 BASE_ATTRS // 2)
        results.append((scale, size, avg))

    header("Figure 4a: scalability — growing the file by rows",
           "execution time scales linearly with file size")
    table(["scale", "file bytes", "avg query time (s)"],
          [list(r) for r in results])

    base_time = results[0][2]
    for scale, _size, avg in results[1:]:
        ratio = avg / base_time
        assert 0.7 * scale <= ratio <= 1.4 * scale, (
            f"time at {scale}x rows should be ~{scale}x, got {ratio:.2f}x")

    benchmark.pedantic(average_time, args=(BASE_ROWS, BASE_ATTRS, 5),
                       rounds=1, iterations=1)


def test_fig04_scalability_by_attributes(benchmark):
    # Growing width: queries project proportionally more attributes, the
    # paper's "incrementally add more projection attributes" protocol.
    scales = [1, 2, 4, 8]
    results = []
    for scale in scales:
        # The paper "incrementally adds more projection attributes" so
        # every configuration does similar work per byte: project a
        # fixed fraction of the (growing) width.
        avg, size = average_time(BASE_ROWS, BASE_ATTRS * scale,
                                 (BASE_ATTRS * scale) // 2)
        results.append((scale, size, avg))

    header("Figure 4b: scalability — growing the file by attributes",
           "execution time scales linearly with file size")
    table(["scale", "file bytes", "avg query time (s)"],
          [list(r) for r in results])

    base_time = results[0][2]
    for scale, _size, avg in results[1:]:
        ratio = avg / base_time
        assert 0.6 * scale <= ratio <= 1.6 * scale, (
            f"time at {scale}x attrs should be ~{scale}x, got {ratio:.2f}x")

    benchmark.pedantic(average_time, args=(BASE_ROWS, BASE_ATTRS * 2, 10),
                       rounds=1, iterations=1)
