"""Compiled scan kernels — warm wall-clock speedup, zero recompiles.

Virtual cost is contractually identical with kernels on or off (the
kernel replays the generic path's charges verbatim), so like the
parallel-scan bench this measures the *Python interpreter*: the fused
per-shape program removes the generic pipeline's per-block dispatch —
per-column materialize calls, prefetch-set assembly, output-column
branching — which dominates warm indexed scans at small row blocks.

The smoke case is the acceptance bar: on a fully warm table, prepared
re-executes must run >= 1.5x faster with kernels on, with results,
non-kernel counters and the virtual clock bit-identical, and a fresh
session must compile the statement's kernel exactly once across any
number of re-executes (``?`` re-binds and repeated executes hit the
kernel cache, never the code generator).
"""

import time

from figshared import header, table

import repro
from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.workloads.micro import generate_micro_csv, micro_schema

ROWS, NATTRS, BLOCK = 40_000, 8, 128
SQL = "SELECT a1, a3, a4, a6 FROM m WHERE a2 > 100000000"
WARM_EXECS = 8


def kernel_engine(kernels: bool):
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", ROWS, NATTRS, seed=3)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=BLOCK,
                                 scan_kernels=kernels),
        vfs=vfs)
    engine.query(f"CREATE TABLE m ({micro_ddl_columns()}) "
                 "USING csv OPTIONS (path 'm.csv')")
    return engine


def micro_ddl_columns() -> str:
    return ", ".join(f"{c.name} {'INTEGER' if c.dtype.family == 'int' else 'VARCHAR'}"
                     for c in micro_schema(NATTRS).columns)


def non_kernel_counters(engine):
    return {k: v for k, v in engine.counters().items()
            if not k.startswith("kernel_")}


def timed_warm_run(statement) -> float:
    """Best-of-3 timing of WARM_EXECS prepared re-executes."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(WARM_EXECS):
            statement.execute([]).fetchall()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_warm_speedup_smoke(benchmark):
    engines = {k: kernel_engine(k) for k in (False, True)}
    sessions = {k: repro.connect(engines[k]) for k in (False, True)}
    statements = {k: sessions[k].prepare(SQL) for k in (False, True)}

    cold = {}
    rows = {}
    for k in (False, True):
        start = time.perf_counter()
        rows[k] = statements[k].execute([]).fetchall()
        cold[k] = time.perf_counter() - start
        for _ in range(2):  # settle stats: epoch moves once, replans once
            statements[k].execute([]).fetchall()

    # Parity first: the speedup must be free.
    assert rows[True] == rows[False]
    assert non_kernel_counters(engines[True]) == \
        non_kernel_counters(engines[False])
    assert engines[True].clock.now() == engines[False].clock.now()

    warm = {k: timed_warm_run(statements[k]) for k in (False, True)}
    assert statements[True].execute([]).fetchall() == \
        statements[False].execute([]).fetchall()
    speedup = warm[False] / warm[True]

    # A fresh session's kernel cache compiles the (now stats-stable)
    # statement exactly once, however many times it re-executes.
    session = repro.connect(engines[True])
    before = dict(engines[True].counters())
    statement = session.prepare(SQL)
    for _ in range(5):
        statement.execute([]).fetchall()
    after = engines[True].counters()
    compiled = after.get("kernel_compiles", 0) \
        - before.get("kernel_compiles", 0)
    assert compiled == 1, f"expected exactly 1 compile, saw {compiled}"
    assert after.get("kernel_hits", 0) - before.get("kernel_hits", 0) >= 5
    bailed = engines[True].counters().get("kernel_bailouts", 0)
    assert bailed == 0, f"warm typed scan must never bail ({bailed})"

    header("Compiled scan kernels (wall clock)",
           "one fused program per scan shape: warm re-executes beat the "
           "generic pipeline >= 1.5x at identical virtual cost")
    table(["kernels", "cold ms", f"warm ms ({WARM_EXECS} execs)",
           "speedup"],
          [[onoff, cold[k] * 1e3, warm[k] * 1e3, warm[False] / warm[k]]
           for k, onoff in ((False, "off"), (True, "on"))])

    assert speedup >= 1.5, (
        f"warm kernel speedup {speedup:.2f}x is below the 1.5x bar")

    benchmark.pedantic(
        lambda: statements[True].execute([]).fetchall(),
        rounds=3, iterations=1)
