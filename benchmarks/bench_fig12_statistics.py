"""Figure 12 — On-the-fly statistics and plan quality.

Paper setup (§5.4): four instances of TPC-H Q1; PostgresRaw with
adaptive statistics vs PostgresRaw without. Claims:

* the first query runs the same plan in both versions, and statistics
  collection adds a small overhead to it (+4.5 s on ~130 s);
* from the second query on, the statistics version picks a different
  (better) plan and runs ~3x faster;
* generating statistics on the fly costs little and buys a lot.
"""

from figshared import build_tpch, header, table, tpch_raw

from repro import PostgresRawConfig
from repro.workloads.tpch import tpch_query

N_INSTANCES = 4


def agg_strategy(plan):
    node = plan
    while node:
        if node["op"] == "Aggregate":
            return node["strategy"]
        node = node.get("input")
    return None


def run_variant(enable_statistics):
    vfs, data = build_tpch()
    engine = tpch_raw(vfs, data, PostgresRawConfig(
        enable_statistics=enable_statistics))
    times = []
    strategies = []
    for _ in range(N_INSTANCES):
        result = engine.query(tpch_query("q1"))
        times.append(result.elapsed)
        strategies.append(agg_strategy(result.plan))
    return times, strategies


def test_fig12_statistics(benchmark):
    with_stats, with_strategies = run_variant(True)
    without_stats, without_strategies = run_variant(False)

    header("Figure 12: execution time as PostgresRaw generates statistics",
           "same first plan + small collection overhead; ~3x faster "
           "Q1_b..Q1_d once statistics enable a better plan")
    rows = []
    for i in range(N_INSTANCES):
        rows.append([f"Q1_{'abcd'[i]}", with_stats[i],
                     with_strategies[i], without_stats[i],
                     without_strategies[i]])
    table(["instance", "w/ stats (s)", "plan", "w/o stats (s)", "plan"],
          rows)

    # (a) First instance: both run the no-stats plan; the stats version
    # pays a visible but small collection overhead (paper: ~3.5%).
    assert with_strategies[0] == without_strategies[0] == "sort"
    overhead = with_stats[0] - without_stats[0]
    assert overhead > 0, "stats collection must cost something"
    assert overhead < 0.25 * without_stats[0], (
        "stats collection overhead should stay small")

    # (b) Later instances: plan changes only in the stats version.
    assert all(s == "hash" for s in with_strategies[1:])
    assert all(s == "sort" for s in without_strategies[1:])

    # (c) The better plan is substantially faster (paper: ~3x).
    for i in range(1, N_INSTANCES):
        speedup = without_stats[i] / with_stats[i]
        assert speedup > 1.6, (
            f"Q1_{'abcd'[i]} speedup {speedup:.2f}x should exceed 1.6x")

    benchmark.pedantic(run_variant, args=(True,), rounds=1, iterations=1)
