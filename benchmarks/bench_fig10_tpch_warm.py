"""Figure 10 — Warm TPC-H: Q1, Q3, Q4, Q6, Q10, Q12, Q14, Q19.

Paper setup (§5.2): "Now that PostgreSQL and PostgresRaw are 'warm'" —
after the Figure 9 run — the remaining paper queries execute. Claims:

* PostgresRaw PM (no cache) is always slower than PostgreSQL: it keeps
  re-reading and re-converting raw data (3x on Q6, ~25% on Q1);
* PostgresRaw PM+C is faster than PostgreSQL on most queries, even
  though PostgreSQL spent hundreds of seconds loading first.
"""

from figshared import build_tpch, header, table, tpch_loaded, tpch_raw

from repro import PostgresRawConfig
from repro.workloads.tpch import PAPER_QUERIES, tpch_query

#: Warm = after the Figure 9 pair plus one pass over the subset, so
#: every engine's structures (maps, caches, buffers, statistics) are in
#: steady state when measured.
WARMUP = ("q10", "q14") + PAPER_QUERIES


def run_warm():
    vfs, data = build_tpch()
    loaded, _load = tpch_loaded(vfs, data)

    pm_cache = tpch_raw(vfs, data, PostgresRawConfig())
    pm_only_vfs, pm_only_data = build_tpch()
    pm_only = tpch_raw(pm_only_vfs, pm_only_data,
                       PostgresRawConfig(enable_cache=False))

    for engine in (loaded, pm_cache, pm_only):
        for q in WARMUP:
            engine.query(tpch_query(q))

    series = {"PostgresRaw PM+C": [], "PostgresRaw PM": [],
              "PostgreSQL": []}
    for q in PAPER_QUERIES:
        series["PostgresRaw PM+C"].append(
            pm_cache.query(tpch_query(q)).elapsed)
        series["PostgresRaw PM"].append(
            pm_only.query(tpch_query(q)).elapsed)
        series["PostgreSQL"].append(loaded.query(tpch_query(q)).elapsed)
    return series


def test_fig10_tpch_warm(benchmark):
    series = run_warm()

    header("Figure 10: warm TPC-H query subset",
           "PM alone always behind PostgreSQL (3x on Q6, ~25% on Q1); "
           "PM+C ahead of PostgreSQL on most queries")
    rows = []
    for i, q in enumerate(PAPER_QUERIES):
        rows.append([q] + [series[name][i] for name in series])
    table(["query"] + list(series), rows)

    pm_cache = series["PostgresRaw PM+C"]
    pm_only = series["PostgresRaw PM"]
    postgres = series["PostgreSQL"]

    # (a) PM alone loses to loaded binary pages on every query.
    for i, q in enumerate(PAPER_QUERIES):
        assert pm_only[i] > postgres[i], (
            f"{q}: PM-only should trail PostgreSQL")
    # (b) Q6 (few narrow attributes) is where PM-only hurts most
    # relative to PostgreSQL — a multi-x gap (paper: 3x).
    q6 = PAPER_QUERIES.index("q6")
    assert pm_only[q6] / postgres[q6] > 1.5
    # (c) The cache turns the tables: PM+C wins most queries.
    wins = sum(1 for i in range(len(PAPER_QUERIES))
               if pm_cache[i] < postgres[i])
    assert wins >= len(PAPER_QUERIES) // 2, (
        f"PM+C should win most warm queries, won {wins}")
    # (d) And PM+C always beats PM-only once warm.
    for i in range(len(PAPER_QUERIES)):
        assert pm_cache[i] <= pm_only[i] * 1.05

    benchmark.pedantic(run_warm, rounds=1, iterations=1)
