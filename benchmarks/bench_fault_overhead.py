"""Fault-tolerance machinery must be (nearly) free on the clean path.

The fault-injection hook sits on every costed read
(:meth:`VirtualFS.fault_check`), and the error-policy plumbing wraps
every scanned row's conversion — so the robustness PR's bargain is only
honest if a fault-free engine pays essentially nothing for it. Two
checks:

* **Exactness**: a :class:`FaultInjectingVFS` with ``rate=0`` produces
  bit-identical results, counters and virtual-clock time to a plain
  :class:`VirtualFS` — the hook charges nothing when no fault fires.
* **Wall clock**: the warm Q1-style aggregate sweep runs within 2%
  of the plain-VFS wall time (median of several rounds; the hook is a
  dict update and two comparisons per read).
"""

import time

from figshared import header, table

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.storage.faults import FaultInjectingVFS
from repro.workloads.micro import generate_micro_csv, micro_schema

ROWS = 2000
ATTRS = 10
Q1 = "SELECT a1, a2, a3 FROM m WHERE a1 > 50"
SWEEP = 20
ROUNDS = 10


def build_engine(vfs_cls):
    vfs = vfs_cls()
    generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=0)
    engine = PostgresRaw(config=PostgresRawConfig(), vfs=vfs)
    engine.register_csv("m", "m.csv", micro_schema(ATTRS))
    engine.query(Q1)  # warm: PM + cache built, kernels aside
    return engine


def measure_overhead(plain, faulty) -> tuple[float, float, float]:
    """``(overhead, t_plain, t_faulty)`` for one warm Q1 sweep.

    Each sample is a *pair*: one plain-VFS query and one fault-VFS
    query back to back, so CPU-state drift (frequency scaling, cache
    pressure from unrelated processes) cancels within the pair, and
    the median of the per-pair ratios discards jitter spikes that hit
    only one side. Whoever runs second in a pair inherits warm CPU
    caches from the first, so pair order alternates and the two
    order-biased medians are combined geometrically — the bias
    cancels, the hook's (per-read, deterministic) overhead does not."""
    ratios = [[], []]  # [plain-first, faulty-first] faulty/plain ratios
    t_plain = t_faulty = float("inf")
    for sample in range(ROUNDS * SWEEP):
        first, second = ((plain, faulty) if sample % 2 == 0
                         else (faulty, plain))
        t0 = time.perf_counter()
        first.query(Q1)
        t1 = time.perf_counter()
        second.query(Q1)
        t2 = time.perf_counter()
        dt_first, dt_second = t1 - t0, t2 - t1
        if sample % 2 == 0:
            ratios[0].append(dt_second / dt_first)
            t_plain = min(t_plain, dt_first)
            t_faulty = min(t_faulty, dt_second)
        else:
            ratios[1].append(dt_first / dt_second)
            t_plain = min(t_plain, dt_second)
            t_faulty = min(t_faulty, dt_first)
    medians = []
    for side in ratios:
        side.sort()
        medians.append(side[len(side) // 2])
    return ((medians[0] * medians[1]) ** 0.5 - 1.0,
            t_plain * SWEEP, t_faulty * SWEEP)


def test_fault_overhead_smoke(benchmark):
    plain = build_engine(VirtualFS)
    faulty = build_engine(lambda: FaultInjectingVFS(seed=0, rate=0.0))

    # Exactness: rate=0 means the hook is pure overhead-free plumbing.
    res_plain = plain.query(Q1)
    res_faulty = faulty.query(Q1)
    assert res_faulty.rows == res_plain.rows
    assert res_faulty.counters == res_plain.counters
    assert faulty.clock.now() == plain.clock.now()

    # Best-of-retries: on a quiet machine one measurement suffices;
    # a CI box under load gets a few chances to produce one clean
    # reading (noise spikes do not repeat, real overhead does).
    overhead = float("inf")
    for _ in range(4):
        attempt, t_plain, t_faulty = measure_overhead(plain, faulty)
        overhead = min(overhead, attempt)
        if overhead < 0.02:
            break

    header("Fault-tolerance clean-path overhead (warm Q1 sweep)",
           "rate=0 fault hook must cost < 2% wall clock and 0 virtual "
           "seconds")
    table(["vfs", "sweep seconds", "overhead"],
          [["VirtualFS", t_plain, "-"],
           ["FaultInjectingVFS(rate=0)", t_faulty,
            f"{overhead * 100:+.2f}%"]])

    assert overhead < 0.02, (
        f"clean-path fault hook costs {overhead * 100:.2f}% wall clock "
        f"(budget 2%)")
    benchmark.pedantic(lambda: faulty.query(Q1), rounds=3, iterations=5)
