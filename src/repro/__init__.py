"""repro: a full reproduction of *NoDB: Efficient Query Execution on Raw
Data Files* (Alagiannis et al., SIGMOD 2012).

Quickstart (session API)::

    import repro
    from repro import Schema, INTEGER, varchar
    from repro.storage import VirtualFS

    vfs = VirtualFS()
    vfs.create("people.csv", b"1,alice\\n2,bob\\n")
    session = repro.connect(vfs=vfs)
    session.register_csv("people", "people.csv",
                         Schema([("id", INTEGER), ("name", varchar())]))
    row = session.execute("SELECT name FROM people WHERE id = ?",
                          (2,)).fetchone()
    assert row == ("bob",)

The pre-session surface remains: ``PostgresRaw.query(sql)`` returns an
eager :class:`QueryResult` (and ``Database.execute`` survives as a
deprecated alias). See DESIGN.md for the system map and EXPERIMENTS.md
for the paper-figure reproductions under benchmarks/.
"""

from repro.api import (
    Cursor,
    PreparedStatement,
    Scheduler,
    Session,
    connect,
)
from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.engine import PostgresRaw
from repro.core.positional_map import PositionalMap
from repro.core.prewarm import FsInterfacePrewarmer
from repro.core.tuner import IdleTuner, TuningReport
from repro.engines.base import Database
from repro.engines.cfitsio import CFitsioProgram
from repro.engines.external import ExternalFilesDBMS
from repro.engines.loaded import LoadedDBMS
from repro.errors import CatalogError, ReproError
from repro.formats.registry import (
    FormatAdapter,
    available_formats,
    get_format,
    register_format,
)
from repro.simcost.clock import CostEvent, VirtualClock
from repro.simcost.model import CostModel
from repro.simcost.profiles import (
    CFITSIO_PROFILE,
    CSV_ENGINE_PROFILE,
    DBMS_X_EXTERNAL_PROFILE,
    DBMS_X_PROFILE,
    MYSQL_PROFILE,
    POSTGRESQL_PROFILE,
    POSTGRES_RAW_PROFILE,
    CostProfile,
)
from repro.sql.catalog import Column, Schema, TableInfo, TableKind
from repro.sql.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    DataType,
    char,
    decimal,
    varchar,
)
from repro.sql.executor import QueryResult
from repro.storage.vfs import OSPageCache, VirtualFS

__version__ = "1.1.0"

__all__ = [
    # session/cursor façade (repro.api)
    "connect", "Session", "Cursor", "PreparedStatement", "Scheduler",
    # engines
    "PostgresRaw", "PostgresRawConfig", "LoadedDBMS", "ExternalFilesDBMS",
    "CFitsioProgram", "Database",
    # core structures
    "PositionalMap", "BinaryCache", "IdleTuner", "TuningReport",
    "FsInterfacePrewarmer",
    # catalog / types
    "Schema", "Column", "TableInfo", "TableKind", "DataType",
    "INTEGER", "BIGINT", "FLOAT", "DATE", "BOOLEAN",
    "varchar", "char", "decimal",
    # results
    "QueryResult",
    # cost model
    "VirtualClock", "CostModel", "CostEvent", "CostProfile",
    "POSTGRES_RAW_PROFILE", "POSTGRESQL_PROFILE", "DBMS_X_PROFILE",
    "MYSQL_PROFILE", "CSV_ENGINE_PROFILE", "DBMS_X_EXTERNAL_PROFILE",
    "CFITSIO_PROFILE",
    # format-adapter registry (CREATE TABLE ... USING <format>)
    "FormatAdapter", "register_format", "get_format", "available_formats",
    # storage
    "VirtualFS", "OSPageCache",
    # errors
    "ReproError", "CatalogError",
]
