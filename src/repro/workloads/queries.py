"""Query generators for the micro-benchmarks.

All generators are deterministic under a seed and produce SQL strings
over the micro schema (``a1..aN``), matching the experimental setups of
§5.1:

* Fig 3 / Fig 5: "random set of simple select project queries ... Each
  query asks for k random attributes of the raw file. Selectivity is
  100% as there is no WHERE clause."
* Fig 6: epochs of queries restricted to a column region.
* Fig 7/8: one selection predicate + aggregations on the projected
  attributes, with selectivity and projectivity swept.
"""

from __future__ import annotations

import random

from repro.workloads.micro import VALUE_RANGE


def random_projection_query(rng: random.Random, table: str, nattrs: int,
                            k: int, lo: int = 1, hi: int | None = None,
                            ) -> str:
    """SELECT of ``k`` random attributes drawn from columns [lo, hi]."""
    hi = hi if hi is not None else nattrs
    attrs = rng.sample(range(lo, hi + 1), k)
    cols = ", ".join(f"a{i}" for i in attrs)
    return f"SELECT {cols} FROM {table}"


def selectivity_query(table: str, nattrs: int, selectivity: float,
                      projectivity: float = 1.0, agg: bool = True,
                      value_range: int = VALUE_RANGE) -> str:
    """Fig 7/8 query shape: one WHERE predicate on a1 with the requested
    selectivity (values are uniform in [0, value_range)), aggregations
    over the first ``projectivity`` fraction of attributes."""
    width = max(1, round(nattrs * projectivity))
    threshold = int(selectivity * value_range)
    if agg:
        cols = ", ".join(f"sum(a{i})" for i in range(1, width + 1))
    else:
        cols = ", ".join(f"a{i}" for i in range(1, width + 1))
    return f"SELECT {cols} FROM {table} WHERE a1 < {threshold}"


def projectivity_query(table: str, nattrs: int, projectivity: float,
                       agg: bool = True) -> str:
    """Fig 8(b): constant 100% selectivity, varying projectivity."""
    return selectivity_query(table, nattrs, 1.0, projectivity, agg)


def epoch_queries(table: str, nattrs: int, epochs: list[tuple[int, int]],
                  queries_per_epoch: int, attrs_per_query: int,
                  seed: int = 0) -> list[str]:
    """Fig 6 workload: ``queries_per_epoch`` random projections per
    epoch, each epoch restricted to a column region [lo, hi]."""
    rng = random.Random(seed)
    out: list[str] = []
    for lo, hi in epochs:
        for _ in range(queries_per_epoch):
            out.append(random_projection_query(
                rng, table, nattrs, attrs_per_query, lo, hi))
    return out
