"""TPC-H substrate: schema, scaled data generator, the paper's queries."""

from repro.workloads.tpch.dbgen import TPCH_BASE_ROWS, generate_tpch
from repro.workloads.tpch.queries import PAPER_QUERIES, tpch_query
from repro.workloads.tpch.schema import TPCH_SCHEMAS, tpch_schema

__all__ = [
    "TPCH_SCHEMAS",
    "tpch_schema",
    "generate_tpch",
    "TPCH_BASE_ROWS",
    "tpch_query",
    "PAPER_QUERIES",
]
