"""TPC-H schemas (all eight tables, standard column order)."""

from __future__ import annotations

from repro.sql.catalog import Column, Schema
from repro.sql.datatypes import DATE, INTEGER, char, decimal, varchar

TPCH_SCHEMAS: dict[str, Schema] = {
    "region": Schema([
        Column("r_regionkey", INTEGER),
        Column("r_name", char(25)),
        Column("r_comment", varchar(152)),
    ]),
    "nation": Schema([
        Column("n_nationkey", INTEGER),
        Column("n_name", char(25)),
        Column("n_regionkey", INTEGER),
        Column("n_comment", varchar(152)),
    ]),
    "supplier": Schema([
        Column("s_suppkey", INTEGER),
        Column("s_name", char(25)),
        Column("s_address", varchar(40)),
        Column("s_nationkey", INTEGER),
        Column("s_phone", char(15)),
        Column("s_acctbal", decimal(15, 2)),
        Column("s_comment", varchar(101)),
    ]),
    "part": Schema([
        Column("p_partkey", INTEGER),
        Column("p_name", varchar(55)),
        Column("p_mfgr", char(25)),
        Column("p_brand", char(10)),
        Column("p_type", varchar(25)),
        Column("p_size", INTEGER),
        Column("p_container", char(10)),
        Column("p_retailprice", decimal(15, 2)),
        Column("p_comment", varchar(23)),
    ]),
    "partsupp": Schema([
        Column("ps_partkey", INTEGER),
        Column("ps_suppkey", INTEGER),
        Column("ps_availqty", INTEGER),
        Column("ps_supplycost", decimal(15, 2)),
        Column("ps_comment", varchar(199)),
    ]),
    "customer": Schema([
        Column("c_custkey", INTEGER),
        Column("c_name", varchar(25)),
        Column("c_address", varchar(40)),
        Column("c_nationkey", INTEGER),
        Column("c_phone", char(15)),
        Column("c_acctbal", decimal(15, 2)),
        Column("c_mktsegment", char(10)),
        Column("c_comment", varchar(117)),
    ]),
    "orders": Schema([
        Column("o_orderkey", INTEGER),
        Column("o_custkey", INTEGER),
        Column("o_orderstatus", char(1)),
        Column("o_totalprice", decimal(15, 2)),
        Column("o_orderdate", DATE),
        Column("o_orderpriority", char(15)),
        Column("o_clerk", char(15)),
        Column("o_shippriority", INTEGER),
        Column("o_comment", varchar(79)),
    ]),
    "lineitem": Schema([
        Column("l_orderkey", INTEGER),
        Column("l_partkey", INTEGER),
        Column("l_suppkey", INTEGER),
        Column("l_linenumber", INTEGER),
        Column("l_quantity", decimal(15, 2)),
        Column("l_extendedprice", decimal(15, 2)),
        Column("l_discount", decimal(15, 2)),
        Column("l_tax", decimal(15, 2)),
        Column("l_returnflag", char(1)),
        Column("l_linestatus", char(1)),
        Column("l_shipdate", DATE),
        Column("l_commitdate", DATE),
        Column("l_receiptdate", DATE),
        Column("l_shipinstruct", char(25)),
        Column("l_shipmode", char(10)),
        Column("l_comment", varchar(44)),
    ]),
}


def tpch_schema(table: str) -> Schema:
    """Schema of one TPC-H table (case-insensitive)."""
    return TPCH_SCHEMAS[table.lower()]
