"""Deterministic TPC-H data generator (scaled dbgen).

Generates all eight tables as CSV files on a VFS, honouring the value
distributions and inter-table relationships the paper's query subset
depends on (Q1, Q3, Q4, Q6, Q10, Q12, Q14, Q19): date arithmetic
between o_orderdate / l_shipdate / l_commitdate / l_receiptdate,
returnflag/linestatus semantics, PROMO part types, brand/container/size
combinations, market segments and order priorities.

Row counts follow the TPC-H ratios (lineitem ~6M * SF) so micro scale
factors keep the relative table sizes the optimizer sees at SF 10.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from repro.storage.vfs import VirtualFS
from repro.workloads.tpch.schema import TPCH_SCHEMAS

#: TPC-H base cardinalities at scale factor 1.
TPCH_BASE_ROWS = {
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
    # lineitem: 1..7 per order, ~4 average
}

_START_DATE = datetime.date(1992, 1, 1)
_END_DATE = datetime.date(1998, 8, 2)
_CUTOFF = datetime.date(1995, 6, 17)  # returnflag/linestatus watershed

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                 "TAKE BACK RETURN"]
_TYPE_SYL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINER_SYL1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_SYL2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                   "DRUM"]
_NOUNS = ["packages", "requests", "accounts", "deposits", "foxes",
          "ideas", "theodolites", "pinto beans", "instructions",
          "dependencies", "excuses", "platelets", "asymptotes",
          "courts", "dolphins"]
_VERBS = ["sleep", "wake", "are", "cajole", "haggle", "nag", "use",
          "boost", "affix", "detect", "integrate", "maintain", "nod"]
_ADJECTIVES = ["furious", "sly", "careful", "blithe", "quick", "fluffy",
               "slow", "quiet", "ruthless", "thin", "close", "dogged"]


def _comment(rng: random.Random) -> str:
    return (f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} "
            f"{rng.choice(_VERBS)}")


def _phone(rng: random.Random, nationkey: int) -> str:
    return (f"{10 + nationkey}-{rng.randrange(100, 1000)}-"
            f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}")


def _rand_date(rng: random.Random, lo: datetime.date,
               hi: datetime.date) -> datetime.date:
    span = (hi - lo).days
    return lo + datetime.timedelta(rng.randrange(span + 1))


@dataclass
class TpchData:
    """Handle to the generated files: table name -> VFS path."""

    paths: dict[str, str] = field(default_factory=dict)
    row_counts: dict[str, int] = field(default_factory=dict)

    def path(self, table: str) -> str:
        return self.paths[table.lower()]


def generate_tpch(vfs: VirtualFS, scale_factor: float = 0.001,
                  prefix: str = "tpch", seed: int = 0) -> TpchData:
    """Generate the eight TPC-H tables at ``scale_factor`` onto ``vfs``.

    ``scale_factor=0.001`` means ~6000 lineitem rows — the shapes of the
    paper's SF-10 experiments at laptop-Python scale.
    """
    rng = random.Random(seed)
    data = TpchData()

    n_supplier = max(3, round(TPCH_BASE_ROWS["supplier"] * scale_factor))
    n_part = max(5, round(TPCH_BASE_ROWS["part"] * scale_factor))
    n_customer = max(5, round(TPCH_BASE_ROWS["customer"] * scale_factor))
    n_orders = max(10, round(TPCH_BASE_ROWS["orders"] * scale_factor))

    def emit(table: str, rows: list[list[str]]) -> None:
        path = f"{prefix}/{table}.csv"
        payload = ("\n".join(",".join(row) for row in rows) + "\n"
                   ).encode("ascii") if rows else b""
        vfs.create(path, payload)
        data.paths[table] = path
        data.row_counts[table] = len(rows)

    # -- region / nation (fixed) ------------------------------------------
    emit("region", [[str(i), name, _comment(rng)]
                    for i, name in enumerate(_REGIONS)])
    emit("nation", [[str(i), name, str(region), _comment(rng)]
                    for i, (name, region) in enumerate(_NATIONS)])

    # -- supplier ---------------------------------------------------------
    supplier_rows = []
    for key in range(1, n_supplier + 1):
        nation = rng.randrange(len(_NATIONS))
        supplier_rows.append([
            str(key), f"Supplier#{key:09d}",
            f"addr {rng.randrange(10 ** 6)}", str(nation),
            _phone(rng, nation), f"{rng.uniform(-999.99, 9999.99):.2f}",
            _comment(rng),
        ])
    emit("supplier", supplier_rows)

    # -- part ---------------------------------------------------------------
    part_types: list[str] = []
    part_brands: list[str] = []
    part_containers: list[str] = []
    part_sizes: list[int] = []
    part_prices: list[float] = []
    part_rows = []
    for key in range(1, n_part + 1):
        ptype = (f"{rng.choice(_TYPE_SYL1)} {rng.choice(_TYPE_SYL2)} "
                 f"{rng.choice(_TYPE_SYL3)}")
        brand = f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
        container = (f"{rng.choice(_CONTAINER_SYL1)} "
                     f"{rng.choice(_CONTAINER_SYL2)}")
        size = rng.randrange(1, 51)
        price = (90000 + (key % 200000) / 10.0 + 100 * (key % 1000)) / 100.0
        part_types.append(ptype)
        part_brands.append(brand)
        part_containers.append(container)
        part_sizes.append(size)
        part_prices.append(price)
        part_rows.append([
            str(key), f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}",
            f"Manufacturer#{1 + key % 5}", brand, ptype, str(size),
            container, f"{price:.2f}", _comment(rng),
        ])
    emit("part", part_rows)

    # -- partsupp -----------------------------------------------------------
    partsupp_rows = []
    for partkey in range(1, n_part + 1):
        for i in range(4):
            suppkey = 1 + (partkey + i * max(1, n_supplier // 4)
                           ) % n_supplier
            partsupp_rows.append([
                str(partkey), str(suppkey), str(rng.randrange(1, 10000)),
                f"{rng.uniform(1.0, 1000.0):.2f}", _comment(rng),
            ])
    emit("partsupp", partsupp_rows)

    # -- customer -----------------------------------------------------------
    customer_rows = []
    for key in range(1, n_customer + 1):
        nation = rng.randrange(len(_NATIONS))
        customer_rows.append([
            str(key), f"Customer#{key:09d}",
            f"addr {rng.randrange(10 ** 6)}", str(nation),
            _phone(rng, nation), f"{rng.uniform(-999.99, 9999.99):.2f}",
            rng.choice(_SEGMENTS), _comment(rng),
        ])
    emit("customer", customer_rows)

    # -- orders + lineitem ---------------------------------------------------
    orders_rows = []
    lineitem_rows = []
    for orderkey in range(1, n_orders + 1):
        custkey = rng.randrange(1, n_customer + 1)
        orderdate = _rand_date(rng, _START_DATE,
                               _END_DATE - datetime.timedelta(151))
        n_lines = rng.randrange(1, 8)
        total = 0.0
        all_filled = True
        for linenumber in range(1, n_lines + 1):
            partkey = rng.randrange(1, n_part + 1)
            suppkey = 1 + (partkey % n_supplier)
            quantity = rng.randrange(1, 51)
            extended = quantity * part_prices[partkey - 1]
            discount = rng.randrange(0, 11) / 100.0
            tax = rng.randrange(0, 9) / 100.0
            shipdate = orderdate + datetime.timedelta(rng.randrange(1, 122))
            commitdate = orderdate + datetime.timedelta(rng.randrange(30, 91))
            receiptdate = shipdate + datetime.timedelta(rng.randrange(1, 31))
            if receiptdate <= _CUTOFF:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > _CUTOFF else "F"
            if linestatus == "O":
                all_filled = False
            total += extended * (1 + tax) * (1 - discount)
            lineitem_rows.append([
                str(orderkey), str(partkey), str(suppkey), str(linenumber),
                f"{float(quantity):.2f}", f"{extended:.2f}",
                f"{discount:.2f}", f"{tax:.2f}", returnflag, linestatus,
                shipdate.isoformat(), commitdate.isoformat(),
                receiptdate.isoformat(), rng.choice(_INSTRUCTIONS),
                rng.choice(_SHIPMODES), _comment(rng),
            ])
        orders_rows.append([
            str(orderkey), str(custkey),
            "F" if all_filled else "O", f"{total:.2f}",
            orderdate.isoformat(), rng.choice(_PRIORITIES),
            f"Clerk#{rng.randrange(1, 1001):09d}", "0", _comment(rng),
        ])
    emit("orders", orders_rows)
    emit("lineitem", lineitem_rows)

    for table in data.paths:
        assert table in TPCH_SCHEMAS
    return data
