"""Workloads: the paper's data generators and query generators.

* :mod:`repro.workloads.micro` — §5.1 micro-benchmark files (uniform
  random integers, many attributes) + §6 attribute-width variants.
* :mod:`repro.workloads.queries` — random select-project queries,
  selectivity/projectivity sweeps, epoch workloads (Fig 6).
* :mod:`repro.workloads.tpch` — TPC-H schema, scaled deterministic data
  generator, and the paper's query subset (§5.2).
"""

from repro.workloads.micro import (
    generate_micro_csv,
    generate_string_csv,
    micro_schema,
    string_schema,
)
from repro.workloads.queries import (
    epoch_queries,
    projectivity_query,
    random_projection_query,
    selectivity_query,
)

__all__ = [
    "generate_micro_csv",
    "generate_string_csv",
    "micro_schema",
    "string_schema",
    "random_projection_query",
    "selectivity_query",
    "projectivity_query",
    "epoch_queries",
]
