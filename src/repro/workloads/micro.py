"""Micro-benchmark file generators (§5.1, §6).

The paper's micro-benchmark file: "7.5 * 10^6 tuples. Each tuple
contains 150 attributes with integers distributed randomly in the range
[0 - 10^9)". Sizes here are parameters; the cost model is linear in
them, so shapes survive downscaling (verified by the Fig 4 bench).

§6's "Complex Database Schemas" experiment varies the *width* of
(string) attributes between 16 and 64 characters —
:func:`generate_string_csv`.
"""

from __future__ import annotations

import random

from repro.sql.catalog import Column, Schema
from repro.sql.datatypes import INTEGER, varchar
from repro.storage.vfs import VirtualFS

VALUE_RANGE = 10 ** 9


def micro_schema(nattrs: int) -> Schema:
    """The micro-benchmark schema: ``a1..aN`` integer attributes."""
    return Schema([Column(f"a{i + 1}", INTEGER) for i in range(nattrs)])


def generate_micro_csv(vfs: VirtualFS, path: str, rows: int, nattrs: int,
                       seed: int = 0, value_range: int = VALUE_RANGE,
                       ) -> Schema:
    """Write the §5.1 micro file to the VFS; returns its schema."""
    rng = random.Random(seed)
    lines = []
    for _ in range(rows):
        lines.append(",".join(
            str(rng.randrange(value_range)) for _ in range(nattrs)))
    payload = ("\n".join(lines) + "\n").encode("ascii") if lines else b""
    vfs.create(path, payload)
    return micro_schema(nattrs)


def append_micro_rows(vfs: VirtualFS, path: str, rows: int, nattrs: int,
                      seed: int = 1, value_range: int = VALUE_RANGE) -> None:
    """Append more rows to an existing micro file (the §4.5 external
    append scenario)."""
    rng = random.Random(seed)
    lines = []
    for _ in range(rows):
        lines.append(",".join(
            str(rng.randrange(value_range)) for _ in range(nattrs)))
    if lines:
        vfs.append_bytes(path, ("\n".join(lines) + "\n").encode("ascii"))


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def string_schema(nattrs: int, width: int) -> Schema:
    """Schema of ``nattrs`` fixed-width string attributes (§6)."""
    return Schema([Column(f"s{i + 1}", varchar(width))
                   for i in range(nattrs)])


def generate_string_csv(vfs: VirtualFS, path: str, rows: int, nattrs: int,
                        width: int, seed: int = 0) -> Schema:
    """Write a file of ``width``-character string attributes — the §6
    attribute-width experiment (Figure 13)."""
    rng = random.Random(seed)
    lines = []
    for _ in range(rows):
        lines.append(",".join(
            "".join(rng.choice(_ALPHABET) for _ in range(width))
            for _ in range(nattrs)))
    payload = ("\n".join(lines) + "\n").encode("ascii") if lines else b""
    vfs.create(path, payload)
    return string_schema(nattrs, width)
