"""Engines: the comparators of the paper's evaluation.

* :class:`repro.core.engine.PostgresRaw` — the NoDB prototype (in core/)
* :class:`LoadedDBMS` — conventional load-then-query engines
  (PostgreSQL / DBMS X / MySQL profiles)
* :class:`ExternalFilesDBMS` — external-files straw-man (MySQL CSV
  engine / DBMS X external files)
* :class:`CFitsioProgram` — the custom C program of §5.3
"""

from repro.engines.base import Database
from repro.engines.cfitsio import CFitsioProgram
from repro.engines.external import ExternalFilesDBMS
from repro.engines.loaded import LoadedDBMS

__all__ = ["Database", "LoadedDBMS", "ExternalFilesDBMS", "CFitsioProgram"]
