"""ExternalFilesDBMS: the external-files straw-man comparator.

Models MySQL's CSV storage engine and DBMS X's external-files feature
(§3.1, §5.1.4): tables are queryable instantly with zero load cost, but
every query re-reads and fully re-parses the raw file, materializes
complete tuples, and no auxiliary structures (indexes, statistics,
caches) ever exist.

The class body is nearly empty on purpose: ``in_situ_policy =
"external"`` is all the format adapters need to bind the straw-man
access method, so this engine differs from PostgresRaw only in that
policy and its calibrated cost profile — the paper's experimental
control, now structural.
"""

from __future__ import annotations

from repro.engines.base import Database
from repro.simcost.profiles import CSV_ENGINE_PROFILE, CostProfile
from repro.storage.vfs import VirtualFS


class ExternalFilesDBMS(Database):
    """A DBMS whose tables are raw files scanned from scratch per query."""

    in_situ_policy = "external"

    def __init__(self, profile: CostProfile = CSV_ENGINE_PROFILE,
                 vfs: VirtualFS | None = None):
        super().__init__(profile, vfs)
        # External files expose no statistics to the optimizer (§2).
        self.use_statistics = False
