"""ExternalFilesDBMS: the external-files straw-man comparator.

Models MySQL's CSV storage engine and DBMS X's external-files feature
(§3.1, §5.1.4): tables are queryable instantly with zero load cost, but
every query re-reads and fully re-parses the raw file, materializes
complete tuples, and no auxiliary structures (indexes, statistics,
caches) ever exist.
"""

from __future__ import annotations

from repro.engines.access import ExternalAccess
from repro.engines.base import Database
from repro.simcost.profiles import CSV_ENGINE_PROFILE, CostProfile
from repro.sql.catalog import Schema, TableInfo, TableKind
from repro.storage.vfs import VirtualFS


class ExternalFilesDBMS(Database):
    """A DBMS whose tables are raw files scanned from scratch per query."""

    def __init__(self, profile: CostProfile = CSV_ENGINE_PROFILE,
                 vfs: VirtualFS | None = None):
        super().__init__(profile, vfs)
        # External files expose no statistics to the optimizer (§2).
        self.use_statistics = False

    def register_csv(self, name: str, csv_path: str, schema: Schema,
                     ) -> TableInfo:
        """Declare an external table over ``csv_path`` (instant — this
        is the one virtue of the straw-man)."""
        info = TableInfo(name=name, schema=schema,
                         kind=TableKind.EXTERNAL_CSV, path=csv_path)
        info.access = ExternalAccess(self.vfs, csv_path, schema, self.model)
        self.catalog.register(info)
        return info
