"""CFitsioProgram: the custom C program comparator of §5.3.

The paper compares FITS-enabled PostgresRaw against "a custom-made C
program that uses the CFITSIO library and procedurally implements the
same workload". Its behaviours, reproduced here: a tight C loop (cheap
per-value costs), no SQL, one hand-written program per query, no
auxiliary structures — "the entire file must be scanned for every
query", helped only by the OS file-system cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.formats.fits import FitsTableInfo
from repro.formats.registry import get_format
from repro.simcost.clock import VirtualClock
from repro.simcost.model import CostModel
from repro.simcost.profiles import CFITSIO_PROFILE, CostProfile
from repro.storage.vfs import VirtualFS


@dataclass
class AggregateAnswer:
    value: float | None
    elapsed: float


class CFitsioProgram:
    """Procedural MIN/MAX/AVG over FITS columns, full scan per call."""

    def __init__(self, vfs: VirtualFS, path: str,
                 profile: CostProfile = CFITSIO_PROFILE):
        self.vfs = vfs
        self.path = path
        self.clock = VirtualClock()
        self.model = CostModel(self.clock, profile)
        # FITS layout knowledge lives in the format registry; the C
        # program "links against the same library" as PostgresRaw.
        self.fits: FitsTableInfo = get_format("fits").parse_table(vfs, path)
        self.schema = self.fits.schema

    def aggregate(self, func: str, column_name: str) -> AggregateAnswer:
        """Run one hand-written "program": scan the whole table, compute
        ``func`` (min/max/avg) over ``column_name``."""
        func = func.lower()
        if func not in ("min", "max", "avg"):
            raise ExecutionError(f"CFITSIO comparator has no {func!r} mode")
        attr = self.schema.index_of(column_name)
        column = self.fits.columns[attr]
        model = self.model
        start = self.clock.checkpoint()
        model.query_overhead()

        handle = self.vfs.open(self.path, model)
        fits = self.fits
        total = 0.0
        count = 0
        extreme: float | None = None
        read_size = 256 * 1024
        offset = fits.data_offset
        end = fits.data_offset + fits.nrows * fits.row_bytes
        pending = b""
        handle.seek(offset)
        while offset < end:
            chunk = handle.read_sequential(min(read_size, end - offset))
            if not chunk:
                break
            offset += len(chunk)
            pending += chunk
            usable = len(pending) - len(pending) % fits.row_bytes
            for row_start in range(0, usable, fits.row_bytes):
                row = pending[row_start:row_start + fits.row_bytes]
                value = column.decode(row)
                model.tuple_overhead(1)  # cfitsio per-row library path
                model.deserialize(1)
                model.aggregate(1)
                count += 1
                if func == "avg":
                    total += value
                elif func == "min":
                    if extreme is None or value < extreme:
                        extreme = value
                else:
                    if extreme is None or value > extreme:
                        extreme = value
            pending = pending[usable:]
        if func == "avg":
            result = total / count if count else None
        else:
            result = extreme
        return AggregateAnswer(result, self.clock.elapsed_since(start))

    def elapsed(self) -> float:
        return self.clock.now()
