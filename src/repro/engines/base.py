"""Database: the shared declarative query path.

Every engine — PostgresRaw, loaded comparators, external-files
straw-men — parses, plans and executes queries identically; they differ
only in the access methods their catalogs bind (and in their calibrated
cost profiles). This is the paper's experimental control: PostgresRaw
"shares the same query execution engine" as PostgreSQL (§5).

Two public surfaces sit on this path. :meth:`Database.query` is the
original one-shot call: parse, plan, run to completion, return an eager
:class:`~repro.sql.executor.QueryResult`. The session/cursor façade in
:mod:`repro.api` (``repro.connect(engine=...)``) reuses the same
pieces — :meth:`parse_sql`, :meth:`plan_select`, :meth:`refresh_for` —
but keeps the parsed AST and physical plan cached in prepared
statements and streams results batch-at-a-time through a shared
:class:`~repro.api.scheduler.Scheduler`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.simcost.clock import VirtualClock
from repro.simcost.model import CostModel
from repro.simcost.profiles import CostProfile
from repro.sql.ast_nodes import (
    CreateTable,
    Exists,
    Explain,
    Select,
    Statement,
    is_ddl,
)
from repro.sql.catalog import Catalog, Schema, TableInfo
from repro.sql.executor import (
    QueryResult,
    counters_delta,
    execute,
    explain_result,
)
from repro.sql.expressions import split_conjuncts
from repro.sql.operators import DEFAULT_BATCH_ROWS
from repro.sql.optimizer import Optimizer
from repro.sql.parser import parse
from repro.sql.planner import PlannedQuery, Planner
from repro.storage.vfs import VirtualFS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scheduler import Scheduler
    from repro.api.session import Session


class Database:
    """Base engine: catalog + SQL front end + virtual clock.

    Parameters
    ----------
    profile:
        The engine's calibrated cost profile.
    vfs:
        The "machine" this engine runs on. Engines sharing a VFS share
        raw files and the simulated OS page cache; by default each
        engine gets its own machine.
    """

    #: how this engine binds raw files, consulted by format adapters:
    #: ``"raw"`` (in-situ with auxiliary structures), ``"external"``
    #: (straw-man full re-parse), or None (does not scan raw files).
    in_situ_policy: str | None = None

    def __init__(self, profile: CostProfile, vfs: VirtualFS | None = None):
        from repro.rollup.metadata import RollupRegistry
        from repro.rollup.router import QueryRouter

        self.vfs = vfs if vfs is not None else VirtualFS()
        self.clock = VirtualClock()
        self.model = CostModel(self.clock, profile)
        self.catalog = Catalog()
        self.use_statistics = True
        #: materialized rollups registered on this engine (CREATE
        #: ROLLUP / idle tuning) and the planner-side router that
        #: rewrites covered aggregate queries to probe them.
        self.rollups = RollupRegistry()
        self.router = QueryRouter(self)
        self._materialization_pool = None
        #: live sessions attached via :meth:`connect` (repro.api)
        self.sessions: list["Session"] = []
        self._scheduler: "Scheduler | None" = None

    @property
    def name(self) -> str:
        return self.model.profile.name

    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Parse and execute one statement — SELECT, EXPLAIN SELECT
        (plans without executing), or DDL (CREATE/DROP/SHOW/DESCRIBE,
        dispatched to the format-adapter registry). One path for every
        statement kind; the session layer reuses the same split."""
        start = self.clock.checkpoint()
        counters_before = dict(self.clock.counters)
        parsed = parse(sql)
        self.model.query_overhead()
        if is_ddl(parsed):
            columns, rows = self.run_ddl(parsed)
            return QueryResult(
                columns=columns, rows=rows,
                elapsed=self.clock.elapsed_since(start),
                counters=counters_delta(self.clock.counters,
                                        counters_before),
                plan={"op": type(parsed).__name__})
        if isinstance(parsed, Explain):
            select = parsed.select
            self._refresh_tables(select)
            return explain_result(self._plan(select), self.model, start,
                                  counters_before)
        self._refresh_tables(parsed)
        planned = self._plan(parsed)
        return execute(planned, self.model, start, counters_before)

    def run_ddl(self, statement) -> tuple[list[str], list[tuple]]:
        """Execute a parsed DDL statement against this engine's catalog
        through the format registry; returns ``(columns, rows)``."""
        from repro.sql.ddl import execute_ddl

        return execute_ddl(self, statement)

    def execute(self, sql: str) -> QueryResult:
        """Deprecated pre-session surface: alias of :meth:`query`.

        New code should use ``repro.connect(engine=...)`` and cursors
        (prepared statements, parameter binding, streaming fetch); this
        shim keeps the old call sites working unchanged.
        """
        warnings.warn(
            "Database.execute(sql) is deprecated; use Database.query(sql) "
            "or the repro.connect() session API",
            DeprecationWarning, stacklevel=2)
        return self.query(sql)

    # ------------------------------------------------------------------
    # Deprecated registration shims — one implementation for every
    # engine, routed through the DDL path (CREATE TABLE ... USING ...),
    # so the format registry is the single place tables are built.
    # ------------------------------------------------------------------
    def _create_via_ddl(self, name: str, schema: Schema | None,
                        fmt: str, options: dict,
                        external: bool = False) -> TableInfo:
        statement = CreateTable(name=name, format=fmt, options=options,
                                external=external, schema=schema)
        self.run_ddl(statement)
        return self.catalog.get(name)

    def register_csv(self, name: str, csv_path: str, schema: Schema,
                     ) -> TableInfo:
        """Deprecated: ``CREATE TABLE <name> (...) USING csv OPTIONS
        (path '<csv_path>')`` — the §3.1 declaration as real SQL."""
        warnings.warn(
            "register_csv() is deprecated; use query(\"CREATE TABLE ... "
            "USING csv OPTIONS (path '...')\")",
            DeprecationWarning, stacklevel=2)
        return self._create_via_ddl(name, schema, "csv",
                                    {"path": csv_path})

    def add_file(self, name: str, csv_path: str, schema: Schema,
                 ) -> TableInfo:
        """Deprecated §4.5 synonym of :meth:`register_csv`: a newly
        added data file is immediately queryable."""
        warnings.warn(
            "add_file() is deprecated; use query(\"CREATE TABLE ... "
            "USING csv OPTIONS (path '...')\")",
            DeprecationWarning, stacklevel=2)
        return self._create_via_ddl(name, schema, "csv",
                                    {"path": csv_path})

    def register_fits(self, name: str, fits_path: str) -> TableInfo:
        """Deprecated: ``CREATE TABLE <name> USING fits OPTIONS (path
        '<fits_path>')`` — the schema comes from the file's header."""
        warnings.warn(
            "register_fits() is deprecated; use query(\"CREATE TABLE ... "
            "USING fits OPTIONS (path '...')\")",
            DeprecationWarning, stacklevel=2)
        return self._create_via_ddl(name, None, "fits",
                                    {"path": fits_path})

    def explain(self, sql: str) -> dict:
        """The physical plan summary for ``sql`` (no execution).
        Accepts either a bare SELECT or an EXPLAIN-prefixed one."""
        parsed = parse(sql)
        select = parsed.select if isinstance(parsed, Explain) else parsed
        return self._plan(select).describe()

    # ------------------------------------------------------------------
    # Session support (repro.api) — the same parse/plan/refresh pieces
    # query() uses, exposed separately so prepared statements can cache
    # their outputs and re-execute with zero parse/plan work.
    # ------------------------------------------------------------------
    def connect(self, *, max_in_flight: int | None = None,
                statement_cache_size: int = 32) -> "Session":
        """Open a :class:`~repro.api.session.Session` on this engine.

        Sessions attached to one engine share its scheduler, so queries
        from all of them are admitted against a single max-in-flight
        gate (``max_in_flight`` is applied when the engine's scheduler
        is first created)."""
        from repro.api.session import Session

        return Session(self, max_in_flight=max_in_flight,
                       statement_cache_size=statement_cache_size)

    def shared_scheduler(self, max_in_flight: int | None = None,
                         ) -> "Scheduler":
        """The engine's single admission scheduler (created on first
        use; later ``max_in_flight`` values are ignored so concurrent
        sessions cannot silently re-gate each other)."""
        if self._scheduler is None:
            from repro.api.scheduler import Scheduler

            self._scheduler = Scheduler(
                self, max_in_flight=max_in_flight
                if max_in_flight is not None else 4)
        return self._scheduler

    def attach_session(self, session: "Session") -> None:
        self.sessions.append(session)

    def detach_session(self, session: "Session") -> None:
        if session in self.sessions:
            self.sessions.remove(session)

    def stream_block_rows(self) -> int:
        """Rows per block a streaming cursor should expect from this
        engine (the peak-buffering unit; PostgresRaw overrides with its
        configured scan block size)."""
        return DEFAULT_BATCH_ROWS

    def parse_sql(self, sql: str) -> Statement:
        """Parse one statement (no planning, no catalog access)."""
        return parse(sql)

    def plan_select(self, select: Select) -> PlannedQuery:
        """Plan a parsed SELECT against the current catalog/statistics."""
        return self._plan(select)

    def refresh_for(self, select: Select) -> None:
        """Per-execution refresh hook: give access methods a chance to
        notice external file updates (§4.5). Prepared statements call
        this on every re-execution even though parse/plan are skipped."""
        self._refresh_tables(select)

    def materialization_pool(self):
        """The buffer pool serving materialized heaps (CTAS tables,
        rollups). Loading engines reuse their own pool; raw engines —
        which deliberately have no ``pool`` attribute, in-situ scans
        never touch one — get a private pool created on first use."""
        pool = getattr(self, "pool", None)
        if pool is not None:
            return pool
        if self._materialization_pool is None:
            from repro.storage.buffer import BufferPool

            self._materialization_pool = BufferPool(self.vfs, self.model)
        return self._materialization_pool

    def _plan(self, select: Select):
        from repro.rollup.router import RoutedQuery

        optimizer = Optimizer(use_stats=self.use_statistics)
        routed, miss = self.router.route(select, optimizer)
        if routed is not None:
            return routed
        planned = Planner(self.catalog, self.model, optimizer).plan(select)
        if miss is not None:
            self.model.rollup_miss()
            return RoutedQuery(planned.root, planned.names,
                               f"none ({miss})")
        return planned

    def _refresh_tables(self, select: Select) -> None:
        for name in self._tables_of(select):
            if self.catalog.has(name):
                access = self.catalog.get(name).access
                refresh = getattr(access, "refresh", None)
                if refresh is not None:
                    refresh()

    def _tables_of(self, select: Select) -> list[str]:
        names = [ref.name for ref in select.tables]
        for conjunct in split_conjuncts(select.where):
            node = conjunct
            if hasattr(node, "operand"):
                node = getattr(node, "operand")
            if isinstance(conjunct, Exists):
                names.extend(self._tables_of(conjunct.subquery))
            elif isinstance(node, Exists):
                names.extend(self._tables_of(node.subquery))
        return names

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Total virtual seconds this engine has spent (loads+queries)."""
        return self.clock.now()

    def counters(self) -> dict[str, float]:
        return self.clock.snapshot()

    @property
    def rows_materialized(self) -> int:
        """Running total of per-row tuples materialized inside operator
        trees (batch->row transpositions; see
        :attr:`repro.simcost.model.CostModel.rows_materialized`). Stays
        zero while batch-mode plans execute fully columnar."""
        return self.model.rows_materialized
