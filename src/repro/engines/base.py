"""Database: the shared declarative query path.

Every engine — PostgresRaw, loaded comparators, external-files
straw-men — parses, plans and executes queries identically; they differ
only in the access methods their catalogs bind (and in their calibrated
cost profiles). This is the paper's experimental control: PostgresRaw
"shares the same query execution engine" as PostgreSQL (§5).
"""

from __future__ import annotations

from repro.simcost.clock import VirtualClock
from repro.simcost.model import CostModel
from repro.simcost.profiles import CostProfile
from repro.sql.ast_nodes import Exists, Select
from repro.sql.catalog import Catalog
from repro.sql.executor import QueryResult, execute
from repro.sql.expressions import split_conjuncts
from repro.sql.optimizer import Optimizer
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.storage.vfs import VirtualFS


class Database:
    """Base engine: catalog + SQL front end + virtual clock.

    Parameters
    ----------
    profile:
        The engine's calibrated cost profile.
    vfs:
        The "machine" this engine runs on. Engines sharing a VFS share
        raw files and the simulated OS page cache; by default each
        engine gets its own machine.
    """

    def __init__(self, profile: CostProfile, vfs: VirtualFS | None = None):
        self.vfs = vfs if vfs is not None else VirtualFS()
        self.clock = VirtualClock()
        self.model = CostModel(self.clock, profile)
        self.catalog = Catalog()
        self.use_statistics = True

    @property
    def name(self) -> str:
        return self.model.profile.name

    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Parse, plan, and execute one SELECT statement."""
        start = self.clock.checkpoint()
        counters_before = dict(self.clock.counters)
        select = parse(sql)
        self.model.query_overhead()
        self._refresh_tables(select)
        planned = self._plan(select)
        return execute(planned, self.model, start, counters_before)

    def explain(self, sql: str) -> dict:
        """The physical plan summary for ``sql`` (no execution)."""
        return self._plan(parse(sql)).describe()

    def _plan(self, select: Select):
        optimizer = Optimizer(use_stats=self.use_statistics)
        return Planner(self.catalog, self.model, optimizer).plan(select)

    def _refresh_tables(self, select: Select) -> None:
        """Give access methods a chance to notice external file updates
        (§4.5) before planning."""
        for name in self._tables_of(select):
            if self.catalog.has(name):
                access = self.catalog.get(name).access
                refresh = getattr(access, "refresh", None)
                if refresh is not None:
                    refresh()

    def _tables_of(self, select: Select) -> list[str]:
        names = [ref.name for ref in select.tables]
        for conjunct in split_conjuncts(select.where):
            node = conjunct
            if hasattr(node, "operand"):
                node = getattr(node, "operand")
            if isinstance(conjunct, Exists):
                names.extend(self._tables_of(conjunct.subquery))
            elif isinstance(node, Exists):
                names.extend(self._tables_of(node.subquery))
        return names

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Total virtual seconds this engine has spent (loads+queries)."""
        return self.clock.now()

    def counters(self) -> dict[str, float]:
        return self.clock.snapshot()
