"""Access methods for the comparator engines.

* :class:`HeapAccess` — loaded binary pages behind a buffer pool. The
  paper's conventional DBMS path: no conversion at query time, but
  every page of the table is read and tuples are deserialized up to the
  largest needed attribute (heap tuples are sequential, like CSV rows).
* :class:`ExternalAccess` — the external-files straw-man (§3.1): every
  query re-reads and fully re-tokenizes the raw file and materializes
  complete tuples, with no auxiliary structures.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.formats.csvfmt import CsvDialect, LineReader, split_line
from repro.simcost.model import CostModel
from repro.sql.catalog import Schema
from repro.sql.scanapi import ScanPredicate
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.record import RecordCodec
from repro.storage.toast import ToastReader, is_pointer
from repro.storage.vfs import VirtualFS


class HeapAccess:
    """Scan of a loaded table's heap file."""

    def __init__(self, heap: HeapFile, pool: BufferPool, codec: RecordCodec,
                 schema: Schema, model: CostModel,
                 row_count: int | None = None,
                 toast: ToastReader | None = None):
        self.heap = heap
        self.pool = pool
        self.codec = codec
        self.schema = schema
        self.model = model
        self.row_count = row_count
        self.toast = toast

    def estimated_rows(self) -> int | None:
        return self.row_count

    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        model = self.model
        needed = list(needed)
        where_attrs = list(predicate.attrs) if predicate else []
        # Row stores deform tuples left-to-right: pay for the prefix up
        # to the largest attribute any clause needs.
        max_attr = max(needed + where_attrs) if (needed or where_attrs) else 0
        deform_width = max_attr + 1
        n_terms = predicate.n_terms if predicate else 0
        for record in self.heap.scan_records(self.pool):
            model.tuple_overhead(1)
            values = self.codec.decode(record)
            # The whole tuple's bytes traverse memory out of the buffer
            # page even when only a prefix is deformed — the effect that
            # lets in-situ caches win at low projectivity (§5.1.4).
            model.disk_read(len(record), warm=True)
            model.deserialize(deform_width)
            if predicate is not None:
                model.predicate(n_terms)
                row = {attr: self._detoast(values[attr])
                       for attr in where_attrs}
                if predicate.fn(row) is not True:
                    continue
            model.tuple_form(len(needed))
            yield tuple(self._detoast(values[attr]) for attr in needed)

    def _detoast(self, value):
        """Resolve out-of-line values lazily — only attributes a query
        actually touches pay the toast fetch (like PostgreSQL)."""
        if self.toast is not None and is_pointer(value):
            return self.toast.fetch(value)
        return value


class ExternalAccess:
    """Straw-man in-situ scan: full re-parse, full tuples, every query."""

    def __init__(self, vfs: VirtualFS, path: str, schema: Schema,
                 model: CostModel, dialect: CsvDialect | None = None):
        self.vfs = vfs
        self.path = path
        self.schema = schema
        self.model = model
        self.dialect = dialect if dialect is not None else CsvDialect()
        self._dtypes = schema.types
        self._families = [t.family for t in schema.types]

    def estimated_rows(self) -> int | None:
        return None  # external files expose no statistics (§2)

    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        model = self.model
        needed = list(needed)
        arity = self.schema.arity
        n_terms = predicate.n_terms if predicate else 0
        handle = self.vfs.open(self.path, model)
        reader = LineReader(handle)
        scanned_before = 0
        for _offset, line in reader:
            model.newline_scan(reader.chars_scanned - scanned_before)
            scanned_before = reader.chars_scanned
            spans, scanned = split_line(line, self.dialect)
            model.tokenize(scanned)
            model.tuple_overhead(1)
            if len(spans) != arity:
                continue  # ragged line: skipped, like the CSV engine does
            values = []
            for attr, (start, end) in enumerate(spans):
                text = line[start:end].decode("utf-8", "replace")
                model.convert(self._families[attr], 1)
                if text == "" and self._families[attr] != "str":
                    values.append(None)
                else:
                    values.append(self._dtypes[attr].parse(text))
            model.tuple_form(arity)
            if predicate is not None:
                model.predicate(n_terms)
                row = {attr: values[attr] for attr in predicate.attrs}
                if predicate.fn(row) is not True:
                    continue
            yield tuple(values[attr] for attr in needed)
