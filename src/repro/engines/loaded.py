"""LoadedDBMS: the conventional load-then-query comparators.

One class serves PostgreSQL, "DBMS X" and MySQL — they differ only in
their calibrated :class:`~repro.simcost.profiles.CostProfile`. Loading
pays the full parse/convert/serialize/write cost once (measurable on the
engine's clock); queries then read binary heap pages through a buffer
pool and never convert data again.
"""

from __future__ import annotations

from repro.engines.access import HeapAccess
from repro.engines.base import Database
from repro.simcost.profiles import POSTGRESQL_PROFILE, CostProfile
from repro.sql.catalog import Schema, TableInfo, TableKind
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.loader import BulkLoader
from repro.storage.record import RecordCodec
from repro.storage.toast import ToastReader
from repro.storage.vfs import VirtualFS


class LoadedDBMS(Database):
    """A conventional DBMS: data must be loaded before it is queryable."""

    def __init__(self, profile: CostProfile = POSTGRESQL_PROFILE,
                 vfs: VirtualFS | None = None,
                 buffer_pool_pages: int = 4096):
        super().__init__(profile, vfs)
        self.pool = BufferPool(self.vfs, self.model, buffer_pool_pages)

    def load_csv(self, name: str, csv_path: str, schema: Schema,
                 ) -> float:
        """Bulk load ``csv_path`` into table ``name``; returns the
        virtual seconds the load took (the cost Figure 7 stacks on top
        of the query sequence)."""
        start = self.clock.checkpoint()
        heap_path = f"__heap__/{self.name}/{name.lower()}.heap"
        loader = BulkLoader(self.vfs, self.model)
        rows, stats = loader.load(csv_path, heap_path, schema)
        heap = HeapFile(self.vfs, heap_path)
        info = TableInfo(name=name, schema=schema, kind=TableKind.HEAP,
                         path=heap_path, stats=stats, row_count_hint=rows)
        toast = (ToastReader(self.vfs, heap_path + ".toast", self.model)
                 if self.vfs.exists(heap_path + ".toast") else None)
        info.access = HeapAccess(heap, self.pool, RecordCodec(schema),
                                 schema, self.model, row_count=rows,
                                 toast=toast)
        self.catalog.register(info)
        return self.clock.elapsed_since(start)

    def restart(self) -> None:
        """Model a cold restart: drop the buffer pool (the OS page cache
        on the VFS is per-machine and survives, as in §5.1.4 where
        "buffer caches are cold" but files may be warm)."""
        self.pool.clear()
