"""LoadedDBMS: the conventional load-then-query comparators.

One class serves PostgreSQL, "DBMS X" and MySQL — they differ only in
their calibrated :class:`~repro.simcost.profiles.CostProfile`. Loading
pays the full parse/convert/serialize/write cost once (measurable on the
engine's clock); queries then read binary heap pages through a buffer
pool and never convert data again.

The load itself is the ``heap`` format adapter's ``build_access``
(``CREATE TABLE t (...) USING heap OPTIONS (path '<csv>')`` works as
SQL too); :meth:`LoadedDBMS.load_csv` is the timed convenience over
that DDL path.
"""

from __future__ import annotations

from repro.engines.base import Database
from repro.simcost.profiles import POSTGRESQL_PROFILE, CostProfile
from repro.sql.ast_nodes import CreateTable
from repro.sql.catalog import Schema
from repro.storage.buffer import BufferPool
from repro.storage.vfs import VirtualFS


class LoadedDBMS(Database):
    """A conventional DBMS: data must be loaded before it is queryable."""

    def __init__(self, profile: CostProfile = POSTGRESQL_PROFILE,
                 vfs: VirtualFS | None = None,
                 buffer_pool_pages: int = 4096):
        super().__init__(profile, vfs)
        self.pool = BufferPool(self.vfs, self.model, buffer_pool_pages)

    def load_csv(self, name: str, csv_path: str, schema: Schema,
                 ) -> float:
        """Bulk load ``csv_path`` into table ``name``; returns the
        virtual seconds the load took (the cost Figure 7 stacks on top
        of the query sequence)."""
        start = self.clock.checkpoint()
        self.run_ddl(CreateTable(name=name, format="heap",
                                 options={"path": csv_path},
                                 schema=schema))
        return self.clock.elapsed_since(start)

    def restart(self) -> None:
        """Model a cold restart: drop the buffer pool (the OS page cache
        on the VFS is per-machine and survives, as in §5.1.4 where
        "buffer caches are cold" but files may be warm)."""
        self.pool.clear()
