"""Worker pool for parallel chunk scans (OLA-RAW-style fan-out).

The batch streaming region partitions freshly discovered lines into
row-block groups; with ``config.scan_workers > 1`` those groups are
computed on this pool while the scan driver keeps reading ahead and a
single-threaded merge applies each group's staged positional-map /
cache / statistics deltas in canonical group order (see
:mod:`repro.core.scan_batch`).

Threads are the right first backend: the group kernels are
NumPy-heavy — delimiter ``searchsorted`` arithmetic, fixed-width
byte-matrix ``astype`` conversion, vectorized predicate masks — which
release the GIL for their C loops. The abstraction is deliberately
process-ready, though: a task is a *pure function of its arguments*
(the worker receives a private byte slice, returns staged deltas, and
never touches shared engine state), so a process-pool backend only
needs to marshal the arguments — a recorded follow-on in ROADMAP.md.

One pool is owned per engine and shared by every scan, so concurrently
admitted queries genuinely overlap on the same workers: while the
scheduler merges one query's groups on the main thread, the other
queries' dispatched groups keep computing here.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

from repro.errors import BudgetError


class ScanWorkerPool:
    """A lazily started thread pool for scan group compute.

    ``submit`` returns a :class:`concurrent.futures.Future`; tasks must
    be pure functions of their arguments (the process-pool contract).
    ``tasks_submitted`` is a monotone counter the scheduler snapshots
    to attribute worker fan-out to individual queries.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise BudgetError("worker pool needs at least one worker")
        self.workers = workers
        self.tasks_submitted = 0
        self._executor: ThreadPoolExecutor | None = None

    def submit(self, fn, *args) -> Future:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-scan")
        self.tasks_submitted += 1
        return self._executor.submit(fn, *args)

    @property
    def started(self) -> bool:
        return self._executor is not None

    def close(self) -> None:
        """Shut the pool down (idempotent); running tasks finish,
        queued ones are dropped."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
