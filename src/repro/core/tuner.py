"""Idle-time auto-tuning (§7 "Auto Tuning Tools").

"Auto tuning tools for NoDB systems, given a budget of idle time and
workload knowledge, have the opportunity to exploit idle time as best
as possible, loading and indexing as much of the relevant data as
possible. The rest of the data remains unloaded and unindexed until
relevant queries arrive."

:class:`IdleTuner` implements that: workload knowledge comes from the
per-attribute request counts the scans record (plus explicit hints),
and :meth:`exploit_idle_time` spends a virtual-seconds budget warming
the most valuable attributes — populating the positional map, the
binary cache and statistics — stopping when the budget runs out.

:meth:`regroup_maps` is the second idle-time chore: canonical
positional-map chunk regrouping. Chunk *grouping* records which
query's flush first combined the attributes, so interleaved or
parallel workloads leave flush-order-dependent layouts even when the
map *content* is identical; regrouping rewrites every block to one
sorted-attribute chunk, making layouts converge regardless of
workload order (and letting differential harnesses compare maps
byte-for-byte after any interleaving).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class TuningReport:
    """What one idle period accomplished."""

    seconds_used: float = 0.0
    warmed: list[tuple[str, str]] = field(default_factory=list)  # (table, col)
    exhausted_budget: bool = False

    def __str__(self) -> str:  # pragma: no cover - display helper
        warmed = ", ".join(f"{t}.{c}" for t, c in self.warmed) or "nothing"
        return (f"TuningReport({self.seconds_used:.3f}s used, "
                f"warmed: {warmed})")


@dataclass
class RollupProposal:
    """A hot GROUP BY pattern the router observed that no fresh rollup
    covers: build a rollup over ``dims`` storing ``aggs``."""

    table: str
    dims: tuple[str, ...]
    aggs: tuple[tuple[str, str], ...]  # AggSigs: (func, column|'*')
    requests: int


@dataclass
class RollupTuningReport:
    """What one rollup-focused idle period accomplished."""

    seconds_used: float = 0.0
    rebuilt: list[str] = field(default_factory=list)
    built: list[str] = field(default_factory=list)
    exhausted_budget: bool = False

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"RollupTuningReport({self.seconds_used:.3f}s used, "
                f"rebuilt: {', '.join(self.rebuilt) or 'nothing'}, "
                f"built: {', '.join(self.built) or 'nothing'})")


class IdleTuner:
    """Spends idle time warming a PostgresRaw engine's structures."""

    def __init__(self, engine):
        from repro.core.engine import PostgresRaw
        if not isinstance(engine, PostgresRaw):
            raise ReproError("IdleTuner tunes PostgresRaw engines")
        self.engine = engine
        self._hints: Counter = Counter()

    # ------------------------------------------------------------------
    def hint(self, table: str, columns: list[str], weight: int = 1) -> None:
        """Declare expected workload interest ("workload knowledge")."""
        info = self.engine.catalog.get(table)
        for column in columns:
            info.schema.index_of(column)  # validate
            self._hints[(info.name.lower(), column.lower())] += weight

    def _observed_counts(self) -> Counter:
        """Workload discovered on the fly: per-attribute request counts
        recorded by the raw scans."""
        counts: Counter = Counter()
        for info in self.engine.catalog.tables():
            access = info.access
            recorded = getattr(access, "attr_request_counts", None)
            if not recorded:
                continue
            for attr, count in recorded.items():
                name = info.schema.columns[attr].name.lower()
                counts[(info.name.lower(), name)] += count
        return counts

    def candidates(self) -> list[tuple[str, str]]:
        """(table, column) pairs ranked by expected value."""
        merged = self._observed_counts()
        merged.update(self._hints)
        return [key for key, _count in merged.most_common()]

    # ------------------------------------------------------------------
    def exploit_idle_time(self, budget_seconds: float) -> TuningReport:
        """Warm attributes in value order until the budget is spent.

        The budget is enforced on the engine's virtual clock: tuning
        stops after the attribute that crosses it (work, like a real
        background job, is not interrupted mid-attribute).
        """
        if budget_seconds <= 0:
            raise ReproError("idle budget must be positive")
        clock = self.engine.clock
        start = clock.checkpoint()
        report = TuningReport()
        for table, column in self.candidates():
            if clock.elapsed_since(start) >= budget_seconds:
                report.exhausted_budget = True
                break
            info = self.engine.catalog.get(table)
            access = info.access
            attr = info.schema.index_of(column)
            if self._fully_warm(access, attr):
                continue
            for _row in access.scan([attr], None):
                pass  # consuming the scan populates map/cache/stats
            report.warmed.append((info.name, column))
        report.seconds_used = clock.elapsed_since(start)
        report.exhausted_budget = (report.exhausted_budget
                                   or report.seconds_used >= budget_seconds)
        return report

    # ------------------------------------------------------------------
    # Rollup proposals (the router's hot-pattern log -> CREATE ROLLUP)
    # ------------------------------------------------------------------
    def rollup_candidates(self) -> list[RollupProposal]:
        """Hot aggregate patterns no fresh rollup covers, hottest
        first. Patterns whose table vanished (or was renamed away and
        back differently) are skipped, not errors."""
        proposals = []
        catalog = self.engine.catalog
        registry = self.engine.rollups
        for key, count in self.engine.router.patterns.most_common():
            table, dims, sigs = key
            if not catalog.has(table):
                continue
            info = catalog.get(table)
            covered = any(
                rollup.is_fresh(catalog) and rollup.covers(dims, sigs)
                for rollup in registry.for_source(info))
            if not covered:
                proposals.append(RollupProposal(
                    table=info.name, dims=dims, aggs=sigs,
                    requests=count))
        return proposals

    def exploit_idle_time_for_rollups(
            self, budget_seconds: float) -> RollupTuningReport:
        """Spend idle time on rollup maintenance: first rebuild stale
        rollups whose source still exists, then build proposed ones
        from the hot-pattern log. Budget semantics match
        :meth:`exploit_idle_time` — enforced on the virtual clock, work
        is not interrupted mid-build."""
        from repro.rollup.builder import build_rollup, rebuild_rollup
        from repro.rollup.metadata import signature_expr

        if budget_seconds <= 0:
            raise ReproError("idle budget must be positive")
        clock = self.engine.clock
        catalog = self.engine.catalog
        start = clock.checkpoint()
        report = RollupTuningReport()

        def out_of_budget() -> bool:
            if clock.elapsed_since(start) >= budget_seconds:
                report.exhausted_budget = True
                return True
            return False

        for rollup in self.engine.rollups.rollups():
            if out_of_budget():
                break
            if rollup.is_fresh(catalog):
                continue
            source = rollup.source
            if not (catalog.has(source.name)
                    and catalog.get(source.name) is source):
                continue  # source gone for good; DROP ROLLUP is manual
            rebuild_rollup(self.engine, rollup)
            report.rebuilt.append(rollup.name)

        for proposal in self.rollup_candidates():
            if out_of_budget():
                break
            source = catalog.get(proposal.table)
            name = self._rollup_name(proposal.table)
            aggs = [signature_expr(sig) for sig in proposal.aggs]
            built = build_rollup(self.engine, name, source,
                                 proposal.dims, aggs)
            self.engine.rollups.register(built)
            catalog.bump_epoch()
            report.built.append(name)

        report.seconds_used = clock.elapsed_since(start)
        report.exhausted_budget = (report.exhausted_budget
                                   or report.seconds_used >= budget_seconds)
        return report

    def _rollup_name(self, table: str) -> str:
        base = f"auto_{table.lower()}"
        registry = self.engine.rollups
        if not registry.has(base) and not self.engine.catalog.has(base):
            return base
        suffix = 2
        while registry.has(f"{base}_{suffix}") or \
                self.engine.catalog.has(f"{base}_{suffix}"):
            suffix += 1
        return f"{base}_{suffix}"

    def regroup_maps(self, table: str | None = None) -> int:
        """Canonicalize positional-map chunk groups (all tables, or
        just ``table``): each indexed block ends up as one chunk keyed
        by its sorted attribute set, so maps built by differently
        interleaved workloads become byte-identical. Content is
        untouched; the rewrite is charged to the engine's clock as map
        maintenance. Returns the number of blocks rewritten."""
        if table is not None:
            infos = [self.engine.catalog.get(table)]
        else:
            infos = self.engine.catalog.tables()
        rewritten = 0
        for info in infos:
            positional_map = getattr(info.access, "pm", None)
            if positional_map is not None:
                rewritten += positional_map.canonicalize_chunks()
        return rewritten

    def _fully_warm(self, access, attr: int) -> bool:
        """Is this attribute already answerable from the cache alone?"""
        cache = getattr(access, "cache", None)
        row_count = getattr(access, "row_count", None)
        if cache is None or row_count is None:
            return False
        block_size = self.engine.config.row_block_size
        blocks = -(-row_count // block_size) if row_count else 0
        for block in range(blocks):
            cache_block = cache.get(attr, block)
            if cache_block is None or not cache_block.complete:
                return False
        return True
