"""Idle-time auto-tuning (§7 "Auto Tuning Tools").

"Auto tuning tools for NoDB systems, given a budget of idle time and
workload knowledge, have the opportunity to exploit idle time as best
as possible, loading and indexing as much of the relevant data as
possible. The rest of the data remains unloaded and unindexed until
relevant queries arrive."

:class:`IdleTuner` implements that: workload knowledge comes from the
per-attribute request counts the scans record (plus explicit hints),
and :meth:`exploit_idle_time` spends a virtual-seconds budget warming
the most valuable attributes — populating the positional map, the
binary cache and statistics — stopping when the budget runs out.

:meth:`regroup_maps` is the second idle-time chore: canonical
positional-map chunk regrouping. Chunk *grouping* records which
query's flush first combined the attributes, so interleaved or
parallel workloads leave flush-order-dependent layouts even when the
map *content* is identical; regrouping rewrites every block to one
sorted-attribute chunk, making layouts converge regardless of
workload order (and letting differential harnesses compare maps
byte-for-byte after any interleaving).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class TuningReport:
    """What one idle period accomplished."""

    seconds_used: float = 0.0
    warmed: list[tuple[str, str]] = field(default_factory=list)  # (table, col)
    exhausted_budget: bool = False

    def __str__(self) -> str:  # pragma: no cover - display helper
        warmed = ", ".join(f"{t}.{c}" for t, c in self.warmed) or "nothing"
        return (f"TuningReport({self.seconds_used:.3f}s used, "
                f"warmed: {warmed})")


class IdleTuner:
    """Spends idle time warming a PostgresRaw engine's structures."""

    def __init__(self, engine):
        from repro.core.engine import PostgresRaw
        if not isinstance(engine, PostgresRaw):
            raise ReproError("IdleTuner tunes PostgresRaw engines")
        self.engine = engine
        self._hints: Counter = Counter()

    # ------------------------------------------------------------------
    def hint(self, table: str, columns: list[str], weight: int = 1) -> None:
        """Declare expected workload interest ("workload knowledge")."""
        info = self.engine.catalog.get(table)
        for column in columns:
            info.schema.index_of(column)  # validate
            self._hints[(info.name.lower(), column.lower())] += weight

    def _observed_counts(self) -> Counter:
        """Workload discovered on the fly: per-attribute request counts
        recorded by the raw scans."""
        counts: Counter = Counter()
        for info in self.engine.catalog.tables():
            access = info.access
            recorded = getattr(access, "attr_request_counts", None)
            if not recorded:
                continue
            for attr, count in recorded.items():
                name = info.schema.columns[attr].name.lower()
                counts[(info.name.lower(), name)] += count
        return counts

    def candidates(self) -> list[tuple[str, str]]:
        """(table, column) pairs ranked by expected value."""
        merged = self._observed_counts()
        merged.update(self._hints)
        return [key for key, _count in merged.most_common()]

    # ------------------------------------------------------------------
    def exploit_idle_time(self, budget_seconds: float) -> TuningReport:
        """Warm attributes in value order until the budget is spent.

        The budget is enforced on the engine's virtual clock: tuning
        stops after the attribute that crosses it (work, like a real
        background job, is not interrupted mid-attribute).
        """
        if budget_seconds <= 0:
            raise ReproError("idle budget must be positive")
        clock = self.engine.clock
        start = clock.checkpoint()
        report = TuningReport()
        for table, column in self.candidates():
            if clock.elapsed_since(start) >= budget_seconds:
                report.exhausted_budget = True
                break
            info = self.engine.catalog.get(table)
            access = info.access
            attr = info.schema.index_of(column)
            if self._fully_warm(access, attr):
                continue
            for _row in access.scan([attr], None):
                pass  # consuming the scan populates map/cache/stats
            report.warmed.append((info.name, column))
        report.seconds_used = clock.elapsed_since(start)
        report.exhausted_budget = (report.exhausted_budget
                                   or report.seconds_used >= budget_seconds)
        return report

    def regroup_maps(self, table: str | None = None) -> int:
        """Canonicalize positional-map chunk groups (all tables, or
        just ``table``): each indexed block ends up as one chunk keyed
        by its sorted attribute set, so maps built by differently
        interleaved workloads become byte-identical. Content is
        untouched; the rewrite is charged to the engine's clock as map
        maintenance. Returns the number of blocks rewritten."""
        if table is not None:
            infos = [self.engine.catalog.get(table)]
        else:
            infos = self.engine.catalog.tables()
        rewritten = 0
        for info in infos:
            positional_map = getattr(info.access, "pm", None)
            if positional_map is not None:
                rewritten += positional_map.canonicalize_chunks()
        return rewritten

    def _fully_warm(self, access, attr: int) -> bool:
        """Is this attribute already answerable from the cache alone?"""
        cache = getattr(access, "cache", None)
        row_count = getattr(access, "row_count", None)
        if cache is None or row_count is None:
            return False
        block_size = self.engine.config.row_block_size
        blocks = -(-row_count // block_size) if row_count else 0
        for block in range(blocks):
            cache_block = cache.get(attr, block)
            if cache_block is None or not cache_block.complete:
                return False
        return True
