"""RawCsvAccess: PostgresRaw's in-situ scan operator (§4.1–§4.4).

One scan integrates every mechanism of the paper:

* **selective tokenizing** — delimiter scanning stops at the largest
  attribute the query needs; newline discovery (cheap, memchr-like) is
  charged separately and skipped entirely once the line index exists;
* **selective parsing** — WHERE attributes are converted first; SELECT
  attributes are converted only for qualifying tuples;
* **selective tuple formation** — emitted tuples contain only the
  requested attributes, in plan order;
* **positional map** — per row block, known positions are prefetched
  into a temporary map; missing attributes are reached by incremental
  forward/backward tokenization from the nearest indexed attribute, and
  every position discovered on the way is recorded;
* **binary cache** — converted values are served from / inserted into
  the cache, per (attribute, block), with partial-block masks;
* **statistics** — values converted during the scan feed per-attribute
  reservoir samples (§4.4).

Two execution paths implement those mechanisms:

* The **batch path** (``config.batch_mode``, the default) delegates to
  :class:`~repro.core.scan_batch.BatchCsvScan`, which processes a whole
  row block per step with NumPy: vectorized newline/delimiter discovery
  over raw byte buffers, column-at-a-time selective parsing, predicate
  evaluation as vectorized masks, and whole-chunk positional-map /
  cache traffic. ``scan()`` stays a tuple iterator via a thin shim over
  :meth:`RawCsvAccess.scan_batches`; batch-aware operators pull
  :class:`~repro.sql.batch.ColumnBatch` objects directly.
* The **scalar path** (this module) processes one tuple at a time via
  :class:`_RowContext`. It is retained both as the fallback for
  features the batch pipeline does not vectorize (eager prefix
  indexing) and as the *differential oracle*: the batch path must
  produce identical results and leave identical positional-map and
  cache contents, a contract enforced by the property/differential
  harness in ``tests/test_batch_differential.py``.

Either way the scan has two regions: the *indexed region* (rows whose
line spans the map already knows — processed block-wise, reading only
byte runs that are actually needed) and the *streaming region*
(never-seen tail — read sequentially, discovering line starts).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.positional_map import PositionalMap
from repro.core.scan_batch import BatchCsvScan
from repro.core.statistics import StatsCollector
from repro.errors import (
    CSVFormatError,
    ExecutionError,
    FormatError,
    StorageError,
    annotate,
)
from repro.formats.csvfmt import (
    field_spans_prefix,
    span_backward,
    span_forward,
)
from repro.simcost.model import CostModel
from repro.sql.catalog import Schema, TableInfo
from repro.sql.scanapi import ScanPredicate
from repro.sql.stats import TableStats
from repro.storage.vfs import VirtualFS

_NO_POS = -1  # sentinel inside PM chunks: position unknown for this row


class _RowContext:
    """Lazy per-row attribute extraction with span/value memoization."""

    __slots__ = ("scan", "line", "line_start", "known_starts", "line_len",
                 "values", "spans", "from_cache")

    def __init__(self, scan: "RawCsvAccess", line: bytes, line_start: int,
                 known_starts: dict[int, int]):
        self.scan = scan
        self.line = line
        self.line_start = line_start
        self.known_starts = known_starts  # attr -> relative start offset
        self.line_len = len(line)
        self.values: dict[int, object] = {}
        self.spans: dict[int, tuple[int, int]] = {}
        self.from_cache: set[int] = set()

    def value(self, attr: int):
        if attr in self.values:
            return self.values[attr]
        span = self.span(attr)
        text = self.line[span[0]:span[1]].decode("utf-8", "replace")
        value = self.scan._convert(attr, text)
        self.values[attr] = value
        return value

    def span(self, attr: int) -> tuple[int, int]:
        span = self.spans.get(attr)
        if span is not None:
            return span
        self._locate(attr)
        return self.spans[attr]

    def _locate(self, attr: int) -> None:
        """Find attr's span via the nearest known start (both directions),
        recording every span discovered on the way (§4.2 incremental
        parsing)."""
        scan = self.scan
        known = self.known_starts
        nattrs = scan.schema.arity
        # End boundary: next attr's known start, or end of line for last.
        if attr in known:
            start = known[attr]
            if attr + 1 in known:
                self._record(attr, (start, known[attr + 1] - 1))
                return
            if attr == nattrs - 1:
                self._record(attr, (start, self.line_len))
                return
            spans, scanned = span_forward(self.line, start, 1,
                                          scan.dialect)
            scan.model.tokenize(scanned)
            self._record(attr, spans[0])
            self._record(attr + 1, spans[1])
            return
        lo = max((a for a in known if a < attr), default=None)
        hi = min((a for a in known if a > attr), default=None)
        go_backward = (hi is not None
                       and (lo is None or (hi - attr) < (attr - lo)))
        if go_backward:
            spans, scanned = span_backward(self.line, known[hi], hi - attr,
                                           scan.dialect)
            scan.model.tokenize(scanned)
            for i, span in enumerate(spans):  # attrs attr..hi-1
                self._record(attr + i, span)
            return
        base = lo if lo is not None else 0
        base_start = known.get(base, 0)
        spans, scanned = span_forward(self.line, base_start, attr - base,
                                      scan.dialect)
        scan.model.tokenize(scanned)
        for i, span in enumerate(spans):  # attrs base..attr
            self._record(base + i, span)
        end = spans[-1][1]
        if end < self.line_len and attr + 1 < nattrs:
            # The delimiter we stopped at is attr+1's start: free info.
            self._record_start(attr + 1, end + 1)

    def _record(self, attr: int, span: tuple[int, int]) -> None:
        self.spans[attr] = span
        self.known_starts[attr] = span[0]

    def _record_start(self, attr: int, start: int) -> None:
        self.known_starts.setdefault(attr, start)


class RawCsvAccess:
    """Access method for one in-situ CSV table."""

    def __init__(self, vfs: VirtualFS, path: str, schema: Schema,
                 model: CostModel, config: PostgresRawConfig,
                 table_info: TableInfo,
                 positional_map: PositionalMap | None,
                 cache: BinaryCache | None,
                 pool=None):
        self.vfs = vfs
        self.path = path
        self.schema = schema
        self.model = model
        self.config = config
        self.table_info = table_info
        self.pm = positional_map          # None only in Baseline mode
        self.cache = cache
        #: engine-shared ScanWorkerPool for parallel chunk scans (None
        #: when config.scan_workers == 1)
        self.pool = pool
        self.dialect = config.dialect
        self.row_count: int | None = None
        self._seen_size = 0
        self._seen_rewrites: int | None = None
        self._dtypes = schema.types
        self._families = [t.family for t in schema.types]
        self.queries_executed = 0
        #: workload knowledge for the §7 idle tuner: attr -> request count
        self.attr_request_counts: dict[int, int] = {}
        #: per-table error policy (OPTIONS (on_error 'fail'|'skip'|'null'))
        self.on_error = (getattr(table_info, "options", None)
                         or {}).get("on_error", "fail")
        #: quarantine sidecar for rejected rows, plus the row numbers
        #: already written there (warm re-scans re-reject the same rows
        #: deterministically; the sidecar records each row once)
        self._rejects_path = f"__rejects__/{table_info.name.lower()}"
        self._rejected_rows: set[int] = set()

    # ------------------------------------------------------------------
    # External updates (§4.5)
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Detect external file changes before a scan.

        Appends extend the structures in place; rewrites drop them (the
        map "can be dropped and recreated when needed again")."""
        rewrites = self.vfs.rewrite_count(self.path)
        size = self.vfs.size(self.path)
        if self._seen_rewrites is None:
            self._seen_rewrites = rewrites
            self._seen_size = size
            return
        if rewrites != self._seen_rewrites:
            if self.pm is not None:
                self.pm.drop()
            if self.cache is not None:
                self.cache.clear()
            self.row_count = None
            self.table_info.data_version += 1
            # Row numbers change meaning under a rewrite: restart the
            # quarantine sidecar along with the other structures.
            self._rejected_rows.clear()
            if self.vfs.exists(self._rejects_path):
                self.vfs.delete(self._rejects_path)
        elif size > self._seen_size:
            if self.pm is not None:
                self.pm.invalidate_file_length()
            self.row_count = None
            self.table_info.data_version += 1
        self._seen_rewrites = rewrites
        self._seen_size = size

    def estimated_rows(self) -> int | None:
        return self.row_count

    # ------------------------------------------------------------------
    @property
    def batch_enabled(self) -> bool:
        """True when scans run the vectorized batch pipeline. Eager
        prefix indexing records every position tokenized on the way to
        a target — a per-row bookkeeping pattern the batch pipeline
        does not vectorize — so it pins the scalar path."""
        return self.config.batch_mode and not self.config.eager_prefix_indexing

    def _scan_setup(self, needed: Sequence[int],
                    predicate: ScanPredicate | None):
        """Shared prologue of both scan paths: workload accounting, the
        §4.4 stats collector, and the costed file handle."""
        self.queries_executed += 1
        out_attrs = list(needed)
        where_attrs = list(predicate.attrs) if predicate else []
        union_attrs = sorted(set(out_attrs) | set(where_attrs))
        for attr in union_attrs:
            self.attr_request_counts[attr] = \
                self.attr_request_counts.get(attr, 0) + 1
        collector = None
        if self.config.enable_statistics:
            # §4.4: augment incrementally — sample only attributes that
            # have no statistics yet.
            existing = self.table_info.stats
            missing = [
                attr for attr in union_attrs
                if existing is None
                or not existing.has_column(self.schema.columns[attr].name)
            ]
            if missing:
                collector = StatsCollector(
                    self.model, self.schema, missing,
                    self.config.stats_sample_target,
                    seed=self.queries_executed)
        handle = self.vfs.open(self.path, self.model, notify=False)
        return out_attrs, where_attrs, union_attrs, collector, handle

    def _finalize_stats(self, collector) -> None:
        if collector is None:
            return
        stats = self.table_info.stats or TableStats()
        row_count = (self.row_count if self.row_count is not None
                     else self.table_info.row_count_hint or 0)
        collector.finalize(stats, row_count)
        self.table_info.stats = stats

    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        out_attrs, where_attrs, union_attrs, collector, handle = \
            self._scan_setup(needed, predicate)
        try:
            if self.batch_enabled:
                scanner = BatchCsvScan(self, out_attrs, where_attrs,
                                       union_attrs, predicate, collector)
                for batch in scanner.run(handle):
                    # Batch->tuple transposition for a row-mode consumer:
                    # the one place a batch scan materializes rows.
                    self.model.materialize_rows(batch.nrows)
                    yield from batch.iter_rows()
            else:
                yield from self._scan_rows_scalar(
                    handle, out_attrs, where_attrs, union_attrs, predicate,
                    collector)
        except (FormatError, StorageError) as exc:
            raise annotate(exc, path=self.path,
                           table=self.table_info.name)
        self._finalize_stats(collector)

    def scan_batches(self, needed: Sequence[int],
                     predicate: ScanPredicate | None, kernel=None):
        """Columnar pull: yield :class:`~repro.sql.batch.ColumnBatch`
        blocks instead of tuples. On the scalar path (batch mode off)
        this degrades to chunking the row iterator. ``kernel`` is an
        optional compiled scan kernel (:mod:`repro.kernels`) taking
        over the per-block work on the batch path."""
        from repro.sql.batch import ColumnBatch

        out_attrs, where_attrs, union_attrs, collector, handle = \
            self._scan_setup(needed, predicate)
        try:
            if self.batch_enabled:
                scanner = BatchCsvScan(self, out_attrs, where_attrs,
                                       union_attrs, predicate, collector,
                                       kernel=kernel)
                yield from scanner.run(handle)
            else:
                width = len(out_attrs)
                pending: list[tuple] = []
                for row in self._scan_rows_scalar(
                        handle, out_attrs, where_attrs, union_attrs,
                        predicate, collector):
                    pending.append(row)
                    if len(pending) >= self.config.row_block_size:
                        yield ColumnBatch.from_rows(pending, width)
                        pending = []
                if pending:
                    yield ColumnBatch.from_rows(pending, width)
        except (FormatError, StorageError) as exc:
            raise annotate(exc, path=self.path,
                           table=self.table_info.name)
        self._finalize_stats(collector)

    def _scan_rows_scalar(self, handle, out_attrs, where_attrs,
                          union_attrs, predicate, collector):
        # The indexed/streaming split is frozen once per scan: another
        # cursor's concurrent scan may grow the positional map while
        # this generator is live, and re-reading the span mid-scan
        # would skip the rows the other scan just indexed.
        spanned = self._rows_with_known_span()
        yield from self._scan_indexed_region(
            handle, spanned, out_attrs, where_attrs, union_attrs,
            predicate, collector)
        yield from self._scan_streaming_region(
            handle, spanned, out_attrs, where_attrs, union_attrs,
            predicate, collector)

    # ------------------------------------------------------------------
    # Indexed region: line spans known — block-wise processing
    # ------------------------------------------------------------------
    def _rows_with_known_span(self) -> int:
        if self.pm is None:
            return 0
        known = self.pm.known_line_count
        if known == 0:
            return 0
        if self.row_count is not None and known >= self.row_count:
            return self.row_count
        if self.pm.has_file_length:
            return known  # complete index (e.g. built by the prewarmer)
        return known - 1  # last known line's end is the next line's start

    def _scan_indexed_region(self, handle, spanned, out_attrs,
                             where_attrs, union_attrs, predicate,
                             collector):
        if spanned == 0:
            return
        block_size = self.config.row_block_size
        row = 0
        while row < spanned:
            block = row // block_size
            block_end = min((block + 1) * block_size, spanned)
            yield from self._process_block(
                handle, block, range(row, block_end), out_attrs,
                where_attrs, union_attrs, predicate, collector)
            row = block_end

    def _process_block(self, handle, block, rows, out_attrs, where_attrs,
                       union_attrs, predicate, collector):
        model = self.model
        pm = self.pm
        nrows = len(rows)
        row0 = rows.start
        attr_index_on = self.config.enable_positional_map

        # -- prefetch: cache blocks and positional columns (temporary map)
        cached = {}
        if self.cache is not None:
            for attr in union_attrs:
                cached[attr] = self.cache.get(attr, block)
        positions = {}
        if attr_index_on:
            prefetch_attrs = set(union_attrs)
            for attr in union_attrs:
                prefetch_attrs.add(attr + 1)
                lo, hi = pm.nearest_indexed(block, attr)
                if lo is not None:
                    prefetch_attrs.add(lo)
                if hi is not None:
                    prefetch_attrs.add(hi)
            for attr in sorted(prefetch_attrs):
                if 0 <= attr < self.schema.arity:
                    column = pm.positions(block, attr)
                    if column is not None:
                        positions[attr] = column

        line_spans = [pm.line_span(r) for r in rows]
        if any(span is None for span in line_spans):
            # DROP TABLE / map teardown under a live scan: fail cleanly.
            raise ExecutionError(
                f"line spans for block {block} vanished from the "
                "positional map mid-scan (table dropped or map torn "
                "down under a live query); re-run the query")

        def cached_value(attr, idx):
            cache_block = cached.get(attr)
            if cache_block is None:
                return False, None
            present, value = cache_block.get(idx)
            if present:
                model.cache_read(1)
            return present, value

        def row_fully_cached(idx, attrs):
            for attr in attrs:
                cache_block = cached.get(attr)
                if cache_block is None or not (
                        idx < len(cache_block.mask) and cache_block.mask[idx]):
                    return False
            return True

        # -- phase W: decide which rows need file bytes for the WHERE
        need_file = np.zeros(nrows, dtype=bool)
        for idx in range(nrows):
            if not row_fully_cached(idx, where_attrs):
                need_file[idx] = True

        line_bytes: dict[int, bytes] = {}
        self._read_runs(handle, rows, line_spans, need_file, line_bytes)

        # accumulators for end-of-block PM/cache/stat updates
        new_positions = ({attr: np.full(nrows, _NO_POS, dtype=np.int32)
                          for attr in union_attrs} if attr_index_on else None)
        eager_positions: dict[int, np.ndarray] = {}
        cache_entries: dict[int, list] = {attr: [] for attr in union_attrs}

        contexts: dict[int, _RowContext] = {}
        qualifying: list[int] = []
        #: idx -> ready output values for rows salvaged by the tolerant
        #: path (on_error 'null'); they bypass phase S entirely.
        tolerant_out: dict[int, list] = {}

        for idx in range(nrows):
            model.tuple_overhead(1)
            row_values: dict[int, object] = {}
            context = None
            if need_file[idx]:
                context = self._make_context(block, idx, rows, line_spans,
                                             line_bytes, positions)
                contexts[idx] = context
            if predicate is not None:
                try:
                    passed = self._eval_where(
                        predicate, where_attrs, idx, context, cached_value,
                        row_values, cache_entries)
                except CSVFormatError as exc:
                    if self.on_error == "fail":
                        raise annotate(exc, row_number=row0 + idx)
                    line = context.line
                    self._scrub_row(idx, contexts, cache_entries)
                    if self.on_error == "skip":
                        self._quarantine_row(row0 + idx, line, str(exc))
                        model.rows_rejected(1)
                        continue
                    qual, out_values, _ = self.tolerant_row(
                        model, line, out_attrs, where_attrs, predicate)
                    if qual:
                        tolerant_out[idx] = out_values
                        qualifying.append(idx)
                    continue
                if passed is not True:
                    if collector is not None:
                        collector.add_row(row_values)
                    continue
            qualifying.append(idx)
            if collector is not None and not out_attrs:
                collector.add_row(row_values)

        # -- phase S: fetch bytes for qualifying rows missing SELECT attrs
        need_file_select = np.zeros(nrows, dtype=bool)
        for idx in qualifying:
            if (idx not in tolerant_out and idx not in contexts
                    and not row_fully_cached(idx, out_attrs)):
                need_file_select[idx] = True
        if need_file_select.any():
            self._read_runs(handle, rows, line_spans, need_file_select,
                            line_bytes)

        for idx in qualifying:
            ready = tolerant_out.get(idx)
            if ready is not None:
                yield tuple(ready)
                continue
            context = contexts.get(idx)
            if context is None and need_file_select[idx]:
                context = self._make_context(block, idx, rows, line_spans,
                                             line_bytes, positions)
                contexts[idx] = context
            out_values = []
            row_values: dict[int, object] = dict(
                context.values if context else {})
            try:
                for attr in out_attrs:
                    present, value = cached_value(attr, idx)
                    if present:
                        out_values.append(value)
                        row_values[attr] = value
                        continue
                    value = context.value(attr)
                    out_values.append(value)
                    row_values[attr] = value
                    cache_entries[attr].append((idx, value))
            except CSVFormatError as exc:
                if self.on_error == "fail":
                    raise annotate(exc, row_number=row0 + idx)
                line = context.line
                self._scrub_row(idx, contexts, cache_entries)
                if self.on_error == "skip":
                    self._quarantine_row(row0 + idx, line, str(exc))
                    model.rows_rejected(1)
                    continue
                qual, out_values, _ = self.tolerant_row(
                    model, line, out_attrs, where_attrs, predicate)
                if qual:
                    yield tuple(out_values)
                continue
            model.tuple_form(len(out_attrs))
            if collector is not None:
                collector.add_row(row_values)
            yield tuple(out_values)

        # -- flush PM / cache accumulators
        if attr_index_on:
            self._flush_positions(block, nrows, contexts, union_attrs,
                                  positions, new_positions)
        if self.cache is not None:
            for attr, entries in cache_entries.items():
                if entries:
                    self.cache.put(attr, block, nrows, entries,
                                   self._families[attr])

    def _eval_where(self, predicate, where_attrs, idx, context,
                    cached_value, row_values, cache_entries):
        values: dict[int, object] = {}
        for attr in where_attrs:
            present, value = cached_value(attr, idx)
            if present:
                values[attr] = value
            else:
                value = context.value(attr)
                values[attr] = value
                cache_entries[attr].append((idx, value))
            row_values[attr] = value
        self.model.predicate(predicate.n_terms)
        return predicate.fn(values)

    def _scrub_row(self, idx, contexts, cache_entries) -> None:
        """Withdraw a failed row from the block's staged auxiliary
        updates: its cache entries are dropped and its context removed
        so no positions parsed out of a malformed line reach the
        positional map (degradation, never corruption)."""
        contexts.pop(idx, None)
        for entries in cache_entries.values():
            if any(entry[0] == idx for entry in entries):
                entries[:] = [e for e in entries if e[0] != idx]

    def _make_context(self, block, idx, rows, line_spans, line_bytes,
                      positions) -> _RowContext:
        start, end = line_spans[idx]
        line = line_bytes[idx]
        known_starts = {0: 0}
        for attr, column in positions.items():
            if idx < len(column):
                rel = int(column[idx])
                if rel != _NO_POS:
                    known_starts[attr] = rel
        return _RowContext(self, line, start, known_starts)

    def _read_runs(self, handle, rows, line_spans, mask, line_bytes):
        """Read the byte span covering every row flagged in ``mask``
        (one sequential read per block — the scan streams through small
        gaps rather than seeking per tuple) and slice out line bytes."""
        nrows = len(rows)
        needed = [idx for idx in range(nrows)
                  if mask[idx] and idx not in line_bytes]
        if not needed:
            return
        first, last = needed[0], needed[-1]
        byte_start = line_spans[first][0]
        byte_end = line_spans[last][1]
        blob = handle.read_at(byte_start, byte_end - byte_start)
        for j in needed:
            s, e = line_spans[j]
            line_bytes[j] = blob[s - byte_start:e - byte_start]

    def _flush_positions(self, block, nrows, contexts, union_attrs,
                         existing, new_positions):
        """Insert positions discovered this query as one chunk whose
        vertical group is the query's attribute combination (§4.2
        Adaptive Behavior)."""
        discovered: dict[int, np.ndarray] = {}
        for idx, context in contexts.items():
            attrs = (context.known_starts
                     if self.config.eager_prefix_indexing
                     else {a: s for a, s in context.known_starts.items()
                           if a in new_positions})
            for attr, start in attrs.items():
                if attr == 0 or attr >= self.schema.arity:
                    continue  # attr 0 is implicit (line start)
                column = discovered.get(attr)
                if column is None:
                    column = np.full(nrows, _NO_POS, dtype=np.int32)
                    discovered[attr] = column
                column[idx] = start
        group = []
        for attr in sorted(discovered):
            already = existing.get(attr)
            column = discovered[attr]
            if already is not None:
                # An append can grow the block's row count past what the
                # map indexed before it; pad the prior column so the
                # merge lines up (new tail rows have no prior position).
                prior = already[:nrows]
                if len(prior) < nrows:
                    prior = np.concatenate(
                        [prior, np.full(nrows - len(prior), _NO_POS,
                                        dtype=np.int32)])
                merged = np.where(column == _NO_POS, prior, column)
                new_known = int((merged != _NO_POS).sum())
                old_known = int((prior != _NO_POS).sum())
                if new_known <= old_known:
                    continue  # nothing new for this attribute
                discovered[attr] = merged
            group.append(attr)
        if not group:
            return
        matrix = np.column_stack([discovered[attr] for attr in group])
        self.pm.insert_chunk(tuple(group), block, matrix)

    # ------------------------------------------------------------------
    # Streaming region: unseen tail — sequential read, discover lines
    # ------------------------------------------------------------------
    def _scan_streaming_region(self, handle, spanned, out_attrs,
                               where_attrs, union_attrs, predicate,
                               collector):
        if self.row_count is not None and spanned >= self.row_count:
            return  # whole file already indexed
        model = self.model
        pm = self.pm
        track = pm is not None
        file_size = handle.size

        # Resume where the indexed region ends; if the map was dropped
        # (or never existed) the streaming region is the whole file.
        if track and pm.known_line_count > spanned:
            start_offset = pm.line_start(spanned)
        elif track and spanned > 0:
            start_offset = file_size  # complete index: tail is empty
        else:
            start_offset = 0
            spanned = 0
        if start_offset >= file_size:
            if track:
                pm.set_file_length(file_size)
            self.row_count = spanned
            self._finish_file(spanned)
            return

        block_size = self.config.row_block_size
        max_attr = union_attrs[-1] if union_attrs else 0
        cache_entries: dict[int, list] = {attr: [] for attr in union_attrs}
        block_positions: dict[int, dict[int, int]] = {}
        current_block = spanned // block_size if spanned else 0

        row = spanned
        buffer = b""
        buffer_start = start_offset
        handle.seek(start_offset)
        read_size = 256 * 1024

        def flush_block(block_id: int, rows_in_block: int) -> None:
            if self.config.enable_positional_map and block_positions:
                self._flush_stream_positions(block_id, rows_in_block,
                                             block_positions)
            if self.cache is not None:
                for attr, entries in cache_entries.items():
                    if entries:
                        self.cache.put(attr, block_id, rows_in_block,
                                       entries, self._families[attr])
            block_positions.clear()
            for entries in cache_entries.values():
                entries.clear()

        while True:
            chunk = handle.read_sequential(read_size)
            if not chunk:
                break
            model.newline_scan(len(chunk))
            buffer += chunk
            cursor = 0
            while True:
                nl = buffer.find(b"\n", cursor)
                if nl < 0:
                    break
                line = buffer[cursor:nl]
                line_start = buffer_start + cursor
                block = row // block_size
                if block != current_block:
                    flush_block(current_block,
                                self._rows_in_block(current_block, row))
                    current_block = block
                if track:
                    if row >= pm.known_line_count:
                        pm.append_line_start(line_start)
                result = self._process_streamed_row(
                    row, block, line, out_attrs, where_attrs, predicate,
                    collector, cache_entries, block_positions, max_attr)
                if result is not None:
                    yield result
                row += 1
                cursor = nl + 1
            buffer = buffer[cursor:]
            buffer_start += cursor
        unterminated = bool(buffer)
        if buffer:  # unterminated last line
            if track and row >= pm.known_line_count:
                pm.append_line_start(buffer_start)
            block = row // block_size
            if block != current_block:
                flush_block(current_block,
                            self._rows_in_block(current_block, row))
                current_block = block
            result = self._process_streamed_row(
                row, block, buffer, out_attrs, where_attrs, predicate,
                collector, cache_entries, block_positions, max_attr)
            if result is not None:
                yield result
            row += 1
        flush_block(current_block, self._rows_in_block(current_block, row))
        if track:
            pm.set_file_length(file_size,
                               newline_terminated=not unterminated)
        self.row_count = row
        self._finish_file(row)

    def _rows_in_block(self, block: int, next_row: int) -> int:
        first = block * self.config.row_block_size
        return min(next_row - first, self.config.row_block_size)

    def _finish_file(self, row_count: int) -> None:
        self.table_info.row_count_hint = row_count

    def _process_streamed_row(self, row, block, line, out_attrs,
                              where_attrs, predicate, collector,
                              cache_entries, block_positions, max_attr):
        try:
            return self._process_streamed_row_strict(
                row, block, line, out_attrs, where_attrs, predicate,
                collector, cache_entries, block_positions, max_attr)
        except CSVFormatError as exc:
            if self.on_error == "fail":
                raise annotate(exc, row_number=row)
            # Withdraw the row's staged cache entries (positions are
            # only recorded on success, so there is nothing to undo
            # there); the tolerant redo feeds neither stats nor the
            # auxiliary structures.
            row_in_block = row - block * self.config.row_block_size
            for entries in cache_entries.values():
                if any(entry[0] == row_in_block for entry in entries):
                    entries[:] = [e for e in entries
                                  if e[0] != row_in_block]
            if self.on_error == "skip":
                self._quarantine_row(row, line, str(exc))
                self.model.rows_rejected(1)
                return None
            qual, out_values, _ = self.tolerant_row(
                self.model, line, out_attrs, where_attrs, predicate)
            return tuple(out_values) if qual else None

    def _process_streamed_row_strict(self, row, block, line, out_attrs,
                                     where_attrs, predicate, collector,
                                     cache_entries, block_positions,
                                     max_attr):
        model = self.model
        model.tuple_overhead(1)
        context = _RowContext(self, line, 0, {0: 0})
        row_in_block = row - block * self.config.row_block_size
        row_values: dict[int, object] = {}

        passed = True
        if predicate is not None:
            values = {}
            for attr in where_attrs:
                value = context.value(attr)
                values[attr] = value
                row_values[attr] = value
                cache_entries[attr].append((row_in_block, value))
            model.predicate(predicate.n_terms)
            passed = predicate.fn(values) is True

        result = None
        if passed:
            out_values = []
            for attr in out_attrs:
                value = context.value(attr)
                out_values.append(value)
                if attr not in row_values:
                    row_values[attr] = value
                    cache_entries[attr].append((row_in_block, value))
            model.tuple_form(len(out_attrs))
            result = tuple(out_values)
        if collector is not None:
            collector.add_row(row_values)
        if self.config.enable_positional_map:
            starts = (context.known_starts
                      if self.config.eager_prefix_indexing
                      else {a: s for a, s in context.known_starts.items()
                            if a in cache_entries})
            stored = {a: s for a, s in starts.items()
                      if 0 < a < self.schema.arity}
            if stored:
                block_positions[row_in_block] = stored
        return result

    def _flush_stream_positions(self, block, rows_in_block,
                                block_positions) -> None:
        attrs = sorted({a for starts in block_positions.values()
                        for a in starts})
        if not attrs:
            return
        matrix = np.full((rows_in_block, len(attrs)), _NO_POS,
                         dtype=np.int32)
        for row_in_block, starts in block_positions.items():
            for col, attr in enumerate(attrs):
                if attr in starts:
                    matrix[row_in_block, col] = starts[attr]
        # Merge with whatever the map already knows for this block (a
        # previous partial scan may have indexed its head rows).
        for col, attr in enumerate(attrs):
            existing = self.pm.positions(block, attr)
            if existing is None:
                continue
            overlap = min(len(existing), rows_in_block)
            column = matrix[:overlap, col]
            merge_from = existing[:overlap]
            unknown = column == _NO_POS
            column[unknown] = merge_from[unknown]
        self.pm.insert_chunk(tuple(attrs), block, matrix)

    # ------------------------------------------------------------------
    def _convert(self, attr: int, text: str, model: CostModel | None = None):
        """Convert raw text to the attribute's binary value, charging the
        family-specific conversion cost (the paper's dominant CPU cost)."""
        family = self._families[attr]
        (model if model is not None else self.model).convert(family, 1)
        if text == "" and family != "str":
            return None
        try:
            return self._dtypes[attr].parse(text)
        except Exception as exc:
            raise annotate(
                CSVFormatError(
                    f"cannot parse {text!r} as {self._dtypes[attr].name} "
                    f"(attribute {self.schema.columns[attr].name})"),
                column=self.schema.columns[attr].name) from exc

    # ------------------------------------------------------------------
    # Error policies (OPTIONS (on_error ...)): tolerant row evaluation
    # ------------------------------------------------------------------
    def tolerant_row(self, model: CostModel, line: bytes, out_attrs,
                     where_attrs, predicate):
        """Best-effort evaluation of one malformed-or-suspect row under a
        tolerant error policy (``on_error 'skip'`` or ``'null'``).

        The strict scan paths fall back here after a row raises
        :class:`CSVFormatError`: the whole line is re-tokenized with a
        plain delimiter split (degradation, not the selective §4.1
        machinery — malformed lines forfeit positional-map and cache
        participation) and each *touched* value is converted
        individually. Under ``'null'`` an unconvertible or missing value
        becomes SQL NULL and the row stays; under ``'skip'`` it rejects
        the whole row. Returns ``(qualifies, out_values | None,
        reject_reason | None)`` — a non-None reason means the caller
        must quarantine the row. All charges go to ``model`` so staged
        (recorded) redo and direct redo price identically.
        """
        policy = self.on_error
        model.tokenize(len(line))
        fields = line.decode("utf-8", "replace").split(
            self.dialect.delimiter.decode("utf-8"))
        values: dict[int, object] = {}

        def fetch(attr):
            # -> (ok, value); not ok == row rejected (policy 'skip')
            if attr in values:
                return True, values[attr]
            if attr >= len(fields):
                if policy == "skip":
                    return False, None
                values[attr] = None
                return True, None
            try:
                value = self._convert(attr, fields[attr], model=model)
            except CSVFormatError:
                if policy == "skip":
                    return False, None
                value = None
            values[attr] = value
            return True, value

        def reason(attr):
            name = self.schema.columns[attr].name
            if attr >= len(fields):
                return (f"short row: {len(fields)} attributes, "
                        f"attribute {name} missing")
            return (f"cannot parse {fields[attr]!r} as "
                    f"{self._dtypes[attr].name} (attribute {name})")

        if predicate is not None:
            pvalues = {}
            for attr in where_attrs:
                ok, value = fetch(attr)
                if not ok:
                    return False, None, reason(attr)
                pvalues[attr] = value
            model.predicate(predicate.n_terms)
            if predicate.fn(pvalues) is not True:
                return False, None, None
        out_values = []
        for attr in out_attrs:
            ok, value = fetch(attr)
            if not ok:
                return False, None, reason(attr)
            out_values.append(value)
        model.tuple_form(len(out_attrs))
        return True, out_values, None

    def _quarantine_row(self, row_number: int, line: bytes,
                        reason: str) -> None:
        """Record a rejected row in the table's ``__rejects__/`` sidecar
        (free of virtual time — observability, like the counters). The
        caller charges ``rows_rejected``; this only persists the row,
        once per row number per file version."""
        if row_number in self._rejected_rows:
            return
        self._rejected_rows.add(row_number)
        note = reason.replace("\t", " ").replace("\n", " ")
        record = b"%d\t%s\t%s\n" % (
            row_number, note.encode("utf-8", "replace"),
            bytes(line).replace(b"\n", b" "))
        if not self.vfs.exists(self._rejects_path):
            self.vfs.create(self._rejects_path)
        self.vfs.append_bytes(self._rejects_path, record)
