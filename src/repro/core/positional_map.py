"""The adaptive positional map (§4.2, Figure 2).

Low-level metadata about the structure of a raw file, built as a side
effect of query processing and used to navigate back to attribute values
without re-tokenizing.

Structure
---------
* A **line index**: absolute byte offsets of tuple (line) starts. This is
  the "minimal map maintaining positional information only for the end of
  lines" that even the cache-only PostgresRaw variant keeps (§5.1.2).
* **Chunks**, partitioned vertically and horizontally: a chunk holds the
  relative-to-line-start offsets (int32 — the paper's "relative positions
  reduce storage requirements" point) of one *group* of attributes
  (attributes requested together, in query order — "the attributes do not
  necessarily appear in the map in the same order as in the raw file")
  for one block of rows.
* An **attribute-order directory** per block: which attributes are
  indexed where — the paper's "higher level data structure ... used to
  quickly determine the position of a given attribute in the positional
  map".

Maintenance: chunks are LRU-evicted to stay within ``budget_bytes``;
with spilling enabled, evicted chunks are written to the VFS and read
back (at I/O cost) on demand instead of being discarded (§4.2
Maintenance). Dropping any part of the map is always safe — positions
served are exact or absent, never wrong.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

import numpy as np

from repro.errors import StorageError
from repro.simcost.model import CostModel
from repro.storage.vfs import VirtualFS

#: (group, block) — group is the ordered tuple of attribute indexes.
ChunkKey = tuple[tuple[int, ...], int]

_NO_POS = -1  # sentinel inside chunks: position unknown for this row


class PositionalMap:
    """Adaptive positional map for one raw file."""

    def __init__(
        self,
        model: CostModel,
        nattrs: int,
        row_block_size: int = 1024,
        budget_bytes: int | None = None,
        spill_vfs: VirtualFS | None = None,
        spill_prefix: str = "__pm_spill__",
    ):
        self.model = model
        self.nattrs = nattrs
        self.row_block_size = row_block_size
        self.budget_bytes = budget_bytes
        self.spill_vfs = spill_vfs
        self.spill_prefix = spill_prefix

        self._line_starts: list[int] = []
        self._file_length: int | None = None  # set when EOF position known
        self._newline_terminated = True       # last line ends with \n?

        self._chunks: OrderedDict[ChunkKey, np.ndarray] = OrderedDict()
        self._chunk_bytes = 0
        #: block -> {attr -> (chunk_key, column_in_chunk)}
        self._directory: dict[int, dict[int, tuple[ChunkKey, int]]] = {}
        self._spilled: dict[ChunkKey, str] = {}
        self._spill_counter = 0
        self.evictions = 0
        self.spill_loads = 0

    # ------------------------------------------------------------------
    # Line index
    # ------------------------------------------------------------------
    @property
    def known_line_count(self) -> int:
        """Number of consecutive-from-zero lines with known start offsets."""
        return len(self._line_starts)

    def append_line_start(self, offset: int) -> None:
        """Record the start offset of the next line (must be appended in
        file order)."""
        if self._line_starts and offset <= self._line_starts[-1]:
            raise StorageError(
                f"line starts must be strictly increasing "
                f"({offset} after {self._line_starts[-1]})")
        self._line_starts.append(offset)
        self.model.map_insert(1)

    def append_line_starts(self, offsets) -> None:
        """Bulk :meth:`append_line_start` — one strictly-increasing check
        and one cost charge for a whole batch of discovered lines."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) == 0:
            return
        if (self._line_starts and offsets[0] <= self._line_starts[-1]) or \
                (len(offsets) > 1 and (np.diff(offsets) <= 0).any()):
            raise StorageError("line starts must be strictly increasing")
        self._line_starts.extend(offsets.tolist())
        self.model.map_insert(len(offsets))

    def set_file_length(self, length: int,
                        newline_terminated: bool | None = None) -> None:
        """Record the file length so the last line's end is known.
        ``newline_terminated`` says whether the final byte is a newline
        (an unterminated last line extends to EOF itself); None keeps
        the current belief (files start as newline-terminated, the
        write_csv contract)."""
        self._file_length = length
        if newline_terminated is not None:
            self._newline_terminated = newline_terminated

    def invalidate_file_length(self) -> None:
        """Forget the EOF position (file was appended to, §4.5)."""
        self._file_length = None

    @property
    def has_file_length(self) -> bool:
        """True when the EOF position is known — which implies the line
        index is a complete cover of the file (it is only set by code
        that scanned through to the end)."""
        return self._file_length is not None

    def line_start(self, row: int) -> int | None:
        if 0 <= row < len(self._line_starts):
            self.model.map_access(1)
            return self._line_starts[row]
        return None

    def line_span(self, row: int) -> tuple[int, int] | None:
        """Absolute ``(start, end)`` of line ``row`` excluding the newline,
        or None if either endpoint is unknown."""
        if not 0 <= row < len(self._line_starts):
            return None
        start = self._line_starts[row]
        if row + 1 < len(self._line_starts):
            self.model.map_access(2)
            return (start, self._line_starts[row + 1] - 1)
        if self._file_length is not None:
            self.model.map_access(2)
            end = self._file_length
            if end > start and self._ends_with_newline():
                end -= 1
            return (start, end)
        return None

    def _ends_with_newline(self) -> bool:
        # Set by whichever scan reached EOF; generated CSVs always end
        # with a newline (write_csv guarantees it) but externally
        # supplied files may not.
        return self._newline_terminated

    def has_line_spans(self, lo: int, hi: int) -> bool:
        """Uncharged probe: would :meth:`line_spans_block` succeed for
        ``lo..hi-1``? Replicates its boundary checks without building
        arrays or charging map accesses — compiled scan kernels test
        coverage before committing to the fully-mapped fast path."""
        if lo < 0 or hi <= lo or hi > len(self._line_starts):
            return False
        if hi == len(self._line_starts) and self._file_length is None:
            return False
        return True

    def line_spans_block(self, lo: int, hi: int,
                         ) -> tuple[np.ndarray, np.ndarray] | None:
        """Absolute ``(starts, ends)`` arrays for lines ``lo..hi-1``
        (ends exclude the newline), or None if any span is unknown —
        the batch scan's bulk :meth:`line_span`."""
        if lo < 0 or hi <= lo or hi > len(self._line_starts):
            return None
        known = len(self._line_starts)
        if hi == known and self._file_length is None:
            return None  # last known line's end is undiscovered
        starts = np.array(self._line_starts[lo:hi], dtype=np.int64)
        ends = np.empty(hi - lo, dtype=np.int64)
        ends[:-1] = starts[1:] - 1
        if hi < known:
            ends[-1] = self._line_starts[hi] - 1
        else:
            end = self._file_length
            if end > starts[-1] and self._ends_with_newline():
                end -= 1
            ends[-1] = end
        self.model.map_access(2 * (hi - lo))
        return starts, ends

    # ------------------------------------------------------------------
    # Attribute chunks
    # ------------------------------------------------------------------
    def block_of(self, row: int) -> int:
        return row // self.row_block_size

    def block_rows(self, block: int, total_rows: int) -> range:
        lo = block * self.row_block_size
        return range(lo, min(lo + self.row_block_size, total_rows))

    def insert_chunk(self, group: Iterable[int], block: int,
                     matrix: np.ndarray) -> None:
        """Store relative offsets for ``group`` attributes over ``block``.

        ``matrix`` has one row per tuple in the block (tail blocks are
        shorter) and one column per attribute in ``group`` order.
        """
        group = tuple(group)
        if matrix.ndim != 2 or matrix.shape[1] != len(group):
            raise StorageError(
                f"chunk matrix shape {matrix.shape} does not match group "
                f"of {len(group)} attributes")
        matrix = np.ascontiguousarray(matrix, dtype=np.int32)
        key: ChunkKey = (group, block)
        old = self._chunks.pop(key, None)
        if old is not None:
            self._chunk_bytes -= old.nbytes
        self._chunks[key] = matrix
        self._chunk_bytes += matrix.nbytes
        self.model.map_insert(matrix.size)
        directory = self._directory.setdefault(block, {})
        for col, attr in enumerate(group):
            directory[attr] = (key, col)
        self._spilled.pop(key, None)
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self._chunk_bytes > self.budget_bytes and self._chunks:
            key, matrix = self._chunks.popitem(last=False)
            self._chunk_bytes -= matrix.nbytes
            self.evictions += 1
            if self.spill_vfs is not None:
                self._spill(key, matrix)
            else:
                self._forget(key)

    def _spill(self, key: ChunkKey, matrix: np.ndarray) -> None:
        path = f"{self.spill_prefix}/chunk_{self._spill_counter}.pm"
        self._spill_counter += 1
        self.spill_vfs.create(path)
        handle = self.spill_vfs.open(path, self.model)
        handle.append(matrix.tobytes())
        self._spilled[key] = path
        # Directory entries stay: the positions are still reachable.

    def _forget(self, key: ChunkKey) -> None:
        group, block = key
        directory = self._directory.get(block)
        if not directory:
            return
        for col, attr in enumerate(group):
            if directory.get(attr, (None, None))[0] == key:
                del directory[attr]
        if not directory:
            del self._directory[block]

    def _load_spilled(self, key: ChunkKey) -> np.ndarray | None:
        """Read an evicted chunk back from the VFS — with self-healing:
        a read failure or geometry mismatch (truncated / corrupted spill
        file) drops the chunk instead of crashing. The positional map
        is always a safe-to-lose accelerator (§4.2): callers fall back
        to re-tokenizing the raw file, so the worst case is degraded
        performance plus an ``aux_rebuilds`` count, never a wrong
        answer."""
        path = self._spilled.pop(key)
        group, _block = key
        try:
            handle = self.spill_vfs.open(path, self.model)
            raw = handle.read_at(0, handle.size)
            if len(raw) == 0 or len(raw) % (4 * len(group)) != 0:
                raise StorageError(
                    f"spilled PM chunk {path!r} has {len(raw)} bytes, "
                    f"not a whole number of {len(group)}-column int32 "
                    f"rows")
        except StorageError:
            self._forget(key)
            self.model.aux_rebuild(1)
            return None
        matrix = np.frombuffer(raw, dtype=np.int32).reshape(-1, len(group))
        self.spill_loads += 1
        self._chunks[key] = matrix
        self._chunk_bytes += matrix.nbytes
        self._enforce_budget()
        return matrix

    def _chunk(self, key: ChunkKey) -> np.ndarray | None:
        matrix = self._chunks.get(key)
        if matrix is not None:
            self._chunks.move_to_end(key)
            return matrix
        if key in self._spilled:
            return self._load_spilled(key)
        return None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def indexed_attrs(self, block: int) -> list[int]:
        """Attributes with positions available for ``block`` (sorted by
        file order), whether in memory or spilled."""
        return sorted(self._directory.get(block, ()))

    def positions(self, block: int, attr: int) -> np.ndarray | None:
        """Column of relative offsets of ``attr`` over ``block``, or None.

        Charges one map access per position served (the paper's cost of
        reading the map)."""
        directory = self._directory.get(block)
        if not directory or attr not in directory:
            return None
        key, col = directory[attr]
        matrix = self._chunk(key)
        if matrix is None:  # evicted without spill and directory stale
            return None
        self.model.map_access(matrix.shape[0])
        return matrix[:, col]

    def position(self, row: int, attr: int) -> int | None:
        """Relative offset of ``attr`` in ``row``'s line, or None."""
        block = self.block_of(row)
        directory = self._directory.get(block)
        if not directory or attr not in directory:
            return None
        key, col = directory[attr]
        matrix = self._chunk(key)
        if matrix is None:
            return None
        row_in_block = row - block * self.row_block_size
        if row_in_block >= matrix.shape[0]:
            return None
        self.model.map_access(1)
        return int(matrix[row_in_block, col])

    def nearest_indexed(self, block: int, attr: int,
                        ) -> tuple[int | None, int | None]:
        """Closest indexed attributes at-or-below and at-or-above ``attr``
        for ``block`` — the basis of incremental bidirectional parsing."""
        attrs = self.indexed_attrs(block)
        lo = None
        hi = None
        for a in attrs:
            if a <= attr:
                lo = a
            elif hi is None:
                hi = a
                break
        return lo, hi

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def canonicalize_chunks(self) -> int:
        """Regroup every block's vertical chunks into one canonical
        chunk whose group is the block's *sorted* indexed-attribute
        set — making the map layout independent of the flush order that
        built it (interleaved cursors and parallel workloads group the
        same positions differently depending on which query's flush
        came first; after this pass two maps with the same content are
        byte-identical). Run by the idle tuner (§7 auto-tuning); the
        map's answers are unchanged, only the chunking is.

        Charges ``map_access`` for the positions read and
        ``map_insert`` for the rewritten chunks — honest maintenance
        cost on the engine's clock, which is how the tuner's idle
        budget bounds it. Returns the number of blocks rewritten.
        """
        rewritten = 0
        for block in sorted(self._directory):
            directory = self._directory.get(block)
            if not directory:
                continue
            attrs = sorted(directory)
            keys = {directory[attr][0] for attr in attrs}
            if len(keys) == 1:
                key = next(iter(keys))
                if key[0] == tuple(attrs) and (key in self._chunks
                                               or key in self._spilled):
                    continue  # already canonical (in memory or spilled)
            columns: dict[int, np.ndarray] = {}
            nrows = 0
            for attr in attrs:
                col = self.positions(block, attr)
                if col is not None:
                    columns[attr] = col.copy()
                    nrows = max(nrows, len(col))
            for key in {directory[attr][0] for attr in list(directory)}:
                old = self._chunks.pop(key, None)
                if old is not None:
                    self._chunk_bytes -= old.nbytes
                self._spilled.pop(key, None)
            del self._directory[block]
            if not columns:
                continue
            group = sorted(columns)
            matrix = np.full((nrows, len(group)), _NO_POS, dtype=np.int32)
            for col_idx, attr in enumerate(group):
                col = columns[attr]
                matrix[:len(col), col_idx] = col
            self.insert_chunk(tuple(group), block, matrix)
            rewritten += 1
        return rewritten

    @property
    def chunk_bytes(self) -> int:
        """Bytes held by in-memory attribute chunks (the budgeted part)."""
        return self._chunk_bytes

    @property
    def bytes_used(self) -> int:
        """Total in-memory footprint: chunks + line index (8 B/entry)."""
        return self._chunk_bytes + 8 * len(self._line_starts)

    @property
    def pointer_count(self) -> int:
        """Stored positions (attr offsets + line starts) — Fig 3's x-axis."""
        attr_positions = sum(m.size for m in self._chunks.values())
        return attr_positions + len(self._line_starts)

    def drop(self) -> None:
        """Drop the whole map (always safe; next query rebuilds it)."""
        self._chunks.clear()
        self._chunk_bytes = 0
        self._directory.clear()
        self._spilled.clear()
        self._line_starts.clear()
        self._file_length = None
        self._newline_terminated = True
