"""File-system interface prewarming (§7 "File System Interface").

"As soon as a user opens a CSV file in a text editor, NoDB can be
notified through the file system layer and, in a background process,
start tokenizing the parts of the text file currently being read by the
user. Future NoDB queries can benefit from this information to further
reduce the query response time. Obtaining this information is
reasonably cheap since the data has already been read from disk by the
user request and is in the file system buffer cache."

The :class:`FsInterfacePrewarmer` subscribes to VFS read notifications
for a raw file and extends the engine's line index over the bytes other
programs have pulled into the OS cache. The newline scan is charged to
the engine (it is background CPU work), but it happens *outside* any
query, so the next query skips both the cold read and the newline
discovery — exactly the paper's promised effect.
"""

from __future__ import annotations

from repro.core.positional_map import PositionalMap
from repro.simcost.model import CostModel
from repro.storage.vfs import VirtualFS


class FsInterfacePrewarmer:
    """Builds the line index opportunistically from foreign reads."""

    def __init__(self, vfs: VirtualFS, path: str,
                 positional_map: PositionalMap, model: CostModel):
        self.vfs = vfs
        self.path = path
        self.pm = positional_map
        self.model = model
        self._scanned_upto = 0      # newline scanning progress (bytes)
        self._attached = False
        self.bytes_prewarmed = 0

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if not self._attached:
            self.vfs.add_read_observer(self.path, self._on_read)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.vfs.remove_read_observer(self.path, self._on_read)
            self._attached = False

    # ------------------------------------------------------------------
    def _on_read(self, path: str, offset: int, length: int) -> None:
        """A foreign program read [offset, offset+length): tokenize the
        newly-covered contiguous prefix, if any.

        The line index must stay a contiguous prefix of the file, so
        only reads that extend the frontier help; a read in the middle
        of an unscanned region is ignored (its bytes stay warm in the
        OS cache, which still helps later).
        """
        end = offset + length
        if offset > self._scanned_upto or end <= self._scanned_upto:
            return
        # Catch up with what the scan region may already know.
        self._sync_frontier()
        start = max(self._scanned_upto, offset)
        if start >= end:
            return
        data = self.vfs.read_bytes(self.path)[start:end]
        # The bytes are in the OS cache (the foreign read just pulled
        # them): the background process pays memory bandwidth + scan.
        self.model.disk_read(len(data), warm=True)
        self.model.newline_scan(len(data))
        if self._scanned_upto == 0 and self.pm.known_line_count == 0 \
                and self.vfs.size(self.path) > 0:
            self.pm.append_line_start(0)
        cursor = 0
        while True:
            newline = data.find(b"\n", cursor)
            if newline < 0:
                break
            absolute = start + newline + 1
            cursor = newline + 1
            if absolute < self.vfs.size(self.path):
                if absolute > (self.pm._line_starts[-1]
                               if self.pm.known_line_count else -1):
                    self.pm.append_line_start(absolute)
        self._scanned_upto = end
        self.bytes_prewarmed += len(data)
        if end >= self.vfs.size(self.path):
            self.pm.set_file_length(self.vfs.size(self.path))

    def _sync_frontier(self) -> None:
        """If the engine's own scans advanced the line index past our
        counter, move the frontier forward (never backward)."""
        if self.pm.known_line_count:
            last_start = self.pm._line_starts[-1]
            if last_start > self._scanned_upto:
                self._scanned_upto = last_start
