"""The vectorized batch scan pipeline (NoDB hot loop, block-at-a-time).

This module is the batch twin of the row-at-a-time machinery in
:mod:`repro.core.scan`. One :class:`BatchCsvScan` drives a whole scan as
a sequence of :class:`~repro.sql.batch.ColumnBatch` blocks:

* **newline / delimiter discovery** runs over raw byte buffers with
  NumPy (``np.frombuffer`` + ``flatnonzero`` + ``searchsorted``) instead
  of per-line scalar ``find``/``span_forward`` loops;
* **selective parsing** converts whole column slices at once — int and
  float columns go through a fixed-width byte-matrix ``astype`` fast
  path, everything else through one tight per-column loop;
* **predicate evaluation** uses the planner's vectorized mask
  (``ScanPredicate.vector_fn``) when the WHERE columns materialized as
  typed arrays, falling back to the row closure otherwise;
* **positional map and binary cache** traffic happens in whole chunks
  (``line_spans_block``, ``put_column``, ``insert_chunk``) instead of
  per-row dict updates.

Correctness contract: for any workload, the batch pipeline produces the
same result rows *and leaves the same positional-map and cache contents*
as the scalar path (which is retained as the differential oracle — see
``tests/test_batch_differential.py``). The trickiest part of honoring
that contract is the §4.2 incremental tokenization: spans are derived
from the nearest known attribute per row — forward or backward,
whichever is closer — exactly as the scalar ``_RowContext`` does, but
with delimiter-index arithmetic instead of byte scanning.

Parallel chunk scans (``config.scan_workers > 1``): the streaming
region's row-block groups are *pure functions* of their byte slice, so
they fan out across the engine's :class:`~repro.core.parallel.
ScanWorkerPool`. Each group computes against a
:class:`~repro.simcost.model.RecordingModel`, producing an ordered op
log — cost charges interleaved (in exact serial charge order) with
staged line-index / positional-map / cache / statistics operations —
plus its output batch. The driver keeps reading ahead (its own read
charges recorded the same way) and a single-threaded merge replays the
logs in canonical group order against the real structures. Replay
preserves the serial charge sequence bit-for-bit, so results, PM/cache
contents, counters *and the clock's float accumulation order* are
identical at any worker count; ``scan_workers=1`` runs the same
compute+replay path inline with no pool. The only observable
difference parallel mode can make is OS-page-cache residency left by
read-ahead when a scan is abandoned mid-stream (and, under a
capacity-limited page cache, LRU order) — never results, structures or
completed-scan counters.
"""

from __future__ import annotations

import copy
import datetime
from collections import deque
from concurrent.futures import CancelledError
from typing import Iterator

import numpy as np

from repro.errors import CSVFormatError, ExecutionError, annotate
from repro.formats.csvfmt import (
    BlockTokenizer,
    block_field_spans,
    block_span_forward,
    newline_offsets,
)
from repro.simcost.model import RecordingModel
from repro.sql.batch import ColumnBatch


class _KernelBailout:
    """Sentinel a compiled scan kernel returns when a block-level
    precondition fails; the caller falls back to the generic block
    path. Defined here (not in :mod:`repro.kernels`) so the format
    accesses can compare against it without an import cycle."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "KERNEL_BAILOUT"


#: the one bailout instance; compared by identity at the call sites
KERNEL_BAILOUT = _KernelBailout()

_NO = -1  # unknown position sentinel (absolute-offset arrays)
_NO_POS = -1  # sentinel used inside PM chunks (relative offsets)


def _with_row_number(exc: CSVFormatError, row0: int) -> CSVFormatError:
    """Resolve a block-relative ``row_in_block`` annotation (from the
    vectorized tokenizer, which never sees absolute rows) into the
    absolute ``row_number`` — setdefault semantics, the innermost
    annotation wins."""
    row_in_block = exc.context.get("row_in_block")
    if row_in_block is not None:
        annotate(exc, row_number=row0 + row_in_block)
    return exc

#: families whose text form NumPy can parse column-wise via ``astype``
_NUMERIC_DTYPES = {"int": np.int64, "float": np.float64}


def _decode_numeric_column(buf_arr: np.ndarray, starts: np.ndarray,
                           ends: np.ndarray, dtype) -> np.ndarray | None:
    """Parse variable-width numeric fields in one vectorized shot:
    gather the fields into a fixed-width byte matrix, view it as a
    fixed-length bytes array and ``astype`` it. Returns None when any
    field defeats NumPy's parser (the caller falls back to Python,
    which also covers >64-bit ints and ``1_0``-style literals)."""
    widths = ends - starts
    max_width = int(widths.max()) if len(widths) else 0
    if max_width == 0 or max_width > 64:
        return None
    offsets = starts[:, None] + np.arange(max_width)
    valid = offsets < ends[:, None]
    matrix = np.where(valid,
                      buf_arr[np.minimum(offsets, len(buf_arr) - 1)],
                      0).astype(np.uint8)
    fields = np.ascontiguousarray(matrix).view(f"S{max_width}").ravel()
    try:
        return fields.astype(dtype)
    except (ValueError, OverflowError):
        return None


class _Column:
    """One attribute's values over one block.

    The canonical storage is ``typed`` — a dtype-tagged array (int64 /
    float64, int32 day numbers for cache-served dates, bool) covering
    every *materialized* row — with an object-array view (``values``,
    None where absent/NULL) built lazily only when a consumer needs
    Python objects (stats sampling, row-closure fallbacks, date
    output). When typed assembly is impossible (NULLs, strings, mixed
    sources) the object array is the storage and ``typed`` is None.
    ``conv_idx``/``conv_values`` track the subset converted from the
    raw file this query (the cache-write set); ``conv_typed`` is that
    subset as a dtype-tagged array when the ``astype`` fast path
    produced one — the cache's bulk insert consumes it directly, so
    streaming groups can skip the object-list round-trip entirely."""

    __slots__ = ("n", "family", "nulls", "typed", "conv_idx",
                 "conv_values", "conv_typed", "_values", "_materialized")

    def __init__(self, n: int, family: str = "?"):
        self.n = n
        self.family = family
        self.nulls = np.zeros(n, dtype=bool)
        self.typed: np.ndarray | None = None
        self.conv_idx: np.ndarray | None = None   # block-relative rows
        self.conv_values: list | None = None
        self.conv_typed: np.ndarray | None = None
        self._values: np.ndarray | None = None
        #: rows actually holding data (None = all); typed slots outside
        #: this mask are garbage and must not be decoded
        self._materialized: np.ndarray | None = None

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            out = np.empty(self.n, dtype=object)
            if self.typed is not None:
                mask = self._materialized
                rows = (np.arange(self.n) if mask is None
                        else np.flatnonzero(mask))
                if len(rows):
                    raw = self.typed[rows]
                    if self.family == "date":
                        decoded = [datetime.date.fromordinal(v)
                                   for v in raw.tolist()]
                    else:
                        decoded = raw.tolist()
                    out[rows] = decoded
            self._values = out
        return self._values

    def set_values(self, values: np.ndarray) -> None:
        self._values = values


class BatchCsvScan:
    """One batch-mode scan over one raw CSV table.

    Mirrors the two regions of the scalar scan: the *indexed region*
    (line spans known to the positional map — processed strictly
    block-wise) and the *streaming region* (unseen tail — read
    sequentially, lines discovered vectorized, processed in row-block
    groups)."""

    def __init__(self, access, out_attrs, where_attrs, union_attrs,
                 predicate, collector, kernel=None):
        self.access = access
        self.model = access.model
        self.config = access.config
        self.schema = access.schema
        self.arity = access.schema.arity
        self.dialect = access.dialect
        self.pm = access.pm
        self.cache = access.cache
        self.out_attrs = out_attrs
        self.where_attrs = where_attrs
        self.union_attrs = union_attrs
        self.predicate = predicate
        self.collector = collector
        self._families = access._families
        self._dtypes = access._dtypes
        #: compiled scan kernel (repro.kernels.KernelProgram) or None;
        #: its entry points charge the exact priced events the generic
        #: paths below charge, in the same order.
        self.kernel = kernel

    # ------------------------------------------------------------------
    def run(self, handle) -> Iterator[ColumnBatch]:
        # Freeze the indexed/streaming split for the whole scan: a
        # concurrent scan (another cursor on the same table) may grow
        # the positional map while this generator is live, and
        # re-reading the span between regions would skip the rows the
        # other scan just indexed.
        spanned = self.access._rows_with_known_span()
        yield from self._indexed_region(handle, spanned)
        yield from self._streaming_region(handle, spanned)

    # ------------------------------------------------------------------
    # Column conversion (shared by both regions)
    # ------------------------------------------------------------------
    def _convert_values(self, attr: int, buf, buf_base: int,
                        starts: np.ndarray, ends: np.ndarray,
                        want_list: bool = True,
                        ) -> tuple[list | None, np.ndarray]:
        """Convert the fields at ``starts``/``ends`` (absolute offsets
        into ``buf`` based at ``buf_base``) to binary values. Returns
        ``(values, typed_or_None)``; conversion cost is charged here,
        one call per column slice. ``want_list=False`` lets the caller
        skip the object-list materialization when the typed fast path
        succeeds (``values`` comes back None then) — consumers that
        only need arrays (vector predicates, typed cache inserts) never
        pay the per-row ``tolist`` walk."""
        n = len(starts)
        family = self._families[attr]
        self.model.convert(family, n)
        rel_starts = starts - buf_base
        rel_ends = ends - buf_base
        dtype = self._dtypes[attr]
        np_dtype = _NUMERIC_DTYPES.get(family)
        if np_dtype is not None and n:
            widths = rel_ends - rel_starts
            empties = widths == 0
            buf_arr = np.frombuffer(buf, dtype=np.uint8)
            if empties.any():
                typed = None
                if not empties.all():
                    present = ~empties
                    sub = _decode_numeric_column(
                        buf_arr, rel_starts[present], rel_ends[present],
                        np_dtype)
                    if sub is not None:
                        values = [None] * n
                        for slot, value in zip(np.flatnonzero(present),
                                               sub.tolist()):
                            values[slot] = value
                        return values, None
                else:
                    return [None] * n, None
            else:
                typed = _decode_numeric_column(buf_arr, rel_starts,
                                               rel_ends, np_dtype)
                if typed is not None:
                    return (typed.tolist() if want_list else None), typed
        # Fallback / non-numeric: one tight per-field loop mirroring the
        # scalar ``_convert`` exactly (empty non-string -> NULL).
        values = []
        view = memoryview(buf)
        parse = dtype.parse
        is_str = family == "str"
        for s, e in zip(rel_starts.tolist(), rel_ends.tolist()):
            text = bytes(view[s:e]).decode("utf-8", "replace")
            if not text and not is_str:
                values.append(None)
                continue
            try:
                values.append(parse(text))
            except Exception as exc:
                raise annotate(
                    CSVFormatError(
                        f"cannot parse {text!r} as "
                        f"{self._dtypes[attr].name} (attribute "
                        f"{self.schema.columns[attr].name})"),
                    column=self.schema.columns[attr].name) from exc
        return values, None

    @staticmethod
    def _null_mask(values: list) -> np.ndarray:
        return np.fromiter((v is None for v in values), dtype=bool,
                           count=len(values))

    # ------------------------------------------------------------------
    # Predicate evaluation
    # ------------------------------------------------------------------
    def _evaluate_predicate(self, columns: dict[int, _Column],
                            n: int) -> np.ndarray:
        """Qualifying mask over the block; one aggregated cost charge."""
        predicate = self.predicate
        self.model.predicate(predicate.n_terms * n)
        if predicate.vector_fn is not None:
            # Typed arrays where available (int/float, int-day dates
            # served from the typed cache); object arrays otherwise —
            # the widened vectorizer handles both.
            arrays = {}
            nulls = {}
            for attr in self.where_attrs:
                column = columns[attr]
                arrays[attr] = (column.typed if column.typed is not None
                                else column.values)
                nulls[attr] = column.nulls
            return predicate.vector_fn(arrays, nulls, n)
        fn = predicate.fn
        where_attrs = self.where_attrs
        cols = [columns[attr].values for attr in where_attrs]
        mask = np.zeros(n, dtype=bool)
        for i in range(n):
            values = {attr: col[i] for attr, col in zip(where_attrs, cols)}
            mask[i] = fn(values) is True
        return mask

    # ==================================================================
    # Indexed region
    # ==================================================================
    def _indexed_region(self, handle, spanned: int) -> Iterator[ColumnBatch]:
        if spanned == 0:
            return
        block_size = self.config.row_block_size
        row = 0
        while row < spanned:
            block = row // block_size
            block_end = min((block + 1) * block_size, spanned)
            batch = self._process_indexed_block(handle, block, row,
                                                block_end)
            if batch is not None:
                yield batch
            row = block_end

    def _process_indexed_block(self, handle, block: int, row0: int,
                               row1: int) -> ColumnBatch | None:
        kernel = self.kernel
        if kernel is not None and kernel.indexed is not None:
            batch = kernel.indexed(self, handle, block, row0, row1)
            if batch is not KERNEL_BAILOUT:
                return batch
            # The probes were side-effect-free (peek, has_line_spans):
            # the generic path below charges exactly what a kernel-less
            # scan would. The bailout event itself is zero-priced.
            self.model.kernel_bailout()
        try:
            return self._indexed_block_strict(handle, block, row0, row1)
        except CSVFormatError as exc:
            if self.access.on_error == "fail":
                raise _with_row_number(exc, row0)
            # The strict attempt flushed nothing (PM/cache writes happen
            # only at the end of a clean block) and the indexed region
            # always runs on the driver thread, so its partial charges
            # stay on the clock deterministically; redo row by row.
            return self._indexed_block_tolerant(handle, block, row0, row1)

    def _indexed_block_strict(self, handle, block: int, row0: int,
                              row1: int) -> ColumnBatch | None:
        model = self.model
        n = row1 - row0
        union_attrs = self.union_attrs
        attr_index_on = self.config.enable_positional_map
        model.tuple_overhead(n)

        spans = self.pm.line_spans_block(row0, row1)
        if spans is None:
            # The map lost spans this scan froze at start (DROP TABLE,
            # drop_auxiliary, or a budget eviction of the line index
            # under a live scan): fail cleanly instead of unpacking
            # None — a re-run plans against the current catalog.
            raise ExecutionError(
                f"line spans for rows {row0}..{row1} vanished from the "
                "positional map mid-scan (table dropped or map torn "
                "down under a live query); re-run the query")
        starts, ends = spans

        # -- prefetch cache blocks and positional columns
        cached: dict[int, object] = {}
        cmask: dict[int, np.ndarray] = {}
        if self.cache is not None:
            for attr in union_attrs:
                cache_block = self.cache.get(attr, block)
                cached[attr] = cache_block
                cmask[attr] = (cache_block.mask_array(n)
                               if cache_block is not None
                               else np.zeros(n, dtype=bool))
        else:
            for attr in union_attrs:
                cached[attr] = None
                cmask[attr] = np.zeros(n, dtype=bool)
        positions: dict[int, np.ndarray] = {}
        if attr_index_on:
            prefetch_attrs = set(union_attrs)
            for attr in union_attrs:
                prefetch_attrs.add(attr + 1)
                lo, hi = self.pm.nearest_indexed(block, attr)
                if lo is not None:
                    prefetch_attrs.add(lo)
                if hi is not None:
                    prefetch_attrs.add(hi)
            for attr in sorted(prefetch_attrs):
                if 0 <= attr < self.arity:
                    column = self.pm.positions(block, attr)
                    if column is not None:
                        positions[attr] = column

        # -- block state shared by both phases
        state = _IndexedBlockState(self, n, starts, ends, positions)

        # -- phase W: rows whose WHERE attributes are not fully cached
        where_attrs = self.where_attrs
        out_attrs = self.out_attrs
        if where_attrs:
            need_file = np.zeros(n, dtype=bool)
            for attr in where_attrs:
                need_file |= ~cmask[attr]
        else:
            need_file = np.zeros(n, dtype=bool)
        state.read_rows(handle, need_file)
        state.touched = need_file.copy()

        columns: dict[int, _Column] = {}
        for attr in where_attrs:
            columns[attr] = self._materialize_column(
                state, attr, cached[attr], cmask[attr], ~cmask[attr])
            model.cache_read(int(cmask[attr].sum()))

        if self.predicate is not None:
            qual = self._evaluate_predicate(columns, n)
        else:
            qual = np.ones(n, dtype=bool)

        collector = self.collector
        if collector is not None and where_attrs:
            # Scalar loop-1 adds: failing rows always; qualifying rows
            # too when there are no SELECT attributes (and those rows
            # are re-sampled by the loop-2 pass below, as in the scalar
            # path).
            where_cols = [columns[attr].values for attr in where_attrs]
            for i in range(n):
                if qual[i] and out_attrs:
                    continue
                collector.add_row({attr: col[i] for attr, col
                                   in zip(where_attrs, where_cols)})

        # -- phase S: bytes for qualifying rows missing SELECT attrs
        if out_attrs:
            missing_any = np.zeros(n, dtype=bool)
            for attr in out_attrs:
                missing_any |= ~cmask[attr]
            need_sel = qual & ~state.touched & missing_any
            if need_sel.any():
                state.read_rows(handle, need_sel)
                state.touched |= need_sel

        out_columns: list = []
        out_nulls: list = []
        qual_idx = np.flatnonzero(qual)
        nqual = len(qual_idx)
        for attr in out_attrs:
            column = columns.get(attr)
            if column is None:
                column = self._materialize_column(
                    state, attr, cached[attr], cmask[attr],
                    qual & ~cmask[attr])
                columns[attr] = column
            model.cache_read(int((cmask[attr] & qual).sum()))
            arr, mask = self._output_column(column, qual_idx)
            out_columns.append(arr)
            out_nulls.append(mask)
        model.tuple_form(len(out_attrs) * nqual)

        if collector is not None:
            self._collect_indexed_stats(columns, qual_idx)

        # -- flush PM / cache accumulators (whole chunks)
        if attr_index_on:
            state.flush_positions(block)
        if self.cache is not None:
            for attr in union_attrs:
                column = columns.get(attr)
                if column is not None and column.conv_idx is not None \
                        and len(column.conv_idx):
                    self.cache.put_column(attr, block, n, column.conv_idx,
                                          column.conv_values,
                                          self._families[attr])
        if nqual == 0 and out_attrs:
            return ColumnBatch([[] for _ in out_attrs], 0)
        return ColumnBatch(out_columns, nqual, out_nulls)

    def _indexed_block_tolerant(self, handle, block: int, row0: int,
                                row1: int) -> ColumnBatch:
        """Row-at-a-time redo of an indexed block after the strict
        vectorized path raised under a tolerant error policy. Reads the
        block's byte span in one shot (mostly warm — the strict attempt
        already touched it), evaluates each row with
        :meth:`RawCsvAccess.tolerant_row` and quarantines rejects
        directly (the indexed region runs on the driver thread only).
        The block forfeits its positional-map / cache / statistics
        contributions: degradation, never corruption."""
        access = self.access
        model = self.model
        spans = self.pm.line_spans_block(row0, row1)
        if spans is None:
            raise ExecutionError(
                f"line spans for rows {row0}..{row1} vanished from the "
                "positional map mid-scan (table dropped or map torn "
                "down under a live query); re-run the query")
        starts, ends = spans
        base = int(starts[0])
        blob = handle.read_at(base, int(ends[-1]) - base)
        out_attrs = self.out_attrs
        rows: list[tuple] = []
        for i in range(row1 - row0):
            line = blob[int(starts[i]) - base:int(ends[i]) - base]
            qual, out_values, reason = access.tolerant_row(
                model, line, out_attrs, self.where_attrs, self.predicate)
            if reason is not None:
                access._quarantine_row(row0 + i, line, reason)
                model.rows_rejected(1)
                continue
            if qual:
                rows.append(tuple(out_values))
        return ColumnBatch.from_rows(rows, len(out_attrs))

    @staticmethod
    def _output_column(column: _Column, qual_idx: np.ndarray):
        """One output column as ``(array, null_mask)`` for the emitted
        batch — typed when the column materialized typed (dates stay
        objects in results: day numbers are a cache/predicate format)."""
        if column.typed is not None and column.family != "date":
            return column.typed[qual_idx], None
        mask = column.nulls[qual_idx]
        return column.values[qual_idx], mask if mask.any() else None

    def _materialize_column(self, state: "_IndexedBlockState", attr: int,
                            cache_block, cmask: np.ndarray,
                            conv_mask: np.ndarray) -> _Column:
        """Assemble one attribute column: cached values where present,
        fresh conversions for ``conv_mask`` rows (spans derived via the
        positional map / incremental tokenization).

        When both sources are typed and NULL-free — the typed cache
        hands over array slices, and numeric conversion took the
        ``astype`` fast path — the column is assembled as one typed
        array with no object round-trip: warm scans hand arrays
        straight to the vectorizer."""
        n = state.n
        family = self._families[attr]
        column = _Column(n, family)
        conv_idx = np.flatnonzero(conv_mask)
        column.conv_idx = conv_idx
        conv_values: list = []
        conv_typed = None
        if len(conv_idx):
            span_starts, span_ends = state.derive_spans(attr, conv_mask)
            conv_values, conv_typed = self._convert_values(
                attr, state.buffer, state.base,
                span_starts[conv_idx], span_ends[conv_idx])
        column.conv_values = conv_values
        cached_idx = np.flatnonzero(cmask)

        # -- typed fast path
        typed_cache = (cache_block.typed_data()
                       if cache_block is not None and len(cached_idx)
                       else None)
        conv_ok = not len(conv_idx) or conv_typed is not None
        cache_ok = not len(cached_idx) or (
            typed_cache is not None
            and not typed_cache[1][cached_idx].any())
        if conv_ok and cache_ok and (len(conv_idx) or len(cached_idx)):
            if len(cached_idx):
                dtype = typed_cache[0].dtype
                if conv_typed is not None:
                    dtype = np.result_type(dtype, conv_typed.dtype)
                typed = np.zeros(n, dtype=dtype)
                typed[cached_idx] = typed_cache[0][cached_idx]
                if conv_typed is not None:
                    typed[conv_idx] = conv_typed
            else:
                typed = np.zeros(n, dtype=conv_typed.dtype)
                typed[conv_idx] = conv_typed
            column.typed = typed
            materialized = cmask | conv_mask
            if not materialized.all():
                column._materialized = materialized
            return column

        # -- object assembly
        values = np.empty(n, dtype=object)
        if len(cached_idx):
            values[cached_idx] = cache_block.values_at(cached_idx)
        if len(conv_idx):
            values[conv_idx] = conv_values
        column.set_values(values)
        column.nulls = self._null_mask(values.tolist())
        np_dtype = _NUMERIC_DTYPES.get(family)
        if np_dtype is not None and not column.nulls.any() and n:
            try:
                column.typed = values.astype(np_dtype)
            except (ValueError, TypeError, OverflowError):
                column.typed = None
        return column

    def _collect_indexed_stats(self, columns: dict[int, _Column],
                               qual_idx: np.ndarray) -> None:
        """Scalar loop-2 adds: per qualifying row, the WHERE values
        converted from file this block plus every SELECT value."""
        collector = self.collector
        where_attrs = self.where_attrs
        out_attrs = self.out_attrs
        conv_masks = {}
        for attr in where_attrs:
            column = columns[attr]
            mask = np.zeros(len(column.values), dtype=bool)
            if column.conv_idx is not None and len(column.conv_idx):
                mask[column.conv_idx] = True
            conv_masks[attr] = mask
        for i in qual_idx.tolist():
            row_values = {}
            for attr in where_attrs:
                if conv_masks[attr][i]:
                    row_values[attr] = columns[attr].values[i]
            for attr in out_attrs:
                row_values[attr] = columns[attr].values[i]
            collector.add_row(row_values)

    # ==================================================================
    # Streaming region
    # ==================================================================
    def _streaming_region(self, handle, spanned: int,
                          ) -> Iterator[ColumnBatch]:
        access = self.access
        pm = self.pm
        track = pm is not None
        if access.row_count is not None and spanned >= access.row_count:
            return
        file_size = handle.size

        if track and pm.known_line_count > spanned:
            start_offset = pm.line_start(spanned)
        elif track and spanned > 0:
            start_offset = file_size
        else:
            start_offset = 0
            spanned = 0
        if start_offset >= file_size:
            if track:
                pm.set_file_length(file_size)
            access.row_count = spanned
            access._finish_file(spanned)
            return

        pool = (self.access.pool if self.config.scan_workers > 1
                else None)
        if pool is not None:
            yield from self._stream_parallel(pool, file_size,
                                             start_offset, spanned)
        else:
            yield from self._stream_serial(handle, file_size,
                                           start_offset, spanned)

    def _stream_serial(self, handle, file_size: int, start_offset: int,
                       spanned: int) -> Iterator[ColumnBatch]:
        """The single-threaded driver: read sequentially, discover
        lines, run each row-block group inline (compute + replay)."""
        pm = self.pm
        track = pm is not None
        model = self.model
        block_size = self.config.row_block_size
        handle.seek(start_offset)
        read_size = self.config.batch_read_bytes

        row = spanned
        buffer = b""
        buffer_start = start_offset
        pending_starts: list[np.ndarray] = []
        pending_ends: list[np.ndarray] = []
        pending = 0
        newline_terminated = True
        eof = False

        while not eof:
            chunk = handle.read_sequential(read_size)
            if not chunk:
                eof = True
                carry = self._eof_carry(buffer_start + len(buffer),
                                        pending_ends, buffer_start)
                if carry is not None:
                    # Unterminated last line: treat the carry as a line.
                    newline_terminated = False
                    pending_starts.append(carry[0])
                    pending_ends.append(carry[1])
                    pending += 1
            else:
                model.newline_scan(len(chunk))
                chunk_base = buffer_start + len(buffer)
                buffer += chunk
                lines = self._chunk_lines(chunk, chunk_base,
                                          pending_ends, buffer_start)
                if lines is not None:
                    pending_starts.append(lines[0])
                    pending_ends.append(lines[1])
                    pending += len(lines[0])

            # Process complete row-blocks (or everything at EOF).
            while pending and (eof or
                               pending >= block_size - row % block_size):
                take = min(pending, block_size - row % block_size)
                group_starts, group_ends, pending_starts, pending_ends = \
                    self._take_group(pending_starts, pending_ends, take)
                pending -= take

                ops, batch, error = self._group_task(
                    row, group_starts, group_ends,
                    self._group_slice(buffer, buffer_start, group_starts,
                                      group_ends),
                    int(group_starts[0]))
                self._apply_staged(ops)
                if error is not None:
                    raise error
                row += take
                # Drop consumed bytes from the buffer.
                consumed = int(group_ends[-1]) + 1 - buffer_start
                consumed = min(consumed, len(buffer))
                if consumed > 0:
                    buffer = buffer[consumed:]
                    buffer_start += consumed
                if batch is not None:
                    yield batch

        if track:
            pm.set_file_length(file_size,
                               newline_terminated=newline_terminated)
        self.access.row_count = row
        self.access._finish_file(row)

    def _stream_parallel(self, pool, file_size: int, start_offset: int,
                         spanned: int) -> Iterator[ColumnBatch]:
        """The fan-out driver: same read/group-formation loop as
        :meth:`_stream_serial`, but groups compute on the worker pool
        while the driver reads ahead, and a merge replays each entry of
        the schedule — recorded read charges and completed groups'
        op logs — in exact serial order. Yields happen at the merge, so
        batch delivery order (and everything else observable through
        the engine) is identical to the serial driver; in-flight
        futures keep computing across yields, which is what lets
        concurrently admitted queries overlap on the shared pool."""
        config = self.config
        access = self.access
        pm = self.pm
        track = pm is not None
        block_size = config.row_block_size
        read_size = config.batch_read_bytes

        # Reads charge into a recorder so their cost replays in serial
        # order even though the driver reads ahead of the merge.
        read_rec = RecordingModel()
        rhandle = access.vfs.open(access.path, read_rec, notify=False)
        rhandle.seek(start_offset)

        depth = 2 * pool.workers          # groups in flight (read-ahead bound)
        schedule: deque = deque()         # ("r", ops) | ("g", future)
        state = {"in_flight": 0, "row": spanned, "buffer": b"",
                 "buffer_start": start_offset, "pending": 0, "eof": False,
                 "newline_terminated": True}
        pending_starts: list[np.ndarray] = []
        pending_ends: list[np.ndarray] = []

        def dispatch_groups() -> None:
            while state["pending"] and (
                    state["eof"] or state["pending"]
                    >= block_size - state["row"] % block_size):
                take = min(state["pending"],
                           block_size - state["row"] % block_size)
                group_starts, group_ends, rest_starts, rest_ends = \
                    self._take_group(pending_starts, pending_ends, take)
                pending_starts[:] = rest_starts
                pending_ends[:] = rest_ends
                state["pending"] -= take
                group_buf = self._group_slice(
                    state["buffer"], state["buffer_start"], group_starts,
                    group_ends)
                schedule.append(("g", pool.submit(
                    self._group_task, state["row"], group_starts,
                    group_ends, group_buf, int(group_starts[0]))))
                state["in_flight"] += 1
                state["row"] += take
                consumed = int(group_ends[-1]) + 1 - state["buffer_start"]
                consumed = min(consumed, len(state["buffer"]))
                if consumed > 0:
                    state["buffer"] = state["buffer"][consumed:]
                    state["buffer_start"] += consumed

        def read_more() -> None:
            chunk = rhandle.read_sequential(read_size)
            if not chunk:
                state["eof"] = True
                carry = self._eof_carry(
                    state["buffer_start"] + len(state["buffer"]),
                    pending_ends, state["buffer_start"])
                if carry is not None:
                    state["newline_terminated"] = False
                    pending_starts.append(carry[0])
                    pending_ends.append(carry[1])
                    state["pending"] += 1
            else:
                read_rec.newline_scan(len(chunk))
                chunk_base = state["buffer_start"] + len(state["buffer"])
                state["buffer"] += chunk
                lines = self._chunk_lines(chunk, chunk_base, pending_ends,
                                          state["buffer_start"])
                if lines is not None:
                    pending_starts.append(lines[0])
                    pending_ends.append(lines[1])
                    state["pending"] += len(lines[0])
            ops = read_rec.take_ops()
            if ops:
                schedule.append(("r", ops))
            dispatch_groups()

        try:
            while True:
                while not state["eof"] and state["in_flight"] < depth:
                    read_more()
                if not schedule:
                    break
                kind, payload = schedule.popleft()
                if kind == "r":
                    self._apply_staged(payload)
                    continue
                try:
                    ops, batch, error = payload.result()
                except CancelledError:
                    # CancelledError is a BaseException and would
                    # escape the scheduler's error containment,
                    # leaking the job's admission slot.
                    raise ExecutionError(
                        "scan worker pool was shut down while this "
                        "parallel scan was streaming (engine.close() "
                        "during a live query); re-run the query"
                    ) from None
                state["in_flight"] -= 1
                self._apply_staged(ops)
                if error is not None:
                    raise error
                if batch is not None:
                    yield batch
        finally:
            # Abandoned scan (or an error raised above): drop the
            # unmerged tail. Their staged deltas are never applied, so
            # structures hold exactly the merged prefix — as after an
            # abandoned serial scan at the same batch boundary.
            for kind, payload in schedule:
                if kind == "g":
                    payload.cancel()

        if track:
            pm.set_file_length(
                file_size,
                newline_terminated=state["newline_terminated"])
        access.row_count = state["row"]
        access._finish_file(state["row"])

    # -- shared read-loop arithmetic (both drivers must stay in
    #    lockstep; the subtle index derivations live only here) --------
    @staticmethod
    def _chunk_lines(chunk: bytes, chunk_base: int,
                     pending_ends: list, buffer_start: int):
        """Line spans completed by one freshly read chunk: newline
        discovery plus start derivation — the first new line begins
        after the last pending newline, or at the head of the
        unconsumed buffer. Returns ``(starts, ends)`` or None when the
        chunk closed no line."""
        nls = newline_offsets(chunk) + chunk_base
        if not len(nls):
            return None
        line_ends = nls
        line_starts = np.empty_like(line_ends)
        line_starts[1:] = line_ends[:-1] + 1
        line_starts[0] = (int(pending_ends[-1][-1]) + 1 if pending_ends
                          else buffer_start)
        return line_starts, line_ends

    @staticmethod
    def _eof_carry(end_of_data: int, pending_ends: list,
                   buffer_start: int):
        """Unterminated-last-line carry at EOF: single-line
        ``(starts, ends)`` arrays, or None when the data ends exactly
        at a newline."""
        carry_start = (int(pending_ends[-1][-1]) + 1 if pending_ends
                       else buffer_start)
        if end_of_data <= carry_start:
            return None
        return (np.array([carry_start], dtype=np.int64),
                np.array([end_of_data], dtype=np.int64))

    @staticmethod
    def _take_group(pending_starts: list, pending_ends: list, take: int):
        """Split the first ``take`` pending lines off as one group.
        Returns ``(group_starts, group_ends, rest_starts, rest_ends)``
        with the rests already re-wrapped as pending lists."""
        starts_arr = np.concatenate(pending_starts)
        ends_arr = np.concatenate(pending_ends)
        rest_starts = starts_arr[take:]
        rest_ends = ends_arr[take:]
        return (starts_arr[:take], ends_arr[:take],
                [rest_starts] if len(rest_starts) else [],
                [rest_ends] if len(rest_ends) else [])

    @staticmethod
    def _group_slice(buffer: bytes, buffer_start: int,
                     starts: np.ndarray, ends: np.ndarray) -> bytes:
        """The byte window covering one group's lines. Workers tokenize
        their private slice; delimiter/boundary lookups are clipped per
        line, so spans for in-group lines are identical to tokenizing
        the whole buffer."""
        return buffer[int(starts[0]) - buffer_start:
                      int(ends[-1]) - buffer_start]

    def _group_task(self, row0: int, starts: np.ndarray,
                    ends: np.ndarray, buffer: bytes, buffer_base: int):
        """One pool task: compute a streaming group against a recording
        model. Returns ``(ops, batch, error)``; never raises, so the
        merge can replay the charges recorded before a failure (exactly
        what the serial path would have charged) and then re-raise in
        canonical order. Runs on worker threads: touches no shared
        engine state, only its private byte slice and the recorder."""
        recorder = RecordingModel()
        view = copy.copy(self)
        view.model = recorder
        kernel = self.kernel
        try:
            if kernel is not None and kernel.stream is not None:
                batch = kernel.stream(view, recorder.ops, row0, starts,
                                      ends, buffer, buffer_base)
            else:
                batch = view._compute_stream_group(recorder.ops, row0,
                                                   starts, ends, buffer,
                                                   buffer_base)
            return recorder.ops, batch, None
        except CSVFormatError as exc:
            if self.access.on_error == "fail":
                return recorder.ops, None, _with_row_number(exc, row0)
            # Tolerant policy: discard the strict attempt's op log
            # entirely (its charges must not replay — the redo prices
            # the whole group itself, so serial and parallel runs stay
            # bit-identical) and recompute the group row by row.
            redo = RecordingModel()
            view = copy.copy(self)
            view.model = redo
            try:
                batch = view._compute_stream_group_tolerant(
                    redo.ops, row0, starts, ends, buffer, buffer_base)
                return redo.ops, batch, None
            except Exception as redo_exc:
                return redo.ops, None, redo_exc
        except Exception as exc:  # replayed + re-raised by the merge
            return recorder.ops, None, exc

    # ------------------------------------------------------------------
    # Staged-op merge (single-threaded, canonical group order)
    # ------------------------------------------------------------------
    def _apply_staged(self, ops: list) -> None:
        """Replay one op log against the real model and structures.

        Entries are ``("c", event, units)`` charges and the staged
        structural operations, in the exact order the serial path
        would have performed them — so the clock, the positional map,
        the cache and the statistics reservoirs evolve identically."""
        model = self.model
        for op in ops:
            tag = op[0]
            if tag == "c":
                model.charge(op[1], op[2])
            elif tag == "lines":
                _, starts, row0, n = op
                known = self.pm.known_line_count
                if row0 + n > known:
                    self.pm.append_line_starts(
                        starts[max(0, known - row0):])
            elif tag == "collect":
                collector = self.collector
                for row_values in op[1]:
                    collector.add_row(row_values)
            elif tag == "pm":
                self._merge_stream_positions(op[1], op[2], op[3])
            elif tag == "rej":
                # Quarantine decided inside a worker group: the sidecar
                # write happens here, in canonical merge order (the
                # rows_rejected charge replays as an ordinary "c" op).
                self.access._quarantine_row(op[1], op[2], op[3])
            else:  # "cache"
                _, attr, block, rows_in_block, idx, values, typed, \
                    family = op
                self.cache.put_column(attr, block, rows_in_block, idx,
                                      values, family, typed_values=typed)

    def _compute_stream_group(self, ops: list, row0: int,
                              starts: np.ndarray, ends: np.ndarray,
                              buffer: bytes, buffer_base: int,
                              ) -> ColumnBatch | None:
        """Compute one group of freshly discovered lines — all within a
        single row block — staging its PM/cache/stats contributions
        into ``ops`` (shared with ``self.model``'s charge recorder)
        instead of touching the shared structures."""
        model = self.model
        pm = self.pm
        config = self.config
        n = len(starts)
        block_size = config.row_block_size
        block = row0 // block_size
        first_in_block = row0 - block * block_size
        model.tuple_overhead(n)

        # Line index: stage the bulk append (the merge trims the prefix
        # an earlier group already recorded).
        if pm is not None:
            ops.append(("lines", starts, row0, n))

        out_attrs = self.out_attrs
        where_attrs = self.where_attrs
        union_attrs = self.union_attrs
        max_where = max(where_attrs) if where_attrs else -1
        max_union = union_attrs[-1] if union_attrs else -1

        tok = BlockTokenizer(buffer, buffer_base, self.dialect)
        columns: dict[int, _Column] = {}
        span_starts = span_ends = None
        upto_w = -1
        # The scalar _RowContext locates targets lazily from the line
        # start; replay its target sequence as a state machine so the
        # batch path charges identical tokenize units and records
        # identical positions (see _stream_transitions).
        charges_w, state_w = _stream_transitions(where_attrs, self.arity)
        coverage_w = state_w[1]  # highest attr whose start a failing
        #                          (or any) row has recorded after WHERE
        if where_attrs:
            upto_w = max_where
            span_starts, span_ends, _ = block_field_spans(
                tok, starts, ends, upto_w)
            self._charge_stream_tokenize(tok, charges_w, starts, ends)
            for attr in where_attrs:
                column = _Column(n, self._families[attr])
                values, typed = self._convert_values(
                    attr, buffer, buffer_base,
                    span_starts[:, attr], span_ends[:, attr],
                    want_list=False)
                column.conv_idx = np.arange(n)
                column.conv_values = values
                column.conv_typed = typed
                if typed is not None:
                    column.typed = typed
                else:
                    arr = np.empty(n, dtype=object)
                    if n:
                        arr[:] = values
                    column.set_values(arr)
                    column.nulls = self._null_mask(values)
                columns[attr] = column

        if self.predicate is not None:
            qual = self._evaluate_predicate(columns, n)
        else:
            qual = np.ones(n, dtype=bool)
        qual_idx = np.flatnonzero(qual)
        nqual = len(qual_idx)

        # SELECT attrs: extend tokenization for qualifying rows only,
        # continuing the locate-state where the WHERE phase left it.
        sel_starts = sel_ends = None
        if out_attrs and max_union > upto_w and nqual:
            q_line_starts = starts[qual_idx]
            q_line_ends = ends[qual_idx]
            charges_s, _ = _stream_transitions(out_attrs, self.arity,
                                               state_w)
            if upto_w < 0:
                sel_starts, sel_ends, _ = block_field_spans(
                    tok, q_line_starts, q_line_ends, max_union)
            else:
                base_pos = span_starts[qual_idx, upto_w]
                steps = max_union - upto_w
                sel_starts, sel_ends, _ = block_span_forward(
                    tok, base_pos, steps, q_line_ends)
            self._charge_stream_tokenize(tok, charges_s, q_line_starts,
                                         q_line_ends)

        out_columns: list = []
        out_nulls: list = []
        for attr in out_attrs:
            existing = columns.get(attr)
            if existing is not None:
                arr, mask = self._output_column(existing, qual_idx)
                out_columns.append(arr)
                out_nulls.append(mask)
                continue
            if nqual == 0:
                column = _Column(n, self._families[attr])
                column.conv_idx = np.empty(0, dtype=np.int64)
                column.conv_values = []
                columns[attr] = column
                out_columns.append([])
                out_nulls.append(None)
                continue
            if upto_w < 0:
                s_col = sel_starts[:, attr]
                e_col = sel_ends[:, attr]
            elif attr <= upto_w:
                # An out-only attribute below the WHERE prefix: its
                # spans were already discovered in phase W.
                s_col = span_starts[qual_idx, attr]
                e_col = span_ends[qual_idx, attr]
            else:
                s_col = sel_starts[:, attr - upto_w]
                e_col = sel_ends[:, attr - upto_w]
            # Object values are only needed when the stats collector
            # will sample them; the typed cache insert and the output
            # batch consume the array directly.
            values, sub_typed = self._convert_values(
                attr, buffer, buffer_base, s_col, e_col,
                want_list=self.collector is not None)
            column = _Column(n, self._families[attr])
            if values is not None:
                arr = np.empty(n, dtype=object)
                arr[qual_idx] = values
                column.set_values(arr)
            column.conv_idx = qual_idx
            column.conv_values = values
            column.conv_typed = sub_typed
            columns[attr] = column
            if sub_typed is not None and self._families[attr] != "date":
                out_columns.append(sub_typed)
            else:
                out_columns.append(values)
            out_nulls.append(None)
        model.tuple_form(len(out_attrs) * nqual)

        if self.collector is not None:
            ops.append(("collect",
                        self._stage_stream_stats(columns, qual, n)))

        # -- stage flushes: positional map chunk, then cache chunks
        if config.enable_positional_map and pm is not None:
            rows_in_block = first_in_block + n
            staged = self._stage_stream_positions(
                block, rows_in_block, first_in_block, n, starts, ends,
                qual, span_starts, span_ends, sel_starts, upto_w,
                max_where, coverage_w)
            if staged is not None:
                ops.append(staged)
        if self.cache is not None:
            rows_in_block = first_in_block + n
            for attr in union_attrs:
                column = columns.get(attr)
                if column is None or column.conv_idx is None or \
                        not len(column.conv_idx):
                    continue
                ops.append(("cache", attr, block, rows_in_block,
                            column.conv_idx + first_in_block,
                            column.conv_values, column.conv_typed,
                            self._families[attr]))
        if nqual == 0 and out_attrs:
            return ColumnBatch([[] for _ in out_attrs], 0)
        return ColumnBatch(out_columns, nqual, out_nulls)

    def _compute_stream_group_tolerant(self, ops: list, row0: int,
                                       starts: np.ndarray,
                                       ends: np.ndarray, buffer: bytes,
                                       buffer_base: int,
                                       ) -> ColumnBatch | None:
        """Row-at-a-time redo of a streaming group whose strict
        vectorized computation raised, under a tolerant error policy
        (``on_error 'skip'`` or ``'null'``).

        Each line is re-evaluated with :meth:`RawCsvAccess.
        tolerant_row`; rejects are staged as ``("rej", row, line,
        reason)`` ops so the sidecar write happens at the merge, in
        canonical order. The group still stages its line starts (the
        line *index* is byte geometry, unaffected by malformed fields)
        but contributes nothing to the positional map, the cache or the
        statistics reservoirs — a malformed group degrades, it never
        corrupts the auxiliary structures. Like the strict compute,
        this is a pure function of the byte slice, so results and
        op logs are identical at any worker count."""
        access = self.access
        model = self.model
        n = len(starts)
        model.tuple_overhead(n)
        if self.pm is not None:
            ops.append(("lines", starts, row0, n))
        out_attrs = self.out_attrs
        rows: list[tuple] = []
        for i in range(n):
            line = buffer[int(starts[i]) - buffer_base:
                          int(ends[i]) - buffer_base]
            qual, out_values, reason = access.tolerant_row(
                model, line, out_attrs, self.where_attrs, self.predicate)
            if reason is not None:
                ops.append(("rej", row0 + i, line, reason))
                model.rows_rejected(1)
                continue
            if qual:
                rows.append(tuple(out_values))
        return ColumnBatch.from_rows(rows, len(out_attrs))

    def _charge_stream_tokenize(self, tok: BlockTokenizer, charges,
                                line_starts: np.ndarray,
                                line_ends: np.ndarray) -> None:
        """Charge exactly what the scalar path would: for each
        transition, the bytes from attr ``base``'s start through the
        delimiter ending attr ``through`` (clipped at the line end),
        summed over the rows. One aggregated model call per phase."""
        if not charges or not len(line_starts):
            return
        idx0 = tok.delim_index(line_starts)
        total = 0
        for base, through in charges:
            bound, _ = tok.boundary(idx0 + through, line_ends)
            if base == 0:
                base_start = line_starts
            else:
                prev, _ = tok.boundary(idx0 + base - 1, line_ends)
                base_start = prev + 1
            scanned = np.minimum(bound + 1, line_ends) - base_start
            total += int(np.maximum(scanned, 0).sum())
        if total:
            self.model.tokenize(total)

    def _stage_stream_stats(self, columns: dict[int, _Column],
                            qual: np.ndarray, n: int) -> list[dict]:
        """One sample dict per row in file order: WHERE values for
        failing rows, WHERE + SELECT values for qualifying ones — the
        scalar streaming sampling order. The merge feeds them to the
        collector, so the reservoir RNG sees the serial sequence."""
        where_attrs = self.where_attrs
        out_attrs = self.out_attrs
        staged = []
        for i in range(n):
            row_values = {}
            for attr in where_attrs:
                row_values[attr] = columns[attr].values[i]
            if qual[i]:
                for attr in out_attrs:
                    if attr not in row_values:
                        row_values[attr] = columns[attr].values[i]
            staged.append(row_values)
        return staged

    def _stage_stream_positions(self, block, rows_in_block, first_in_block,
                                n, line_starts, line_ends, qual,
                                span_starts, span_ends, sel_starts,
                                upto_w, max_where, coverage_w):
        """Build the block's discovered-position matrix (relative
        offsets, _NO_POS holes) as a staged ``("pm", ...)`` op; the
        merge combines it with whatever a previous group or partial
        scan already recorded and inserts it as one chunk.

        Failing rows record starts for attributes up to ``coverage_w``
        — the locate-state machine's ``M`` after the WHERE phase, which
        is ``max_where + 1`` only when the scalar path would have left
        a free (or memoized) next-attribute start; qualifying rows
        record every union attribute."""
        union_attrs = self.union_attrs
        discovered: dict[int, np.ndarray] = {}
        qual_idx = np.flatnonzero(qual)
        for attr in union_attrs:
            if attr <= 0 or attr >= self.arity:
                continue
            column = np.full(n, _NO_POS, dtype=np.int64)
            if attr <= max_where:
                column[:] = span_starts[:, attr] - line_starts
            elif attr == max_where + 1 and 0 <= max_where and \
                    coverage_w >= attr:
                # Free info: the delimiter ending the last WHERE
                # attribute is this attribute's start — on every row
                # whose field was actually delimiter-terminated.
                ends_w = span_ends[:, max_where]
                has_delim = ends_w < line_ends
                column[has_delim] = (ends_w[has_delim] + 1
                                     - line_starts[has_delim])
            if attr > max_where and sel_starts is not None and \
                    len(qual_idx):
                col_idx = attr if upto_w < 0 else attr - upto_w
                column[qual_idx] = (sel_starts[:, col_idx]
                                    - line_starts[qual_idx])
            if (column != _NO_POS).any():
                discovered[attr] = column
        if not discovered:
            return None
        attrs = sorted(discovered)
        matrix = np.full((rows_in_block, len(attrs)), _NO_POS,
                         dtype=np.int32)
        for col, attr in enumerate(attrs):
            matrix[first_in_block:, col] = discovered[attr]
        return ("pm", block, attrs, matrix)

    def _merge_stream_positions(self, block: int, attrs: list[int],
                                matrix: np.ndarray) -> None:
        """Merge a staged position matrix with what the map already
        knows for this block (an earlier group of the same block, or a
        previous partial scan) and insert it as one chunk."""
        rows_in_block = matrix.shape[0]
        for col, attr in enumerate(attrs):
            existing = self.pm.positions(block, attr)
            if existing is None:
                continue
            overlap = min(len(existing), rows_in_block)
            column = matrix[:overlap, col]
            unknown = column == _NO_POS
            column[unknown] = existing[:overlap][unknown]
        self.pm.insert_chunk(tuple(attrs), block, matrix)


# ---------------------------------------------------------------------------
# Streaming-region tokenization helpers
# ---------------------------------------------------------------------------
def _stream_transitions(targets, arity, state=(-1, 0)):
    """Replay the scalar ``_RowContext._locate`` target sequence for a
    fresh streaming row (``known_starts = {0: 0}``).

    The scalar context's per-row state is fully characterized by two
    integers: ``S`` — the highest attribute whose full span has been
    memoized — and ``M`` — the highest attribute whose *start* is known
    (``M`` is ``S`` or ``S + 1``; the latter when a forward step left a
    free next-attribute start). Since every streaming row starts from
    the same state and the branch taken depends only on (S, M), the
    whole block shares one transition sequence.

    Returns ``(charges, (S, M))`` where each charge ``(base, through)``
    says the scalar path would call span_forward from attr ``base``'s
    start and scan through the delimiter ending attr ``through`` —
    exactly the tokenize units to replicate, and ``M`` is the highest
    attribute position a row of this phase has recorded (the
    positional-map flush rule)."""
    S, M = state
    charges: list[tuple[int, int]] = []
    for t in targets:
        if t <= S:
            continue  # span memoized: no work
        if t == S + 1 and t == M:
            # Start known (free info) but span not: the scalar context
            # tokenizes one step forward, memoizing t and t+1.
            if t == arity - 1:
                S = M = t  # last attribute: span ends at line end, free
            else:
                charges.append((t, t + 1))
                S = M = t + 1
        else:
            # Start unknown: tokenize forward from the nearest known
            # start (M), recording a free next-attribute start.
            charges.append((M, t))
            S = t
            M = t + 1 if t + 1 < arity else t
    return charges, (S, M)


# ---------------------------------------------------------------------------
# Indexed-region block state: bytes, positions, span derivation
# ---------------------------------------------------------------------------
class _IndexedBlockState:
    """Byte window + known-position matrix for one indexed block.

    ``K`` maps attr -> absolute start-offset array (``_NO`` holes),
    seeded from the positional map's prefetched columns; every position
    discovered while deriving spans is recorded back into it — the
    vectorized equivalent of ``_RowContext.known_starts`` — and flushed
    as one chunk at the end of the block."""

    def __init__(self, scan: BatchCsvScan, n: int, starts: np.ndarray,
                 ends: np.ndarray, positions: dict[int, np.ndarray]):
        self.scan = scan
        self.model = scan.model
        self.n = n
        self.line_starts = starts
        self.line_ends = ends
        self.positions = positions
        self.base = int(starts[0])
        self.buffer = bytearray(int(ends[-1]) - self.base)
        self.got_bytes = np.zeros(n, dtype=bool)
        self.touched = np.zeros(n, dtype=bool)
        self._tok: BlockTokenizer | None = None
        self.K: dict[int, np.ndarray] = {0: starts.copy()}
        for attr, rel in positions.items():
            if attr == 0:
                continue
            col = np.full(n, _NO, dtype=np.int64)
            m = min(len(rel), n)
            rel_part = np.asarray(rel[:m], dtype=np.int64)
            known = rel_part != _NO_POS
            col[:m][known] = starts[:m][known] + rel_part[known]
            self.K[attr] = col

    # -- bytes ----------------------------------------------------------
    def read_rows(self, handle, mask: np.ndarray) -> None:
        """Read the byte span covering every flagged row not yet loaded
        (one sequential read, as the scalar ``_read_runs``)."""
        needed = np.flatnonzero(mask & ~self.got_bytes)
        if not len(needed):
            return
        first, last = int(needed[0]), int(needed[-1])
        byte_start = int(self.line_starts[first])
        byte_end = int(self.line_ends[last])
        blob = handle.read_at(byte_start, byte_end - byte_start)
        lo = byte_start - self.base
        self.buffer[lo:lo + len(blob)] = blob
        self.got_bytes[needed] = True
        self._tok = None  # delimiter index is stale

    def tokenizer(self) -> BlockTokenizer:
        if self._tok is None:
            self._tok = BlockTokenizer(bytes(self.buffer), self.base,
                                       self.scan.dialect)
        return self._tok

    # -- known-position bookkeeping ------------------------------------
    def _kcol(self, attr: int) -> np.ndarray | None:
        return self.K.get(attr)

    def _set_k(self, attr: int, idxs: np.ndarray, values: np.ndarray,
               ) -> None:
        if attr >= self.scan.arity or not len(idxs):
            return
        col = self.K.get(attr)
        if col is None:
            col = np.full(self.n, _NO, dtype=np.int64)
            self.K[attr] = col
        col[idxs] = values

    def _nearest_below(self, attr: int, idxs: np.ndarray,
                       ) -> tuple[np.ndarray, np.ndarray]:
        lo_attr = np.zeros(len(idxs), dtype=np.int64)
        lo_pos = self.line_starts[idxs].copy()
        remaining = np.ones(len(idxs), dtype=bool)
        for j in range(attr - 1, 0, -1):
            if not remaining.any():
                break
            col = self.K.get(j)
            if col is None:
                continue
            vals = col[idxs]
            hit = remaining & (vals != _NO)
            lo_attr[hit] = j
            lo_pos[hit] = vals[hit]
            remaining &= ~hit
        return lo_attr, lo_pos

    def _nearest_above(self, attr: int, idxs: np.ndarray,
                       ) -> tuple[np.ndarray, np.ndarray]:
        hi_attr = np.full(len(idxs), _NO, dtype=np.int64)
        hi_pos = np.full(len(idxs), _NO, dtype=np.int64)
        remaining = np.ones(len(idxs), dtype=bool)
        for j in range(attr + 1, self.scan.arity):
            if not remaining.any():
                break
            col = self.K.get(j)
            if col is None:
                continue
            vals = col[idxs]
            hit = remaining & (vals != _NO)
            hi_attr[hit] = j
            hi_pos[hit] = vals[hit]
            remaining &= ~hit
        return hi_attr, hi_pos

    # -- span derivation (§4.2 incremental tokenization, vectorized) ----
    def derive_spans(self, attr: int,
                     row_mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Absolute (start, end) spans of ``attr`` for ``row_mask``
        rows, derived from the nearest known attribute per row —
        forward or backward, whichever is closer — with every position
        discovered along the way recorded into ``K``."""
        n = self.n
        arity = self.scan.arity
        model = self.model
        starts_out = np.full(n, _NO, dtype=np.int64)
        ends_out = np.full(n, _NO, dtype=np.int64)
        ka = self.K.get(attr)
        if ka is None:
            ka = np.full(n, _NO, dtype=np.int64)
        known = row_mask & (ka != _NO)
        unknown = row_mask & (ka == _NO)

        if unknown.any():
            idxs = np.flatnonzero(unknown)
            lo_attr, lo_pos = self._nearest_below(attr, idxs)
            hi_attr, hi_pos = self._nearest_above(attr, idxs)
            go_back = (hi_attr != _NO) & ((hi_attr - attr) < (attr - lo_attr))
            if go_back.any():
                self._derive_backward(attr, idxs[go_back],
                                      hi_attr[go_back], hi_pos[go_back],
                                      starts_out, ends_out)
            fwd = ~go_back
            if fwd.any():
                self._derive_forward(attr, idxs[fwd], lo_attr[fwd],
                                     lo_pos[fwd], starts_out, ends_out)
            self._set_k(attr, idxs, starts_out[idxs])

        if known.any():
            idxs = np.flatnonzero(known)
            pos = ka[idxs]
            starts_out[idxs] = pos
            if attr == arity - 1:
                ends_out[idxs] = self.line_ends[idxs]
            else:
                kn = self.K.get(attr + 1)
                if kn is not None:
                    have_next = kn[idxs] != _NO
                else:
                    have_next = np.zeros(len(idxs), dtype=bool)
                if have_next.any():
                    sub = idxs[have_next]
                    ends_out[sub] = self.K[attr + 1][sub] - 1
                need_end = idxs[~have_next]
                if len(need_end):
                    tok = self.tokenizer()
                    sub_pos = ka[need_end]
                    line_ends = self.line_ends[need_end]
                    di = tok.delim_index(sub_pos)
                    bounds, is_delim = tok.boundary(di, line_ends)
                    if not is_delim.all():
                        raise CSVFormatError(
                            "line ended while tokenizing attribute "
                            f"{attr + 1} of {arity}")
                    ends_out[need_end] = bounds
                    model.tokenize(
                        int((np.minimum(bounds + 1, line_ends)
                             - sub_pos).sum()))
                    self._set_k(attr + 1, need_end, bounds + 1)
        return starts_out, ends_out

    def _derive_forward(self, attr, idxs, lo_attr, lo_pos, starts_out,
                        ends_out) -> None:
        tok = self.tokenizer()
        arity = self.scan.arity
        line_ends = self.line_ends[idxs]
        ib = tok.delim_index(lo_pos)
        steps = attr - lo_attr                       # >= 1 per row
        prev_bounds, prev_is_delim = tok.boundary(ib + steps - 1,
                                                  line_ends)
        if not prev_is_delim.all():
            raise CSVFormatError(
                f"ran out of attributes scanning forward to {attr}")
        starts_out[idxs] = prev_bounds + 1
        end_bounds, end_is_delim = tok.boundary(ib + steps, line_ends)
        ends_out[idxs] = end_bounds
        self.model.tokenize(
            int((np.minimum(end_bounds + 1, line_ends) - lo_pos).sum()))
        # Record positions discovered along the way (attrs between the
        # base and the target) and the free next-attribute start.
        for j in self.scan.union_attrs:
            if j >= attr or j <= 0:
                continue
            traversed = lo_attr < j
            if not traversed.any():
                continue
            sub = idxs[traversed]
            bj, isdj = tok.boundary(ib[traversed] + (j - 1 - lo_attr[traversed]),
                                    line_ends[traversed])
            good = isdj
            self._set_k(j, sub[good], bj[good] + 1)
        if attr + 1 < arity:
            good = end_is_delim
            self._set_k(attr + 1, idxs[good], end_bounds[good] + 1)

    def _derive_backward(self, attr, idxs, hi_attr, hi_pos, starts_out,
                         ends_out) -> None:
        tok = self.tokenizer()
        line_starts = self.line_starts[idxs]
        ib = tok.delim_index(hi_pos)
        first_idx = tok.delim_index(line_starts)
        steps = hi_attr - attr                       # >= 1 per row
        end_idx = ib - steps
        if (end_idx < first_idx).any():
            raise CSVFormatError(
                f"ran out of attributes scanning backward to {attr}")
        end_bounds = tok.delims[end_idx]
        ends_out[idxs] = end_bounds
        prev_idx = end_idx - 1
        has_prev = prev_idx >= first_idx
        prev = np.where(has_prev,
                        tok.delims[np.maximum(prev_idx, 0)],
                        line_starts - 1)
        starts_out[idxs] = prev + 1
        self.model.tokenize(int((hi_pos - (prev + 1)).sum()))
        # Intermediate attrs between target and base, discovered free.
        for j in self.scan.union_attrs:
            if j <= attr or j <= 0:
                continue
            traversed = hi_attr > j
            if not traversed.any():
                continue
            sub = idxs[traversed]
            j_idx = ib[traversed] - (hi_attr[traversed] - j) - 1
            ok = j_idx >= first_idx[traversed]
            pos = np.where(ok, tok.delims[np.maximum(j_idx, 0)] + 1,
                           line_starts[traversed])
            self._set_k(j, sub, pos)

    # -- flush ----------------------------------------------------------
    def flush_positions(self, block: int) -> None:
        """Insert the block's discovered positions as one chunk whose
        vertical group is the query's attribute combination, skipping
        attributes with nothing new (scalar ``_flush_positions``
        semantics exactly)."""
        scan = self.scan
        n = self.n
        touched = self.touched
        if not touched.any():
            return
        discovered: dict[int, np.ndarray] = {}
        for attr in scan.union_attrs:
            if attr <= 0 or attr >= scan.arity:
                continue
            col = self.K.get(attr)
            if col is None:
                continue
            out = np.full(n, _NO_POS, dtype=np.int32)
            have = touched & (col != _NO)
            out[have] = (col[have] - self.line_starts[have]).astype(np.int32)
            if (out != _NO_POS).any():
                discovered[attr] = out
        group = []
        for attr in sorted(discovered):
            already = self.positions.get(attr)
            column = discovered[attr]
            if already is not None:
                prior = np.full(n, _NO_POS, dtype=np.int32)
                m = min(len(already), n)
                prior[:m] = already[:m]
                merged = np.where(column == _NO_POS, prior, column)
                new_known = int((merged != _NO_POS).sum())
                old_known = int((prior != _NO_POS).sum())
                if new_known <= old_known:
                    continue
                discovered[attr] = merged
            group.append(attr)
        if not group:
            return
        matrix = np.column_stack([discovered[attr] for attr in group])
        scan.pm.insert_chunk(tuple(group), block, matrix)
