"""The PostgresRaw binary cache (§4.3).

Holds previously converted (binary) values so future queries can skip
both raw-file access and data-type conversion. Organized like the
positional map — per attribute, per row block — "such that it is easy to
integrate it in the PostgresRaw query flow". Blocks may be *partial*
("a previously accessed attribute or even parts of an attribute"):
selective parsing converts only qualifying tuples, and the cache keeps a
validity mask per block.

Eviction is LRU with **conversion-cost priority**: "the PostgresRaw
cache always gives priority to attributes more costly to convert", so
cheap-to-reconvert families (strings) are evicted before expensive ones
(dates, floats, ints).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.simcost.model import CostModel

#: Per-value byte footprint by type family (strings measured per value).
_FIXED_BYTES = {"int": 8, "float": 8, "date": 4, "bool": 1}


def _value_bytes(family: str, value) -> int:
    if family in _FIXED_BYTES:
        return _FIXED_BYTES[family]
    return len(value) + 1 if isinstance(value, str) else 8


@dataclass
class CacheBlock:
    """Converted values of one attribute over one row block."""

    family: str
    values: list = field(default_factory=list)
    mask: bytearray = field(default_factory=bytearray)
    bytes_used: int = 0

    @property
    def complete(self) -> bool:
        return bool(self.mask) and all(self.mask)

    @property
    def filled(self) -> int:
        return sum(self.mask)

    def get(self, row_in_block: int):
        """``(present, value)`` for a row — present=False means a miss."""
        if row_in_block < len(self.mask) and self.mask[row_in_block]:
            return True, self.values[row_in_block]
        return False, None

    def mask_array(self, nrows: int) -> np.ndarray:
        """The validity mask as a boolean array padded/truncated to
        ``nrows`` — the batch scan's whole-block presence test."""
        mask = np.frombuffer(bytes(self.mask), dtype=np.uint8).astype(bool)
        if len(mask) >= nrows:
            return mask[:nrows]
        out = np.zeros(nrows, dtype=bool)
        out[:len(mask)] = mask
        return out


class BinaryCache:
    """LRU cache of :class:`CacheBlock` keyed by ``(attr, block)``."""

    def __init__(self, model: CostModel, budget_bytes: int | None = None):
        self.model = model
        self.budget_bytes = budget_bytes
        self._blocks: OrderedDict[tuple[int, int], CacheBlock] = OrderedDict()
        self._bytes = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, attr: int, block: int) -> CacheBlock | None:
        """The cache block for ``(attr, block)``, refreshing LRU order.

        Reading values out of the block is charged by the caller via
        ``model.cache_read`` — only it knows how many values it uses.
        """
        cache_block = self._blocks.get((attr, block))
        if cache_block is None:
            self.misses += 1
            return None
        self.hits += 1
        self._blocks.move_to_end((attr, block))
        return cache_block

    def put(self, attr: int, block: int, rows_in_block: int,
            entries: list[tuple[int, object]], family: str) -> None:
        """Merge converted values into the block.

        ``entries`` is a list of ``(row_in_block, value)``. Values already
        present are left untouched (they are equal by construction — the
        file has not changed; updates invalidate whole tables instead).
        """
        if not entries:
            return
        key = (attr, block)
        cache_block = self._blocks.get(key)
        if cache_block is None:
            cache_block = CacheBlock(
                family=family,
                values=[None] * rows_in_block,
                mask=bytearray(rows_in_block),
            )
            self._blocks[key] = cache_block
        elif len(cache_block.mask) < rows_in_block:
            # The block grew (file append, §4.5): widen in place.
            grow = rows_in_block - len(cache_block.mask)
            cache_block.values.extend([None] * grow)
            cache_block.mask.extend(bytearray(grow))
        added = 0
        for row_in_block, value in entries:
            if row_in_block >= rows_in_block:
                raise StorageError(
                    f"row {row_in_block} outside block of {rows_in_block}")
            if cache_block.mask[row_in_block]:
                continue
            cache_block.values[row_in_block] = value
            cache_block.mask[row_in_block] = 1
            delta = _value_bytes(family, value)
            cache_block.bytes_used += delta
            self._bytes += delta
            added += 1
        if added:
            self.model.cache_write(added)
        self._blocks.move_to_end(key)
        self._enforce_budget()

    def put_column(self, attr: int, block: int, rows_in_block: int,
                   row_indexes, values, family: str) -> None:
        """Whole-chunk insert for the batch scan: merge ``values`` at
        ``row_indexes`` (block-relative, ascending) in one operation —
        no per-row dict updates, one cost charge.

        Byte accounting and merge semantics match per-entry
        :meth:`put` exactly (rows already present are left untouched).
        """
        n = len(row_indexes)
        if n == 0:
            return
        key = (attr, block)
        cache_block = self._blocks.get(key)
        if cache_block is None:
            cache_block = CacheBlock(
                family=family,
                values=[None] * rows_in_block,
                mask=bytearray(rows_in_block),
            )
            self._blocks[key] = cache_block
        elif len(cache_block.mask) < rows_in_block:
            grow = rows_in_block - len(cache_block.mask)
            cache_block.values.extend([None] * grow)
            cache_block.mask.extend(bytearray(grow))
        if int(row_indexes[-1]) >= rows_in_block:
            raise StorageError(
                f"row {int(row_indexes[-1])} outside block of "
                f"{rows_in_block}")
        block_values = cache_block.values
        block_mask = cache_block.mask
        added = 0
        added_bytes = 0
        fixed = _FIXED_BYTES.get(family)
        for idx, value in zip(row_indexes, values):
            idx = int(idx)
            if block_mask[idx]:
                continue
            block_values[idx] = value
            block_mask[idx] = 1
            added += 1
            if fixed is None:
                added_bytes += _value_bytes(family, value)
        if added:
            if fixed is not None:
                added_bytes = added * fixed
            cache_block.bytes_used += added_bytes
            self._bytes += added_bytes
            self.model.cache_write(added)
        self._blocks.move_to_end(key)
        self._enforce_budget()

    # ------------------------------------------------------------------
    def _enforce_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self._bytes > self.budget_bytes and self._blocks:
            self._evict_one()

    def _evict_one(self) -> None:
        """Evict the least-valuable block: cheapest conversion family
        first (strings before ints before floats/dates), LRU within a
        family."""
        victim_key = None
        victim_rate = None
        for key in self._blocks:  # OrderedDict: LRU -> MRU
            rate = self._family_rate(self._blocks[key].family)
            if victim_rate is None or rate < victim_rate:
                victim_key = key
                victim_rate = rate
        block = self._blocks.pop(victim_key)
        self._bytes -= block.bytes_used
        self.evictions += 1

    def _family_rate(self, family: str) -> float:
        profile = self.model.profile
        return {
            "str": profile.convert_str,
            "bool": profile.convert_int,
            "int": profile.convert_int,
            "float": profile.convert_float,
            "date": profile.convert_date,
        }.get(family, profile.convert_str)

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        return self._bytes

    def utilization(self) -> float:
        """Fraction of the budget in use (Fig 6's right axis); 0 when the
        budget is unlimited and the cache is empty."""
        if self.budget_bytes:
            return self._bytes / self.budget_bytes
        return 1.0 if self._bytes else 0.0

    def invalidate_attr(self, attr: int) -> None:
        stale = [key for key in self._blocks if key[0] == attr]
        for key in stale:
            self._bytes -= self._blocks.pop(key).bytes_used

    def clear(self) -> None:
        self._blocks.clear()
        self._bytes = 0
