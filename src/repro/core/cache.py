"""The PostgresRaw binary cache (§4.3) with typed block storage.

Holds previously converted (binary) values so future queries can skip
both raw-file access and data-type conversion. Organized like the
positional map — per attribute, per row block — "such that it is easy to
integrate it in the PostgresRaw query flow". Blocks may be *partial*
("a previously accessed attribute or even parts of an attribute"):
selective parsing converts only qualifying tuples, and the cache keeps a
validity mask per block.

Fixed-width families store their values as dtype-tagged NumPy arrays —
``int64`` ints, ``float64`` floats, ``bool`` booleans, and ``int32``
*day numbers* for dates — with a separate NULL submask (a cached NULL
is distinct from an uncached hole). Warm batch scans read these arrays
straight into the vectorizer with no list round-trip; the date
comparison terms understand day numbers natively. Variable-width
strings keep Python list storage.

Byte-footprint accounting is honest: a typed block costs what its
backing array allocates (``arr.nbytes``, charged at creation/growth,
independent of how many rows are filled); string blocks cost ``len +
1`` per cached value as before.

Eviction is LRU with **conversion-cost priority**: "the PostgresRaw
cache always gives priority to attributes more costly to convert", so
cheap-to-reconvert families (strings) are evicted before expensive ones
(dates, floats, ints).
"""

from __future__ import annotations

import datetime
from collections import OrderedDict

import numpy as np

from repro.errors import StorageError
from repro.simcost.model import CostModel

#: NumPy storage dtype per fixed-width family (dates as ordinal days).
_TYPED_DTYPES = {
    "int": np.int64,
    "float": np.float64,
    "date": np.int32,
    "bool": np.bool_,
}


def _value_bytes(family: str, value) -> int:
    """Per-value footprint of variable-width (list-stored) families."""
    return len(value) + 1 if isinstance(value, str) else 8


def _encode(family: str, value):
    if family == "date" and isinstance(value, datetime.date):
        return value.toordinal()
    return value


def _decode(family: str, value):
    if family == "date":
        return datetime.date.fromordinal(int(value))
    if isinstance(value, np.generic):
        return value.item()
    return value


class CacheBlock:
    """Converted values of one attribute over one row block.

    ``mask`` marks *cached* rows; for typed families ``nulls`` marks
    the cached rows whose value is SQL NULL (the array slot holds
    garbage there). List-stored families keep ``None`` in-band.
    """

    __slots__ = ("family", "_data", "_mask", "_nulls", "bytes_used")

    def __init__(self, family: str, values=None, mask=None):
        self.family = family
        nrows = len(values) if values is not None else 0
        dtype = _TYPED_DTYPES.get(family)
        if dtype is not None:
            self._data = np.zeros(nrows, dtype=dtype)
            self._nulls = np.zeros(nrows, dtype=bool)
            self.bytes_used = self._data.nbytes
        else:
            self._data = [None] * nrows
            self._nulls = None
            self.bytes_used = 0
        self._mask = np.zeros(nrows, dtype=bool)
        if mask is not None:
            m = min(len(mask), nrows)
            self._mask[:m] = np.frombuffer(bytes(mask[:m]),
                                           dtype=np.uint8).astype(bool) \
                if isinstance(mask, (bytes, bytearray)) \
                else np.asarray(mask[:m], dtype=bool)
        if values is not None:
            for row in np.flatnonzero(self._mask).tolist():
                self._set(row, values[row])

    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return len(self._mask)

    @property
    def mask(self) -> np.ndarray:
        return self._mask

    @property
    def complete(self) -> bool:
        return len(self._mask) > 0 and bool(self._mask.all())

    @property
    def filled(self) -> int:
        return int(self._mask.sum())

    @property
    def values(self) -> list:
        """The block as a plain Python list (``None`` where uncached or
        NULL) — the structural-dump / straggler-consumer view."""
        if isinstance(self._data, list):
            return list(self._data)
        out: list = [None] * len(self._mask)
        present = self._mask if self._nulls is None \
            else (self._mask & ~self._nulls)
        rows = np.flatnonzero(present)
        if len(rows):
            family = self.family
            raw = self._data[rows]
            if family == "date":
                decoded = [datetime.date.fromordinal(v)
                           for v in raw.tolist()]
            else:
                decoded = raw.tolist()
            for row, value in zip(rows.tolist(), decoded):
                out[row] = value
        return out

    def values_at(self, rows: np.ndarray) -> list:
        """The cached values at ``rows`` as Python objects (None where
        uncached or NULL) — decodes only the requested subset, unlike
        the whole-block :attr:`values` view."""
        row_list = rows.tolist() if isinstance(rows, np.ndarray) else rows
        if isinstance(self._data, list):
            return [self._data[i] for i in row_list]
        mask = self._mask
        nulls = self._nulls
        raw = self._data[row_list].tolist()
        family = self.family
        out = []
        for i, value in zip(row_list, raw):
            if not mask[i] or (nulls is not None and nulls[i]):
                out.append(None)
            elif family == "date":
                out.append(datetime.date.fromordinal(value))
            else:
                out.append(value)
        return out

    def typed_data(self) -> tuple[np.ndarray, np.ndarray] | None:
        """``(data, nulls)`` arrays for typed families (None for list
        storage). ``data`` holds garbage at uncached/NULL rows; dates
        are ordinal day numbers — the form the vectorizer's date terms
        compare against directly."""
        if isinstance(self._data, list):
            return None
        nulls = self._nulls if self._nulls is not None \
            else np.zeros(len(self._mask), dtype=bool)
        return self._data, nulls

    def consistent(self) -> bool:
        """Internal-geometry invariant: mask, data and (typed) nulls
        agree on the row count. A block violating this (corrupted in
        place, or a failed partial mutation) cannot be read safely —
        the cache treats it as absent and rebuilds from the raw file."""
        nrows = len(self._mask)
        if isinstance(self._data, list):
            return len(self._data) == nrows and self._nulls is None
        return (self._nulls is not None
                and len(self._data) == nrows
                and len(self._nulls) == nrows)

    def get(self, row_in_block: int):
        """``(present, value)`` for a row — present=False means a miss."""
        if row_in_block < len(self._mask) and self._mask[row_in_block]:
            if isinstance(self._data, list):
                return True, self._data[row_in_block]
            if self._nulls is not None and self._nulls[row_in_block]:
                return True, None
            return True, _decode(self.family, self._data[row_in_block])
        return False, None

    def mask_array(self, nrows: int) -> np.ndarray:
        """The validity mask as a boolean array padded/truncated to
        ``nrows`` — the batch scan's whole-block presence test."""
        mask = self._mask
        if len(mask) >= nrows:
            return mask[:nrows].copy()
        out = np.zeros(nrows, dtype=bool)
        out[:len(mask)] = mask
        return out

    # ------------------------------------------------------------------
    def _set(self, row: int, value) -> None:
        """Store one value (no merge check, no byte accounting)."""
        self._mask[row] = True
        if isinstance(self._data, list):
            self._data[row] = value
            return
        if value is None:
            self._nulls[row] = True
            return
        self._nulls[row] = False
        try:
            self._data[row] = _encode(self.family, value)
        except (OverflowError, ValueError):
            # A value the typed dtype cannot hold (e.g. an int beyond
            # int64 — the scan's Python parse fallback produces them):
            # demote this block to object-list storage. The block keeps
            # its allocation-based byte estimate; correctness over
            # footprint precision for this rare shape.
            self._demote()
            self._data[row] = value

    def _demote(self) -> None:
        """Switch from typed-array to object-list storage in place."""
        self._data = self.values
        self._nulls = None

    def _bulk_set(self, rows: np.ndarray, typed_values: np.ndarray,
                  ) -> int | None:
        """Vectorized merge of non-NULL typed values at ``rows``
        (rows already cached are left untouched, as in the per-value
        path). Returns the number of rows newly cached, or None when
        this block cannot take the fast path (demoted object-list
        storage, or a dtype the block does not hold)."""
        data = self._data
        if isinstance(data, list) or data.dtype != typed_values.dtype:
            return None
        rows = np.asarray(rows)
        new = ~self._mask[rows]
        if not new.any():
            return 0
        idx = rows[new]
        data[idx] = typed_values[new]
        self._nulls[idx] = False
        self._mask[idx] = True
        return int(new.sum())

    def _grow(self, nrows: int) -> int:
        """Widen to ``nrows`` rows (file append, §4.5); returns the
        byte-footprint delta."""
        grow = nrows - len(self._mask)
        if grow <= 0:
            return 0
        self._mask = np.concatenate(
            [self._mask, np.zeros(grow, dtype=bool)])
        if isinstance(self._data, list):
            self._data.extend([None] * grow)
            return 0
        before = self._data.nbytes
        self._data = np.concatenate(
            [self._data, np.zeros(grow, dtype=self._data.dtype)])
        self._nulls = np.concatenate(
            [self._nulls, np.zeros(grow, dtype=bool)])
        delta = self._data.nbytes - before
        self.bytes_used += delta
        return delta


class BinaryCache:
    """LRU cache of :class:`CacheBlock` keyed by ``(attr, block)``."""

    def __init__(self, model: CostModel, budget_bytes: int | None = None):
        self.model = model
        self.budget_bytes = budget_bytes
        self._blocks: OrderedDict[tuple[int, int], CacheBlock] = OrderedDict()
        self._bytes = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, attr: int, block: int) -> CacheBlock | None:
        """The cache block for ``(attr, block)``, refreshing LRU order.

        Reading values out of the block is charged by the caller via
        ``model.cache_read`` — only it knows how many values it uses.
        """
        cache_block = self._blocks.get((attr, block))
        if cache_block is None:
            self.misses += 1
            return None
        if not cache_block.consistent():
            # Self-healing: a corrupted block is quarantined (dropped,
            # counted) and the caller re-converts from the raw file —
            # the cache is a safe-to-lose accelerator, never a source
            # of wrong answers or crashes.
            self._blocks.pop((attr, block))
            self._bytes -= cache_block.bytes_used
            self.model.aux_rebuild(1)
            self.misses += 1
            return None
        self.hits += 1
        self._blocks.move_to_end((attr, block))
        return cache_block

    def peek(self, attr: int, block: int) -> CacheBlock | None:
        """Side-effect-free probe: like :meth:`get` but without touching
        the hit/miss counters or LRU order. Compiled scan kernels use it
        to test their fast-path preconditions — a bailout must leave the
        cache byte-identical to a scan that never probed. A block that
        fails its consistency check reads as absent (quarantined later
        by the strict path's :meth:`get`)."""
        cache_block = self._blocks.get((attr, block))
        if cache_block is not None and not cache_block.consistent():
            return None
        return cache_block

    def _block_for(self, attr: int, block: int, rows_in_block: int,
                   family: str) -> CacheBlock:
        key = (attr, block)
        cache_block = self._blocks.get(key)
        if cache_block is None:
            cache_block = CacheBlock(family, [None] * rows_in_block)
            self._blocks[key] = cache_block
            self._bytes += cache_block.bytes_used
        elif cache_block.nrows < rows_in_block:
            # The block grew (file append, §4.5): widen in place.
            self._bytes += cache_block._grow(rows_in_block)
        return cache_block

    def put(self, attr: int, block: int, rows_in_block: int,
            entries: list[tuple[int, object]], family: str) -> None:
        """Merge converted values into the block.

        ``entries`` is a list of ``(row_in_block, value)``. Values already
        present are left untouched (they are equal by construction — the
        file has not changed; updates invalidate whole tables instead).
        """
        if not entries:
            return
        cache_block = self._block_for(attr, block, rows_in_block, family)
        mask = cache_block.mask
        added = 0
        added_bytes = 0
        per_value = family not in _TYPED_DTYPES
        for row_in_block, value in entries:
            if row_in_block >= rows_in_block:
                raise StorageError(
                    f"row {row_in_block} outside block of {rows_in_block}")
            if mask[row_in_block]:
                continue
            cache_block._set(row_in_block, value)
            added += 1
            if per_value:
                added_bytes += _value_bytes(family, value)
        if added:
            if per_value:
                cache_block.bytes_used += added_bytes
                self._bytes += added_bytes
            self.model.cache_write(added)
        self._blocks.move_to_end((attr, block))
        self._enforce_budget()

    def put_column(self, attr: int, block: int, rows_in_block: int,
                   row_indexes, values, family: str,
                   typed_values: np.ndarray | None = None) -> None:
        """Whole-chunk insert for the batch scan: merge ``values`` at
        ``row_indexes`` (block-relative, ascending) in one operation —
        no per-row dict updates, one cost charge.

        Byte accounting and merge semantics match per-entry
        :meth:`put` exactly (rows already present are left untouched).

        ``typed_values`` is the same column as a dtype-tagged NumPy
        array (no NULLs — the scan's ``astype`` fast path only succeeds
        on fully present numeric slices): when the target block holds
        typed storage of that dtype the merge is one vectorized masked
        assignment, and ``values`` may then be None (the parallel scan
        skips the object-list round-trip entirely). Content, byte
        accounting and the ``cache_write`` charge are identical either
        way; demoted blocks fall back to the per-value loop.
        """
        n = len(row_indexes)
        if n == 0:
            return
        if int(row_indexes[-1]) >= rows_in_block:
            raise StorageError(
                f"row {int(row_indexes[-1])} outside block of "
                f"{rows_in_block}")
        cache_block = self._block_for(attr, block, rows_in_block, family)
        added = None
        if typed_values is not None:
            added = cache_block._bulk_set(row_indexes, typed_values)
        if added is None:
            if values is None:
                values = typed_values.tolist()
            mask = cache_block.mask
            added = 0
            added_bytes = 0
            per_value = family not in _TYPED_DTYPES
            for idx, value in zip(row_indexes, values):
                idx = int(idx)
                if mask[idx]:
                    continue
                cache_block._set(idx, value)
                added += 1
                if per_value:
                    added_bytes += _value_bytes(family, value)
            if added and per_value:
                cache_block.bytes_used += added_bytes
                self._bytes += added_bytes
        if added:
            self.model.cache_write(added)
        self._blocks.move_to_end((attr, block))
        self._enforce_budget()

    # ------------------------------------------------------------------
    def _enforce_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self._bytes > self.budget_bytes and self._blocks:
            self._evict_one()

    def _evict_one(self) -> None:
        """Evict the least-valuable block: cheapest conversion family
        first (strings before ints before floats/dates), LRU within a
        family."""
        victim_key = None
        victim_rate = None
        for key in self._blocks:  # OrderedDict: LRU -> MRU
            rate = self._family_rate(self._blocks[key].family)
            if victim_rate is None or rate < victim_rate:
                victim_key = key
                victim_rate = rate
        block = self._blocks.pop(victim_key)
        self._bytes -= block.bytes_used
        self.evictions += 1

    def _family_rate(self, family: str) -> float:
        profile = self.model.profile
        return {
            "str": profile.convert_str,
            "bool": profile.convert_int,
            "int": profile.convert_int,
            "float": profile.convert_float,
            "date": profile.convert_date,
        }.get(family, profile.convert_str)

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        return self._bytes

    def utilization(self) -> float:
        """Fraction of the budget in use (Fig 6's right axis); 0 when the
        budget is unlimited and the cache is empty."""
        if self.budget_bytes:
            return self._bytes / self.budget_bytes
        return 1.0 if self._bytes else 0.0

    def invalidate_attr(self, attr: int) -> None:
        stale = [key for key in self._blocks if key[0] == attr]
        for key in stale:
            self._bytes -= self._blocks.pop(key).bytes_used

    def clear(self) -> None:
        self._blocks.clear()
        self._bytes = 0
