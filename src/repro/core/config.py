"""PostgresRaw configuration knobs.

Defaults follow the paper's prototype: positional map, cache and
statistics all enabled, unlimited budgets (the experiments that sweep
budgets set them explicitly), 1024-row horizontal chunks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import BudgetError
from repro.formats.csvfmt import DEFAULT_DIALECT, CsvDialect


def _default_scan_workers() -> int:
    """Default worker count for parallel chunk scans: the
    ``REPRO_SCAN_WORKERS`` environment variable (used by the CI matrix
    to run the whole suite under parallel scans), else 1 — the serial
    pipeline, byte-identical to the pre-parallel behavior. Unusable
    values (non-integers, or anything below 1) fall back to serial
    rather than making every config construction raise."""
    try:
        return max(1, int(os.environ.get("REPRO_SCAN_WORKERS", "1")))
    except ValueError:
        return 1


def _default_scan_kernels() -> bool:
    """Default for compiled scan kernels: the ``REPRO_SCAN_KERNELS``
    environment variable (the CI matrix runs a kernels-off leg so the
    generic batch pipeline stays a living oracle), else on. ``0``,
    ``false`` and ``off`` disable; anything else enables."""
    return os.environ.get("REPRO_SCAN_KERNELS", "1").strip().lower() not in (
        "0", "false", "off")


def _default_fault_seed() -> int | None:
    """Default fault-injection seed: the ``REPRO_FAULT_SEED``
    environment variable (the CI fault leg sets it so the chaos suite
    and differential modules run against injected I/O faults), else
    None — no fault injection. Unusable values fall back to None rather
    than making every config construction raise."""
    raw = os.environ.get("REPRO_FAULT_SEED", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


@dataclass
class PostgresRawConfig:
    """Tuning knobs for a PostgresRaw engine instance.

    Attributes
    ----------
    enable_positional_map / enable_cache / enable_statistics:
        Feature switches for the Fig 5 / Fig 12 ablations.
    pm_budget_bytes:
        Storage threshold for the positional map (§4.2 Maintenance);
        ``None`` = unlimited. LRU eviction keeps the map within budget.
    pm_spill_enabled / pm_spill_path:
        When enabled, chunks evicted from the map are written to the VFS
        under ``pm_spill_path`` instead of discarded, and can be read
        back at I/O cost (§4.2 Maintenance, second paragraph).
    cache_budget_bytes:
        Storage threshold for the binary cache (§4.3); ``None`` =
        unlimited. LRU with conversion-cost priority.
    row_block_size:
        Rows per horizontal chunk — the unit of PM chunking, caching and
        prefetching. "Each chunk fits comfortably in the CPU caches."
    eager_prefix_indexing:
        §4.2 Map Population: "if a query requires attributes in positions
        10 and 15, all positions from 1 to 15 may be kept". When True,
        every attribute tokenized on the way to a requested one is also
        added to the map (as part of the query's chunk group).
    index_new_combinations:
        §4.2 Adaptive Behavior: index a query's attribute combination as
        a new vertical chunk when its attributes currently live in
        different chunks.
    stats_sample_target:
        Reservoir size per column for on-the-fly statistics (§4.4).
    batch_mode:
        When True (the default), raw scans run the vectorized batch
        pipeline (:mod:`repro.core.scan_batch`): whole row blocks per
        step, NumPy newline/delimiter discovery, columnar selective
        parsing, vectorized predicate masks, and whole-chunk positional
        map / cache traffic. When False, scans run the original
        row-at-a-time path — retained as the differential oracle and
        for features the batch pipeline does not vectorize (eager
        prefix indexing always uses the scalar path).
    batch_read_bytes:
        Sequential read granularity of the batch streaming region
        (matches the scalar path's 256 KiB so I/O cost accounting is
        comparable between the two).
    scan_workers:
        Workers for the batch streaming region (OLA-RAW-style parallel
        chunk scans). ``1`` (the default) runs the serial pipeline;
        ``N > 1`` fans row-block groups out across ``N`` pool workers,
        each producing column batches plus *staged* positional-map /
        cache deltas that a single-threaded merge applies in canonical
        group order — so results, PM/cache contents and simcost
        counters are bit-identical to the serial scan at any worker
        count. Defaults to ``$REPRO_SCAN_WORKERS`` when set.
    scan_kernels:
        When True (the default), sessions attach compiled scan kernels
        (:mod:`repro.kernels`) to prepared plans: per (format, schema,
        projection, predicate-shape) signature, a specialized program
        replaces the generic per-block batch path while charging the
        exact same priced events in the same order — results, PM/cache
        contents, counters and the virtual clock are bit-identical to
        the generic pipeline, which remains the differential oracle.
        Defaults to ``$REPRO_SCAN_KERNELS`` when set.
    enable_zone_aggregates:
        Answer bare ``MIN``/``MAX``/``COUNT(*)`` on partitioned tables
        straight from per-file zone maps when every file has complete
        zones and row counts — zero bytes read. Off by default: the
        fold changes priced counters for those queries, and the
        partitioned-vs-single-file cost-parity oracle relies on
        identical charging.
    fault_seed:
        When not None, engines constructed without an explicit VFS wrap
        it in a :class:`~repro.storage.faults.FaultInjectingVFS` seeded
        here: a deterministic schedule of transient I/O errors and
        injected latency drives every read through the real retry /
        degradation machinery. Defaults to ``$REPRO_FAULT_SEED`` when
        set (the CI fault-injection leg).
    fault_rate:
        Probability (per file/block/fault-kind triple, decided by the
        seeded hash schedule — never by call order) that a fault fires.
    io_retry_limit / io_retry_backoff:
        Bounded-retry budget for transient I/O errors: up to
        ``io_retry_limit`` retries, each stalling the virtual clock by
        an exponentially growing backoff starting at
        ``io_retry_backoff`` seconds. Exhausting the budget raises a
        typed :class:`~repro.errors.IOFaultError`.
    query_deadline:
        Default per-query deadline in virtual seconds (None = no
        deadline), overridable per call via ``cursor.execute(...,
        timeout=)``. Enforced by the scheduler at batch boundaries.
    """

    enable_positional_map: bool = True
    enable_cache: bool = True
    enable_statistics: bool = True
    pm_budget_bytes: int | None = None
    pm_spill_enabled: bool = False
    pm_spill_path: str = "__pm_spill__"
    cache_budget_bytes: int | None = None
    row_block_size: int = 1024
    eager_prefix_indexing: bool = False
    index_new_combinations: bool = True
    stats_sample_target: int = 1000
    batch_mode: bool = True
    batch_read_bytes: int = 256 * 1024
    scan_workers: int = field(default_factory=_default_scan_workers)
    scan_kernels: bool = field(default_factory=_default_scan_kernels)
    enable_zone_aggregates: bool = False
    fault_seed: int | None = field(default_factory=_default_fault_seed)
    fault_rate: float = 0.05
    io_retry_limit: int = 3
    io_retry_backoff: float = 0.001
    query_deadline: float | None = None
    dialect: CsvDialect = field(default_factory=lambda: DEFAULT_DIALECT)

    def __post_init__(self) -> None:
        if self.row_block_size <= 0:
            raise BudgetError("row_block_size must be positive")
        if self.batch_read_bytes <= 0:
            raise BudgetError("batch_read_bytes must be positive")
        if self.scan_workers < 1:
            raise BudgetError("scan_workers must be >= 1")
        if self.pm_budget_bytes is not None and self.pm_budget_bytes <= 0:
            raise BudgetError("pm_budget_bytes must be positive or None")
        if self.cache_budget_bytes is not None and self.cache_budget_bytes <= 0:
            raise BudgetError("cache_budget_bytes must be positive or None")
        if self.stats_sample_target <= 0:
            raise BudgetError("stats_sample_target must be positive")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise BudgetError("fault_rate must be within [0, 1]")
        if self.io_retry_limit < 0:
            raise BudgetError("io_retry_limit must be >= 0")
        if self.io_retry_backoff < 0:
            raise BudgetError("io_retry_backoff must be >= 0")
        if self.query_deadline is not None and self.query_deadline <= 0:
            raise BudgetError("query_deadline must be positive or None")
