"""RawFitsAccess: in-situ scans over FITS binary tables (§5.3).

Binary tables need no tokenizing and no type conversion — attribute
offsets are fixed — so the positional map is unnecessary. What remains
is I/O and deserialization, which makes the binary cache the dominant
mechanism: "techniques such as caching become more important".
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.statistics import StatsCollector
from repro.formats.fits import FitsTableInfo
from repro.simcost.model import CostModel
from repro.sql.catalog import Schema, TableInfo
from repro.sql.scanapi import ScanPredicate
from repro.sql.stats import TableStats
from repro.storage.vfs import VirtualFS


class RawFitsAccess:
    """Access method for one in-situ FITS binary table."""

    def __init__(self, vfs: VirtualFS, path: str, fits: FitsTableInfo,
                 model: CostModel, config: PostgresRawConfig,
                 table_info: TableInfo, cache: BinaryCache | None):
        self.vfs = vfs
        self.path = path
        self.fits = fits
        self.model = model
        self.config = config
        self.table_info = table_info
        self.cache = cache
        self.schema: Schema = fits.schema
        self._families = [t.family for t in self.schema.types]
        self.queries_executed = 0
        #: workload knowledge for the §7 idle tuner: attr -> request count
        self.attr_request_counts: dict[int, int] = {}

    def estimated_rows(self) -> int | None:
        return self.fits.nrows

    # ------------------------------------------------------------------
    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        self.queries_executed += 1
        model = self.model
        fits = self.fits
        out_attrs = list(needed)
        where_attrs = list(predicate.attrs) if predicate else []
        union_attrs = sorted(set(out_attrs) | set(where_attrs))
        for attr in union_attrs:
            self.attr_request_counts[attr] = \
                self.attr_request_counts.get(attr, 0) + 1
        n_terms = predicate.n_terms if predicate else 0
        block_size = self.config.row_block_size
        nrows = fits.nrows
        columns = fits.columns

        collector = None
        if self.config.enable_statistics:
            existing = self.table_info.stats
            missing = [
                attr for attr in union_attrs
                if existing is None
                or not existing.has_column(self.schema.columns[attr].name)
            ]
            if missing:
                collector = StatsCollector(
                    model, self.schema, missing,
                    self.config.stats_sample_target,
                    seed=self.queries_executed)

        handle = self.vfs.open(self.path, model, notify=False)

        row = 0
        while row < nrows:
            block = row // block_size
            block_end = min((block + 1) * block_size, nrows)
            rows_in_block = block_end - row

            cached = {}
            if self.cache is not None:
                for attr in union_attrs:
                    cached[attr] = self.cache.get(attr, block)

            def covered(attr: int, idx: int) -> bool:
                cache_block = cached.get(attr)
                return bool(cache_block and idx < len(cache_block.mask)
                            and cache_block.mask[idx])

            # Read a contiguous row range for any row missing any needed
            # attribute (binary rows are fixed width: one sequential read).
            need_file = [idx for idx in range(rows_in_block)
                         if any(not covered(a, idx) for a in union_attrs)]
            row_data: dict[int, bytes] = {}
            if need_file:
                first, last = need_file[0], need_file[-1]
                start = fits.data_offset + (row + first) * fits.row_bytes
                length = (last - first + 1) * fits.row_bytes
                blob = handle.read_at(start, length)
                for idx in range(first, last + 1):
                    lo = (idx - first) * fits.row_bytes
                    row_data[idx] = blob[lo:lo + fits.row_bytes]

            cache_entries: dict[int, list] = {a: [] for a in union_attrs}

            for idx in range(rows_in_block):
                model.tuple_overhead(1)
                values: dict[int, object] = {}

                def get_value(attr: int):
                    if attr in values:
                        return values[attr]
                    cache_block = cached.get(attr)
                    if cache_block is not None:
                        present, value = cache_block.get(idx)
                        if present:
                            model.cache_read(1)
                            values[attr] = value
                            return value
                    value = columns[attr].decode(row_data[idx])
                    model.deserialize(1)
                    values[attr] = value
                    cache_entries[attr].append((idx, value))
                    return value

                if predicate is not None:
                    where_values = {a: get_value(a) for a in where_attrs}
                    model.predicate(n_terms)
                    if predicate.fn(where_values) is not True:
                        if collector is not None:
                            collector.add_row(values)
                        continue
                out = tuple(get_value(a) for a in out_attrs)
                model.tuple_form(len(out_attrs))
                if collector is not None:
                    collector.add_row(values)
                yield out

            if self.cache is not None:
                for attr, entries in cache_entries.items():
                    if entries:
                        self.cache.put(attr, block, rows_in_block, entries,
                                       self._families[attr])
            row = block_end

        if collector is not None:
            stats = self.table_info.stats or TableStats()
            collector.finalize(stats, nrows)
            self.table_info.stats = stats
        self.table_info.row_count_hint = nrows
