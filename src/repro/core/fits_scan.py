"""RawFitsAccess: in-situ scans over FITS binary tables (§5.3).

Binary tables need no tokenizing and no type conversion — attribute
offsets are fixed — so the positional map is unnecessary. What remains
is I/O and deserialization, which makes the binary cache the dominant
mechanism: "techniques such as caching become more important".

Like the CSV scan, two paths share the mechanisms: the batch path
(``config.batch_mode``, default) decodes whole column slices per row
block, evaluates predicates as masks and talks to the cache in whole
chunks; the scalar path decodes value-at-a-time and is retained as the
differential oracle.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.statistics import StatsCollector
from repro.formats.fits import FitsTableInfo
from repro.simcost.model import CostModel
from repro.sql.batch import ColumnBatch
from repro.sql.catalog import Schema, TableInfo
from repro.sql.scanapi import ScanPredicate
from repro.sql.stats import TableStats
from repro.storage.vfs import VirtualFS


class RawFitsAccess:
    """Access method for one in-situ FITS binary table."""

    def __init__(self, vfs: VirtualFS, path: str, fits: FitsTableInfo,
                 model: CostModel, config: PostgresRawConfig,
                 table_info: TableInfo, cache: BinaryCache | None):
        self.vfs = vfs
        self.path = path
        self.fits = fits
        self.model = model
        self.config = config
        self.table_info = table_info
        self.cache = cache
        self.schema: Schema = fits.schema
        self._families = [t.family for t in self.schema.types]
        self.queries_executed = 0
        #: workload knowledge for the §7 idle tuner: attr -> request count
        self.attr_request_counts: dict[int, int] = {}

    def estimated_rows(self) -> int | None:
        return self.fits.nrows

    # ------------------------------------------------------------------
    @property
    def batch_enabled(self) -> bool:
        return self.config.batch_mode

    def _scan_setup(self, needed: Sequence[int],
                    predicate: ScanPredicate | None):
        self.queries_executed += 1
        out_attrs = list(needed)
        where_attrs = list(predicate.attrs) if predicate else []
        union_attrs = sorted(set(out_attrs) | set(where_attrs))
        for attr in union_attrs:
            self.attr_request_counts[attr] = \
                self.attr_request_counts.get(attr, 0) + 1
        collector = None
        if self.config.enable_statistics:
            existing = self.table_info.stats
            missing = [
                attr for attr in union_attrs
                if existing is None
                or not existing.has_column(self.schema.columns[attr].name)
            ]
            if missing:
                collector = StatsCollector(
                    self.model, self.schema, missing,
                    self.config.stats_sample_target,
                    seed=self.queries_executed)
        handle = self.vfs.open(self.path, self.model, notify=False)
        return out_attrs, where_attrs, union_attrs, collector, handle

    def _finalize(self, collector) -> None:
        if collector is not None:
            stats = self.table_info.stats or TableStats()
            collector.finalize(stats, self.fits.nrows)
            self.table_info.stats = stats
        self.table_info.row_count_hint = self.fits.nrows

    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        if self.batch_enabled:
            for batch in self.scan_batches(needed, predicate):
                self.model.materialize_rows(batch.nrows)
                yield from batch.iter_rows()
            return
        yield from self._scan_scalar(needed, predicate)

    # ------------------------------------------------------------------
    # Batch path: whole column slices per row block
    # ------------------------------------------------------------------
    def scan_batches(self, needed: Sequence[int],
                     predicate: ScanPredicate | None,
                     ) -> Iterator[ColumnBatch]:
        out_attrs, where_attrs, union_attrs, collector, handle = \
            self._scan_setup(needed, predicate)
        model = self.model
        fits = self.fits
        block_size = self.config.row_block_size
        nrows = fits.nrows
        columns = fits.columns
        n_terms = predicate.n_terms if predicate else 0

        row = 0
        while row < nrows:
            block = row // block_size
            block_end = min((block + 1) * block_size, nrows)
            n = block_end - row
            model.tuple_overhead(n)

            cached = {}
            cmask = {}
            for attr in union_attrs:
                cache_block = (self.cache.get(attr, block)
                               if self.cache is not None else None)
                cached[attr] = cache_block
                cmask[attr] = (cache_block.mask_array(n)
                               if cache_block is not None
                               else np.zeros(n, dtype=bool))

            # One sequential read covering every row missing any
            # needed attribute (fixed-width binary rows).
            missing_any = np.zeros(n, dtype=bool)
            for attr in union_attrs:
                missing_any |= ~cmask[attr]
            row_data: dict[int, bytes] = {}
            need_idx = np.flatnonzero(missing_any)
            if len(need_idx):
                first, last = int(need_idx[0]), int(need_idx[-1])
                start = fits.data_offset + (row + first) * fits.row_bytes
                length = (last - first + 1) * fits.row_bytes
                blob = handle.read_at(start, length)
                for idx in range(first, last + 1):
                    lo = (idx - first) * fits.row_bytes
                    row_data[idx] = blob[lo:lo + fits.row_bytes]

            def column_values(attr: int, mask: np.ndarray) -> np.ndarray:
                """Values of ``attr`` for ``mask`` rows as an aligned
                object array: cache hits plus decoded misses, charged
                in bulk."""
                out = np.empty(n, dtype=object)
                hits = mask & cmask[attr]
                hit_idx = np.flatnonzero(hits)
                if len(hit_idx):
                    out[hit_idx] = cached[attr].values_at(hit_idx)
                    model.cache_read(len(hit_idx))
                miss_idx = np.flatnonzero(mask & ~cmask[attr])
                if len(miss_idx):
                    decode = columns[attr].decode
                    decoded = [decode(row_data[i])
                               for i in miss_idx.tolist()]
                    out[miss_idx] = decoded
                    model.deserialize(len(miss_idx))
                    entries[attr] = (miss_idx, decoded)
                return out

            entries: dict[int, tuple] = {}
            all_rows = np.ones(n, dtype=bool)
            values_by_attr: dict[int, np.ndarray] = {}
            for attr in where_attrs:
                values_by_attr[attr] = column_values(attr, all_rows)

            if predicate is not None:
                model.predicate(n_terms * n)
                qual = self._predicate_mask(predicate, where_attrs,
                                            values_by_attr, n)
            else:
                qual = np.ones(n, dtype=bool)
            qual_idx = np.flatnonzero(qual)

            for attr in out_attrs:
                if attr not in values_by_attr:
                    values_by_attr[attr] = column_values(attr, qual)
            out_columns = [values_by_attr[attr][qual_idx]
                           for attr in out_attrs]
            model.tuple_form(len(out_attrs) * len(qual_idx))

            if collector is not None:
                for i in range(n):
                    row_values = {attr: values_by_attr[attr][i]
                                  for attr in where_attrs}
                    if qual[i]:
                        for attr in out_attrs:
                            row_values[attr] = values_by_attr[attr][i]
                    collector.add_row(row_values)

            if self.cache is not None:
                for attr in union_attrs:
                    if attr in entries:
                        miss_idx, decoded = entries[attr]
                        self.cache.put_column(attr, block, n, miss_idx,
                                              decoded,
                                              self._families[attr])
            yield ColumnBatch(out_columns, len(qual_idx))
            row = block_end

        self._finalize(collector)

    def _predicate_mask(self, predicate, where_attrs, values_by_attr,
                        n: int) -> np.ndarray:
        if predicate.vector_fn is not None:
            # Typed arrays when a column converts cleanly; the widened
            # vectorizer takes object arrays (strings, NULL-bearing
            # numerics) in stride.
            arrays = {}
            nulls = {}
            for attr in where_attrs:
                values = values_by_attr[attr]
                null_mask = np.fromiter((v is None for v in values),
                                        dtype=bool, count=n)
                family = self._families[attr]
                typed = None
                if family in ("int", "float") and not null_mask.any():
                    try:
                        typed = values.astype(
                            np.int64 if family == "int" else np.float64)
                    except (ValueError, TypeError):
                        typed = None
                arrays[attr] = typed if typed is not None else values
                nulls[attr] = null_mask
            return predicate.vector_fn(arrays, nulls, n)
        fn = predicate.fn
        mask = np.zeros(n, dtype=bool)
        cols = [values_by_attr[attr] for attr in where_attrs]
        for i in range(n):
            values = {attr: col[i] for attr, col in zip(where_attrs, cols)}
            mask[i] = fn(values) is True
        return mask

    # ------------------------------------------------------------------
    # Scalar path (differential oracle)
    # ------------------------------------------------------------------
    def _scan_scalar(self, needed: Sequence[int],
                     predicate: ScanPredicate | None) -> Iterator[tuple]:
        out_attrs, where_attrs, union_attrs, collector, handle = \
            self._scan_setup(needed, predicate)
        model = self.model
        fits = self.fits
        block_size = self.config.row_block_size
        nrows = fits.nrows
        columns = fits.columns
        n_terms = predicate.n_terms if predicate else 0

        row = 0
        while row < nrows:
            block = row // block_size
            block_end = min((block + 1) * block_size, nrows)
            rows_in_block = block_end - row

            cached = {}
            if self.cache is not None:
                for attr in union_attrs:
                    cached[attr] = self.cache.get(attr, block)

            def covered(attr: int, idx: int) -> bool:
                cache_block = cached.get(attr)
                return bool(cache_block and idx < len(cache_block.mask)
                            and cache_block.mask[idx])

            # Read a contiguous row range for any row missing any needed
            # attribute (binary rows are fixed width: one sequential read).
            need_file = [idx for idx in range(rows_in_block)
                         if any(not covered(a, idx) for a in union_attrs)]
            row_data: dict[int, bytes] = {}
            if need_file:
                first, last = need_file[0], need_file[-1]
                start = fits.data_offset + (row + first) * fits.row_bytes
                length = (last - first + 1) * fits.row_bytes
                blob = handle.read_at(start, length)
                for idx in range(first, last + 1):
                    lo = (idx - first) * fits.row_bytes
                    row_data[idx] = blob[lo:lo + fits.row_bytes]

            cache_entries: dict[int, list] = {a: [] for a in union_attrs}

            for idx in range(rows_in_block):
                model.tuple_overhead(1)
                values: dict[int, object] = {}

                def get_value(attr: int):
                    if attr in values:
                        return values[attr]
                    cache_block = cached.get(attr)
                    if cache_block is not None:
                        present, value = cache_block.get(idx)
                        if present:
                            model.cache_read(1)
                            values[attr] = value
                            return value
                    value = columns[attr].decode(row_data[idx])
                    model.deserialize(1)
                    values[attr] = value
                    cache_entries[attr].append((idx, value))
                    return value

                if predicate is not None:
                    where_values = {a: get_value(a) for a in where_attrs}
                    model.predicate(n_terms)
                    if predicate.fn(where_values) is not True:
                        if collector is not None:
                            collector.add_row(values)
                        continue
                out = tuple(get_value(a) for a in out_attrs)
                model.tuple_form(len(out_attrs))
                if collector is not None:
                    collector.add_row(values)
                yield out

            if self.cache is not None:
                for attr, entries in cache_entries.items():
                    if entries:
                        self.cache.put(attr, block, rows_in_block, entries,
                                       self._families[attr])
            row = block_end

        self._finalize(collector)
