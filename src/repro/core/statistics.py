"""On-the-fly statistics collection (§4.4).

PostgresRaw invokes "the native statistics routines of the DBMS,
providing it with a sample of the data", only for attributes the current
query actually reads. We reproduce that with per-attribute reservoir
samplers filled during the scan; at end-of-scan the samples are folded
into the table's :class:`~repro.sql.stats.TableStats`, incrementally
augmenting whatever earlier queries collected.
"""

from __future__ import annotations

import random

from repro.simcost.model import CostModel
from repro.sql.catalog import Schema
from repro.sql.stats import ColumnStats, TableStats


class ReservoirSampler:
    """Classic reservoir sampling (Vitter's algorithm R), deterministic
    per (seed, attribute) so experiments are reproducible."""

    def __init__(self, capacity: int, seed: int = 0):
        self.capacity = capacity
        self.sample: list = []
        self.seen = 0
        self.null_count = 0
        # Exact min/max over *all* non-null values added (not just the
        # reservoir survivors): sample extremes are unsound for zone-map
        # pruning, true extremes are free to maintain.
        self.vmin = None
        self.vmax = None
        self._orderable = True
        self._rng = random.Random(seed)

    def add(self, value) -> None:
        self.seen += 1
        if value is None:
            self.null_count += 1
            return
        if self._orderable:
            try:
                if self.vmin is None or value < self.vmin:
                    self.vmin = value
                if self.vmax is None or value > self.vmax:
                    self.vmax = value
            except TypeError:
                self.vmin = self.vmax = None
                self._orderable = False
        if len(self.sample) < self.capacity:
            self.sample.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.sample[slot] = value


class StatsCollector:
    """Collects samples for a set of attributes during one scan."""

    def __init__(self, model: CostModel, schema: Schema, attrs: list[int],
                 sample_target: int = 1000, seed: int = 0):
        self.model = model
        self.schema = schema
        self.attrs = list(attrs)
        self._samplers = {
            attr: ReservoirSampler(sample_target, seed=seed * 1009 + attr)
            for attr in self.attrs
        }

    def add_row(self, values: dict[int, object]) -> None:
        """Sample the attribute values of one row (missing attrs skipped:
        selective parsing may not have converted them)."""
        for attr in self.attrs:
            if attr in values:
                self._samplers[attr].add(values[attr])
                self.model.stats_sample(1)

    def finalize(self, table_stats: TableStats, row_count: int) -> TableStats:
        """Fold the samples into ``table_stats`` (augmenting, not
        replacing, stats of attributes this scan did not touch).
        Mutations bump ``table_stats.version`` — the signal prepared
        statements use to re-plan on stats arrival."""
        table_stats.set_row_count(row_count)
        for attr, sampler in self._samplers.items():
            if sampler.seen == 0:
                continue
            name = self.schema.columns[attr].name
            column = table_stats.column(name)
            if column is None:
                column = ColumnStats(name=name)
            column.merge_sample(sampler.sample, row_count,
                                sampler.null_count, sampler.seen)
            column.observed_min = sampler.vmin
            column.observed_max = sampler.vmax
            column.observed_rows = sampler.seen
            column.observed_nulls = sampler.null_count
            table_stats.set_column(column)
        return table_stats
