"""The paper's primary contribution: PostgresRaw's in-situ machinery.

* :mod:`repro.core.positional_map` — the adaptive positional map (§4.2)
* :mod:`repro.core.cache` — the binary cache (§4.3)
* :mod:`repro.core.scan` — selective tokenize/parse/tuple-formation (§4.1)
* :mod:`repro.core.statistics` — on-the-fly statistics (§4.4)
* :mod:`repro.core.updates` — external updates / appends (§4.5)
* :mod:`repro.core.engine` — the PostgresRaw engine tying it together
"""

from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.engine import PostgresRaw
from repro.core.positional_map import PositionalMap
from repro.core.prewarm import FsInterfacePrewarmer
from repro.core.tuner import IdleTuner, TuningReport

__all__ = ["PostgresRaw", "PostgresRawConfig", "PositionalMap",
           "BinaryCache", "IdleTuner", "TuningReport",
           "FsInterfacePrewarmer"]
