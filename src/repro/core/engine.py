"""PostgresRaw: the NoDB engine (§4).

Tables are declared, never loaded: ``CREATE TABLE ... USING <format>``
(or the deprecated ``register_*`` shims over it) records the schema and
binds an in-situ access method built by the table's
:class:`~repro.formats.registry.FormatAdapter`; the first query touches
the raw file. The engine itself holds no format knowledge — it only
advertises ``in_situ_policy = "raw"`` and its config, which adapters
consult to wire per-table auxiliary structures (positional map, binary
cache, statistics participation).
"""

from __future__ import annotations

from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.parallel import ScanWorkerPool
from repro.core.positional_map import PositionalMap
from repro.core.prewarm import FsInterfacePrewarmer
from repro.engines.base import Database
from repro.errors import CatalogError
from repro.simcost.profiles import POSTGRES_RAW_PROFILE, CostProfile
from repro.storage.vfs import VirtualFS


class PostgresRaw(Database):
    """The paper's prototype: a row-store DBMS querying raw files in situ."""

    in_situ_policy = "raw"

    def __init__(self, config: PostgresRawConfig | None = None,
                 vfs: VirtualFS | None = None,
                 profile: CostProfile = POSTGRES_RAW_PROFILE):
        config = config if config is not None else PostgresRawConfig()
        if vfs is None and config.fault_seed is not None:
            # Fault-injection opt-in (config.fault_seed / the
            # REPRO_FAULT_SEED CI leg): engines that would build their
            # own private VFS get the fault-injecting one, so every
            # costed read runs the retry/degradation machinery. An
            # explicitly passed VFS is never wrapped — its faultiness
            # is the caller's decision.
            from repro.storage.faults import FaultInjectingVFS
            vfs = FaultInjectingVFS.from_config(config)
        super().__init__(profile, vfs)
        self.config = config
        self.use_statistics = self.config.enable_statistics
        #: one worker pool per engine (None when scans are serial):
        #: every raw scan fans its streaming row-block groups out here,
        #: so concurrently admitted queries overlap on the same workers
        #: (see api/scheduler.py).
        self.scan_pool = (ScanWorkerPool(self.config.scan_workers)
                          if self.config.scan_workers > 1 else None)

    def stream_block_rows(self) -> int:
        """Streaming cursors buffer at the raw scan's block granularity
        (the unit of PM chunking, caching and batch emission)."""
        return self.config.row_block_size

    def close(self) -> None:
        """Release engine resources — currently the scan worker pool's
        threads. Idempotent, and not terminal: the pool restarts lazily
        if the engine is queried again, so this is safe to call
        whenever a long-lived process is done with the engine. A query
        still streaming a parallel scan when the pool shuts down fails
        cleanly on its next fetch (ExecutionError, slot released) —
        close when the engine is quiescent to avoid that."""
        if self.scan_pool is not None:
            self.scan_pool.close()

    # ------------------------------------------------------------------
    # §7 File System Interface
    # ------------------------------------------------------------------
    def enable_fs_interface(self, table: str) -> FsInterfacePrewarmer:
        """Watch the table's raw file through the file-system layer:
        reads by *other* programs opportunistically extend the line
        index (§7 "File System Interface")."""
        info = self.catalog.get(table)
        positional_map = self.positional_map_of(table)
        if positional_map is None:
            raise CatalogError(
                f"table {info.name!r} keeps no positional map; nothing "
                "to prewarm")
        existing = info.extra.get("prewarmer")
        if existing is not None:
            return existing
        prewarmer = FsInterfacePrewarmer(self.vfs, info.path,
                                         positional_map, self.model)
        prewarmer.attach()
        info.extra["prewarmer"] = prewarmer
        return prewarmer

    def disable_fs_interface(self, table: str) -> None:
        info = self.catalog.get(table)
        prewarmer = info.extra.pop("prewarmer", None)
        if prewarmer is not None:
            prewarmer.detach()

    # ------------------------------------------------------------------
    # Introspection (used by experiments and examples)
    # ------------------------------------------------------------------
    def positional_map_of(self, table: str) -> PositionalMap | None:
        access = self.catalog.get(table).access
        return getattr(access, "pm", None)

    def cache_of(self, table: str) -> BinaryCache | None:
        access = self.catalog.get(table).access
        return getattr(access, "cache", None)

    def auxiliary_bytes(self, table: str) -> dict[str, int]:
        """Current footprint of the table's auxiliary structures."""
        positional_map = self.positional_map_of(table)
        cache = self.cache_of(table)
        return {
            "positional_map": positional_map.bytes_used if positional_map
            else 0,
            "cache": cache.bytes_used if cache else 0,
        }

    def drop_auxiliary(self, table: str) -> None:
        """Drop the table's map and cache (always safe, §4.2)."""
        positional_map = self.positional_map_of(table)
        if positional_map is not None:
            positional_map.drop()
        cache = self.cache_of(table)
        if cache is not None:
            cache.clear()
