"""PostgresRaw: the NoDB engine (§4).

Tables are registered, never loaded: ``register_csv`` / ``register_fits``
record the schema and bind an in-situ access method; the first query
touches the raw file. Each raw CSV table owns a positional map and a
binary cache (per the configuration); FITS tables own a cache.
"""

from __future__ import annotations

from repro.core.cache import BinaryCache
from repro.core.config import PostgresRawConfig
from repro.core.fits_scan import RawFitsAccess
from repro.core.parallel import ScanWorkerPool
from repro.core.positional_map import PositionalMap
from repro.core.prewarm import FsInterfacePrewarmer
from repro.core.scan import RawCsvAccess
from repro.engines.base import Database
from repro.errors import CatalogError
from repro.formats.fits import parse_fits_from_vfs
from repro.simcost.profiles import POSTGRES_RAW_PROFILE, CostProfile
from repro.sql.catalog import Schema, TableInfo, TableKind
from repro.storage.vfs import VirtualFS


class PostgresRaw(Database):
    """The paper's prototype: a row-store DBMS querying raw files in situ."""

    def __init__(self, config: PostgresRawConfig | None = None,
                 vfs: VirtualFS | None = None,
                 profile: CostProfile = POSTGRES_RAW_PROFILE):
        super().__init__(profile, vfs)
        self.config = config if config is not None else PostgresRawConfig()
        self.use_statistics = self.config.enable_statistics
        #: one worker pool per engine (None when scans are serial):
        #: every raw scan fans its streaming row-block groups out here,
        #: so concurrently admitted queries overlap on the same workers
        #: (see api/scheduler.py).
        self.scan_pool = (ScanWorkerPool(self.config.scan_workers)
                          if self.config.scan_workers > 1 else None)

    def stream_block_rows(self) -> int:
        """Streaming cursors buffer at the raw scan's block granularity
        (the unit of PM chunking, caching and batch emission)."""
        return self.config.row_block_size

    def close(self) -> None:
        """Release engine resources — currently the scan worker pool's
        threads. Idempotent, and not terminal: the pool restarts lazily
        if the engine is queried again, so this is safe to call
        whenever a long-lived process is done with the engine. A query
        still streaming a parallel scan when the pool shuts down fails
        cleanly on its next fetch (ExecutionError, slot released) —
        close when the engine is quiescent to avoid that."""
        if self.scan_pool is not None:
            self.scan_pool.close()

    # ------------------------------------------------------------------
    def register_csv(self, name: str, csv_path: str, schema: Schema,
                     ) -> TableInfo:
        """Declare an in-situ CSV table (instant: no data is touched).

        The paper's usage model (§3.1): the user declares the schema and
        marks the table as in situ; everything else is adaptive.
        """
        if not self.vfs.exists(csv_path):
            raise CatalogError(f"raw file does not exist: {csv_path!r}")
        config = self.config
        positional_map = None
        if config.enable_positional_map or config.enable_cache:
            # Cache-only mode still keeps the "minimal map" of line ends
            # (§5.1.2); attribute chunks are gated inside the scan.
            positional_map = PositionalMap(
                self.model, schema.arity,
                row_block_size=config.row_block_size,
                budget_bytes=config.pm_budget_bytes,
                spill_vfs=self.vfs if config.pm_spill_enabled else None,
                spill_prefix=f"{config.pm_spill_path}/{name.lower()}",
            )
        cache = (BinaryCache(self.model, config.cache_budget_bytes)
                 if config.enable_cache else None)
        info = TableInfo(name=name, schema=schema, kind=TableKind.RAW_CSV,
                         path=csv_path)
        info.access = RawCsvAccess(self.vfs, csv_path, schema, self.model,
                                   config, info, positional_map, cache,
                                   pool=self.scan_pool)
        self.catalog.register(info)
        return info

    # ------------------------------------------------------------------
    # §7 File System Interface
    # ------------------------------------------------------------------
    def enable_fs_interface(self, table: str) -> FsInterfacePrewarmer:
        """Watch the table's raw file through the file-system layer:
        reads by *other* programs opportunistically extend the line
        index (§7 "File System Interface")."""
        info = self.catalog.get(table)
        positional_map = self.positional_map_of(table)
        if positional_map is None:
            raise CatalogError(
                f"table {info.name!r} keeps no positional map; nothing "
                "to prewarm")
        existing = info.extra.get("prewarmer")
        if existing is not None:
            return existing
        prewarmer = FsInterfacePrewarmer(self.vfs, info.path,
                                         positional_map, self.model)
        prewarmer.attach()
        info.extra["prewarmer"] = prewarmer
        return prewarmer

    def disable_fs_interface(self, table: str) -> None:
        info = self.catalog.get(table)
        prewarmer = info.extra.pop("prewarmer", None)
        if prewarmer is not None:
            prewarmer.detach()

    def register_fits(self, name: str, fits_path: str) -> TableInfo:
        """Declare an in-situ FITS binary table. The schema comes from
        the file's own header — no user declaration needed."""
        if not self.vfs.exists(fits_path):
            raise CatalogError(f"raw file does not exist: {fits_path!r}")
        fits = parse_fits_from_vfs(self.vfs, fits_path)
        cache = (BinaryCache(self.model, self.config.cache_budget_bytes)
                 if self.config.enable_cache else None)
        info = TableInfo(name=name, schema=fits.schema,
                         kind=TableKind.RAW_FITS, path=fits_path)
        info.access = RawFitsAccess(self.vfs, fits_path, fits, self.model,
                                    self.config, info, cache)
        self.catalog.register(info)
        return info

    def add_file(self, name: str, csv_path: str, schema: Schema,
                 ) -> TableInfo:
        """§4.5: a newly added data file is immediately queryable —
        synonym for :meth:`register_csv`, kept for the paper's
        vocabulary."""
        return self.register_csv(name, csv_path, schema)

    # ------------------------------------------------------------------
    # Introspection (used by experiments and examples)
    # ------------------------------------------------------------------
    def positional_map_of(self, table: str) -> PositionalMap | None:
        access = self.catalog.get(table).access
        return getattr(access, "pm", None)

    def cache_of(self, table: str) -> BinaryCache | None:
        access = self.catalog.get(table).access
        return getattr(access, "cache", None)

    def auxiliary_bytes(self, table: str) -> dict[str, int]:
        """Current footprint of the table's auxiliary structures."""
        positional_map = self.positional_map_of(table)
        cache = self.cache_of(table)
        return {
            "positional_map": positional_map.bytes_used if positional_map
            else 0,
            "cache": cache.bytes_used if cache else 0,
        }

    def drop_auxiliary(self, table: str) -> None:
        """Drop the table's map and cache (always safe, §4.2)."""
        positional_map = self.positional_map_of(table)
        if positional_map is not None:
            positional_map.drop()
        cache = self.cache_of(table)
        if cache is not None:
            cache.clear()
