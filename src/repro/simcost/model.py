"""CostModel: the facade components use to charge events.

A model binds one :class:`VirtualClock` to one :class:`CostProfile` and
exposes intention-revealing helpers (``tokenize(n)``, ``convert(type, n)``)
so call sites read like a description of the work being done.

Batch charging convention: every helper takes a unit *count*, so the
vectorized scan pipeline charges once per row block with aggregate
units (``tuple_overhead(nrows)``, ``convert(family, ncolumn_values)``,
``predicate(n_terms * nrows)``) instead of once per row. Unit totals —
and therefore virtual time — match the per-row call pattern for I/O,
conversion, tuple, predicate, map and cache events, and for streaming
tokenization (the batch path replays the scalar locate-state machine
to charge identical units). The one permitted deviation is TOKENIZE
in the *indexed* region: the scalar context's incremental stepping
sometimes re-scans a field it already delimited, while the batch path
charges each byte span once — so warm partial-coverage scans may
charge slightly fewer tokenize units in batch mode (never more work,
and zero in both modes once the map covers the query).

Parallel chunk scans keep the convention exact: workers charge into
:class:`RecordingModel` op logs that the scan's single-threaded merge
replays against the real model in serial charge order, so counters —
and the clock's float accumulation — are independent of
``scan_workers``.
"""

from __future__ import annotations

from repro.simcost.clock import CostEvent, VirtualClock
from repro.simcost.profiles import POSTGRES_RAW_PROFILE, CostProfile

#: Maps SQL type families to their conversion event (see datatypes.py).
_CONVERT_EVENTS = {
    "int": CostEvent.CONVERT_INT,
    "float": CostEvent.CONVERT_FLOAT,
    "date": CostEvent.CONVERT_DATE,
    "str": CostEvent.CONVERT_STR,
    "bool": CostEvent.CONVERT_INT,
}


class CostModel:
    """Charges priced events against a clock.

    Parameters
    ----------
    clock:
        The engine's virtual clock; created if not supplied.
    profile:
        The calibrated price list (defaults to the PostgresRaw profile).
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        profile: CostProfile = POSTGRES_RAW_PROFILE,
    ):
        self.clock = clock if clock is not None else VirtualClock()
        self.profile = profile

    @property
    def rows_materialized(self) -> int:
        """Observability counter (NOT a priced event, NOT in the clock
        ledger): per-row Python tuples materialized from columnar
        batches at operator boundaries — scan shims transposing
        batches into rows, and operator batch paths falling back to
        row-at-a-time evaluation. Final result assembly (draining
        the plan root into a QueryResult or cursor buffer) does not
        count. In ``batch_mode`` a fully columnar plan keeps this at
        zero; it is kept out of the clock counters so batch/scalar
        cost parity assertions stay byte-identical. The storage lives
        on the shared clock so per-format models (one engine clock,
        several :class:`CostProfile` bindings) aggregate into one
        engine-level total."""
        return self.clock.rows_materialized

    @rows_materialized.setter
    def rows_materialized(self, value: int) -> None:
        self.clock.rows_materialized = value

    def charge(self, event: CostEvent, units: float = 1) -> None:
        """Charge ``units`` of an arbitrary event."""
        self.clock.charge(event, units, self.profile.rate(event))

    # -- disk ------------------------------------------------------------
    def disk_read(self, nbytes: int, warm: bool = False) -> None:
        event = CostEvent.DISK_READ_WARM if warm else CostEvent.DISK_READ_COLD
        self.charge(event, nbytes)

    def disk_seek(self, count: int = 1) -> None:
        self.charge(CostEvent.DISK_SEEK, count)

    def disk_write(self, nbytes: int) -> None:
        self.charge(CostEvent.DISK_WRITE, nbytes)

    # -- raw-file CPU work -------------------------------------------------
    def tokenize(self, nchars: int) -> None:
        self.charge(CostEvent.TOKENIZE, nchars)

    def newline_scan(self, nchars: int) -> None:
        self.charge(CostEvent.NEWLINE_SCAN, nchars)

    def convert(self, family: str, count: int = 1) -> None:
        """Charge ``count`` string->binary conversions for a type family.

        ``family`` is one of ``int``, ``float``, ``date``, ``str``, ``bool``
        (see :meth:`repro.sql.datatypes.DataType.family`).
        """
        self.charge(_CONVERT_EVENTS[family], count)

    def tuple_form(self, nattrs: int) -> None:
        self.charge(CostEvent.TUPLE_FORM, nattrs)

    # -- auxiliary structures ---------------------------------------------
    def map_access(self, npositions: int = 1) -> None:
        self.charge(CostEvent.MAP_ACCESS, npositions)

    def map_insert(self, npositions: int = 1) -> None:
        self.charge(CostEvent.MAP_INSERT, npositions)

    def cache_read(self, nvalues: int = 1) -> None:
        self.charge(CostEvent.CACHE_READ, nvalues)

    def cache_write(self, nvalues: int = 1) -> None:
        self.charge(CostEvent.CACHE_WRITE, nvalues)

    def stats_sample(self, nvalues: int = 1) -> None:
        self.charge(CostEvent.STATS_SAMPLE, nvalues)

    # -- executor -----------------------------------------------------------
    def predicate(self, count: int = 1) -> None:
        self.charge(CostEvent.PREDICATE_EVAL, count)

    def aggregate(self, count: int = 1) -> None:
        self.charge(CostEvent.AGGREGATE_STEP, count)

    def hash_probe(self, count: int = 1) -> None:
        self.charge(CostEvent.HASH_PROBE, count)

    def sort_compare(self, count: int = 1) -> None:
        self.charge(CostEvent.SORT_COMPARE, count)

    def tuple_overhead(self, count: int = 1) -> None:
        self.charge(CostEvent.TUPLE_OVERHEAD, count)

    def materialize_rows(self, count: int = 1) -> None:
        """Record ``count`` batch->tuple materializations (see
        ``rows_materialized``; free of virtual time by design)."""
        self.rows_materialized += count

    def query_overhead(self) -> None:
        self.charge(CostEvent.QUERY_OVERHEAD, 1)

    # -- partitioned tables --------------------------------------------------
    def files_scanned(self, count: int = 1) -> None:
        self.charge(CostEvent.FILES_SCANNED, count)

    def files_pruned(self, count: int = 1) -> None:
        self.charge(CostEvent.FILES_PRUNED, count)

    # -- rollup router -------------------------------------------------------
    def rollup_hit(self, count: int = 1) -> None:
        self.charge(CostEvent.ROLLUP_HITS, count)

    def rollup_miss(self, count: int = 1) -> None:
        self.charge(CostEvent.ROLLUP_MISSES, count)

    # -- compiled scan kernels -----------------------------------------------
    def kernel_hit(self, count: int = 1) -> None:
        self.charge(CostEvent.KERNEL_HITS, count)

    def kernel_compile(self, count: int = 1) -> None:
        self.charge(CostEvent.KERNEL_COMPILES, count)

    def kernel_bailout(self, count: int = 1) -> None:
        self.charge(CostEvent.KERNEL_BAILOUTS, count)

    # -- fault tolerance -----------------------------------------------------
    def io_stall(self, seconds: float) -> None:
        """Stall the virtual clock for ``seconds`` of injected I/O
        latency or transient-retry backoff (units are raw seconds)."""
        self.charge(CostEvent.IO_STALL, seconds)

    def io_retry(self, count: int = 1) -> None:
        self.charge(CostEvent.IO_RETRIES, count)

    def rows_rejected(self, count: int = 1) -> None:
        self.charge(CostEvent.ROWS_REJECTED, count)

    def aux_rebuild(self, count: int = 1) -> None:
        self.charge(CostEvent.AUX_REBUILDS, count)

    # -- scheduler / server front end ----------------------------------------
    def query_abandoned(self, count: int = 1) -> None:
        """Record ``count`` queries cancelled before their stream
        finished (zero-priced: abandoning a result must not perturb
        priced cost comparisons)."""
        self.charge(CostEvent.QUERIES_ABANDONED, count)

    # -- loaded-engine binary pages ------------------------------------------
    def deserialize(self, nattrs: int) -> None:
        self.charge(CostEvent.DESERIALIZE, nattrs)

    def toast_fetch(self, nvalues: int = 1) -> None:
        self.charge(CostEvent.TOAST_FETCH, nvalues)

    def serialize(self, nattrs: int) -> None:
        self.charge(CostEvent.SERIALIZE, nattrs)

    # -- introspection ---------------------------------------------------------
    def now(self) -> float:
        return self.clock.now()

    def count(self, event: CostEvent) -> float:
        return self.clock.count(event)


class RecordingModel(CostModel):
    """A cost model that records charges instead of advancing a clock.

    The parallel chunk-scan pipeline (:mod:`repro.core.scan_batch`)
    hands one of these to each worker: the worker's tokenize / convert /
    predicate work charges into an ordered op log (``ops``), and the
    single-threaded merge replays that log into the engine's real model
    in canonical group order — so the clock's float accumulation order,
    and therefore virtual time, is *bit-identical* to the serial scan
    regardless of worker count. Because the replay happens inside the
    owning query's batch pull, the scheduler's per-job counter-delta
    accounting attributes every worker's units to the right query with
    no extra bookkeeping.

    The op log is shared with the worker's structural staging: entries
    are ``("c", event, units)`` charge records interleaved (in exact
    serial charge order) with the staged positional-map / cache /
    statistics operations the merge applies against the shared
    structures (see ``scan_batch._apply_staged``).
    """

    def __init__(self):
        super().__init__()
        self.ops: list = []

    def charge(self, event: CostEvent, units: float = 1) -> None:
        self.ops.append(("c", event, units))

    def take_ops(self) -> list:
        """Drain and return the recorded ops (used by the scan driver
        to snapshot one read's charges into the merge schedule)."""
        ops = self.ops
        self.ops = []
        return ops
