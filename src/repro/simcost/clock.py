"""Virtual clock and cost ledger.

The clock is the single source of "time" in the library. Components
never read the wall clock; they charge events and the clock advances by
``units * rate``. The ledger keeps per-event unit counts so tests can
assert *mechanism* (e.g. selective tokenizing touched fewer characters)
independently of the calibrated prices.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field


class CostEvent(enum.Enum):
    """Every priced event in the system.

    The unit of each event is noted in parentheses.
    """

    DISK_READ_COLD = "disk_read_cold"        # bytes read missing the OS cache
    DISK_READ_WARM = "disk_read_warm"        # bytes read served by the OS cache
    DISK_SEEK = "disk_seek"                  # seeks (random repositioning)
    DISK_WRITE = "disk_write"                # bytes written
    TOKENIZE = "tokenize"                    # characters scanned for delimiters
    NEWLINE_SCAN = "newline_scan"            # characters scanned for line ends
    CONVERT_INT = "convert_int"              # string->int conversions
    CONVERT_FLOAT = "convert_float"          # string->float conversions
    CONVERT_DATE = "convert_date"            # string->date conversions
    CONVERT_STR = "convert_str"              # string field extractions
    TUPLE_FORM = "tuple_form"                # attributes placed into tuples
    MAP_ACCESS = "map_access"                # positional-map position fetches
    MAP_INSERT = "map_insert"                # positional-map position inserts
    CACHE_READ = "cache_read"                # values served from binary cache
    CACHE_WRITE = "cache_write"              # values inserted into binary cache
    PREDICATE_EVAL = "predicate_eval"        # predicate evaluations
    AGGREGATE_STEP = "aggregate_step"        # aggregate accumulator updates
    HASH_PROBE = "hash_probe"                # hash table probes (joins/aggs)
    SORT_COMPARE = "sort_compare"            # comparisons while sorting
    DESERIALIZE = "deserialize"              # binary page attr deserializations
    TOAST_FETCH = "toast_fetch"              # out-of-line (TOAST) value fetches
    SERIALIZE = "serialize"                  # binary page attr serializations
    TUPLE_OVERHEAD = "tuple_overhead"        # per-tuple executor overhead
    STATS_SAMPLE = "stats_sample"            # values sampled into statistics
    QUERY_OVERHEAD = "query_overhead"        # per-query setup (parse/plan)
    FILES_SCANNED = "files_scanned"          # partition files actually scanned
    FILES_PRUNED = "files_pruned"            # partition files skipped via zone maps
    ROLLUP_HITS = "rollup_hits"              # aggregate queries routed to a rollup
    ROLLUP_MISSES = "rollup_misses"          # aggregate queries falling back to raw
    KERNEL_HITS = "kernel_hits"              # executions served by a compiled scan kernel
    KERNEL_COMPILES = "kernel_compiles"      # scan kernels generated and compiled
    KERNEL_BAILOUTS = "kernel_bailouts"      # kernel blocks falling back to the generic path
    IO_STALL = "io_stall"                    # virtual seconds stalled on injected I/O latency / retry backoff
    ROWS_REJECTED = "rows_rejected"          # malformed raw rows quarantined under on_error skip/null
    IO_RETRIES = "io_retries"                # transient I/O errors retried by the storage layer
    AUX_REBUILDS = "aux_rebuilds"            # auxiliary structures quarantined after integrity failure
    QUERIES_ABANDONED = "queries_abandoned"  # submitted queries cancelled before their stream finished


@dataclass
class VirtualClock:
    """Accumulates virtual seconds and per-event unit counts.

    A clock belongs to one engine instance. ``checkpoint``/``elapsed_since``
    let callers time a region (e.g. a single query) without resetting.
    """

    seconds: float = 0.0
    counters: Counter = field(default_factory=Counter)
    #: Observability counter (not a priced event, not in ``counters``):
    #: per-row Python tuples materialized from columnar batches at
    #: operator boundaries. It lives on the clock — not on the
    #: :class:`~repro.simcost.model.CostModel` — so every model sharing
    #: one engine clock (e.g. per-format cost-profile models) aggregates
    #: into the same total.
    rows_materialized: int = 0

    def charge(self, event: CostEvent, units: float, rate: float) -> None:
        """Record ``units`` of ``event`` priced at ``rate`` seconds/unit."""
        if units < 0:
            raise ValueError(f"negative units for {event}: {units}")
        self.counters[event] += units
        self.seconds += units * rate

    def advance(self, seconds: float) -> None:
        """Advance the clock by a raw amount of virtual seconds."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self.seconds += seconds

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.seconds

    def checkpoint(self) -> float:
        """A point-in-time marker; pass to :meth:`elapsed_since`."""
        return self.seconds

    def elapsed_since(self, checkpoint: float) -> float:
        """Virtual seconds elapsed since ``checkpoint``."""
        return self.seconds - checkpoint

    def count(self, event: CostEvent) -> float:
        """Total units charged for ``event`` so far."""
        return self.counters.get(event, 0)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of the counters, keyed by event value."""
        return {event.value: units for event, units in self.counters.items()}

    def reset(self) -> None:
        """Zero the clock and all counters."""
        self.seconds = 0.0
        self.counters.clear()
        self.rows_materialized = 0
