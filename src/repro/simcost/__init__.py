"""Deterministic virtual-time cost accounting.

Wall-clock benchmarks of parsing speed in pure Python measure CPython,
not the system under study. Instead, every component of this library
reports the *events* it performs (bytes read, characters tokenized,
values converted, positions fetched, ...) to a :class:`VirtualClock`,
which prices them with a calibrated :class:`CostProfile`. Benchmarks
then compare deterministic virtual seconds whose *shape* tracks the
paper's figures.
"""

from repro.simcost.clock import CostEvent, VirtualClock
from repro.simcost.model import CostModel
from repro.simcost.profiles import (
    CFITSIO_PROFILE,
    CSV_ENGINE_PROFILE,
    DBMS_X_PROFILE,
    MYSQL_PROFILE,
    POSTGRESQL_PROFILE,
    POSTGRES_RAW_PROFILE,
    CostProfile,
)

__all__ = [
    "CostEvent",
    "VirtualClock",
    "CostModel",
    "CostProfile",
    "POSTGRES_RAW_PROFILE",
    "POSTGRESQL_PROFILE",
    "DBMS_X_PROFILE",
    "MYSQL_PROFILE",
    "CSV_ENGINE_PROFILE",
    "CFITSIO_PROFILE",
]
