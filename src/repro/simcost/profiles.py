"""Calibrated cost profiles.

A :class:`CostProfile` prices every :class:`~repro.simcost.clock.CostEvent`
in seconds per unit. The baseline constants approximate the paper's
testbed (Sun X4140: 4x 10k-RPM SATA RAID-0, 32 GB RAM, 2.7 GHz Opterons):

* sequential disk bandwidth ~300 MB/s cold, ~3 GB/s from the OS cache,
* ~5 ms per random seek,
* tokenizing ~0.5 G chars/s,
* string->int conversion ~25 M values/s (the paper's dominant CPU cost),
* binary page attribute deserialization several times cheaper than
  ASCII conversion.

Vendor profiles then scale a handful of knobs to encode the paper's
*stated relative behaviours* (e.g. DBMS X's executor is faster than
PostgreSQL's; MySQL's is slower), not any proprietary measurements.
Absolute numbers are irrelevant — benches assert shapes and ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simcost.clock import CostEvent

# Baseline hardware rates (seconds per unit).
_COLD_READ = 1.0 / 300e6       # 300 MB/s sequential cold read
_WARM_READ = 1.0 / 3e9         # 3 GB/s from OS page cache
_SEEK = 5e-3                   # 10k RPM random seek
_WRITE = 1.0 / 200e6           # 200 MB/s sequential write


@dataclass(frozen=True)
class CostProfile:
    """Seconds-per-unit price for every cost event."""

    name: str
    disk_read_cold: float = _COLD_READ
    disk_read_warm: float = _WARM_READ
    disk_seek: float = _SEEK
    disk_write: float = _WRITE
    tokenize: float = 2e-9
    newline_scan: float = 0.4e-9   # memchr-style scan, SIMD-fast in practice
    # PostgreSQL input functions: pg_atoi ~60ns, float8in ~150ns,
    # date_in ~250ns (parsing + validation + palloc traffic).
    convert_int: float = 60e-9
    convert_float: float = 150e-9
    convert_date: float = 250e-9
    convert_str: float = 8e-9
    tuple_form: float = 8e-9
    map_access: float = 3e-9
    map_insert: float = 4e-9
    cache_read: float = 4e-9
    cache_write: float = 6e-9
    predicate_eval: float = 10e-9
    aggregate_step: float = 15e-9
    hash_probe: float = 20e-9
    sort_compare: float = 250e-9   # tuplesort: copy + comparator + spill risk
    deserialize: float = 6e-9
    # Fetching an out-of-line (TOASTed) value: toast-index lookup, page
    # pin, copy — the §6 wide-tuple pathology of slotted-page engines.
    toast_fetch: float = 2500e-9
    serialize: float = 8e-9
    tuple_overhead: float = 500e-9
    stats_sample: float = 50e-9
    # Parse/plan time. Real engines pay ~ms here; benchmark data is
    # scaled down ~1000x from the paper's, so this is scaled likewise
    # to keep plan overhead from drowning the adaptive effects.
    query_overhead: float = 1e-4
    # Partition-pruning observability counters: free of virtual time by
    # design, so a partitioned table that prunes nothing stays cost-
    # identical to the same rows in one file.
    files_scanned: float = 0.0
    files_pruned: float = 0.0
    # Rollup-router observability counters: likewise free of virtual
    # time, so routing decisions never distort priced comparisons.
    rollup_hits: float = 0.0
    rollup_misses: float = 0.0
    # Compiled-scan-kernel observability counters: free of virtual time
    # by design, so the kernel path stays clock-identical to the generic
    # batch pipeline it specializes.
    kernel_hits: float = 0.0
    kernel_compiles: float = 0.0
    kernel_bailouts: float = 0.0
    # Injected I/O stalls (fault injection / transient-retry backoff) are
    # billed in raw virtual seconds: one unit is one second of stall.
    io_stall: float = 1.0
    # Fault-tolerance observability counters: free of virtual time so a
    # clean scan under a tolerant error policy stays cost-identical to
    # the same scan under on_error 'fail'.
    rows_rejected: float = 0.0
    io_retries: float = 0.0
    aux_rebuilds: float = 0.0
    # Scheduler observability: queries cancelled before their stream
    # finished (cursor early-close, client disconnect, session close).
    # Free of virtual time so abandoning a stream never perturbs priced
    # comparisons.
    queries_abandoned: float = 0.0

    def rate(self, event: CostEvent) -> float:
        """The price of one unit of ``event`` under this profile."""
        return getattr(self, event.value)


#: PostgresRaw shares PostgreSQL's engine (same executor constants); it
#: differs only in *what* it does (in-situ scans), not in unit prices.
POSTGRES_RAW_PROFILE = CostProfile(name="PostgresRaw")

#: Plain PostgreSQL 9.0 over loaded heap pages.
POSTGRESQL_PROFILE = CostProfile(name="PostgreSQL")

#: "DBMS X": commercial row-store; the paper reports its query executor
#: clearly faster than PostgreSQL's (PostgreSQL was 53% slower on the
#: Fig 7 sequence) but its bulk load slower.
DBMS_X_PROFILE = replace(
    POSTGRESQL_PROFILE,
    name="DBMS X",
    tuple_overhead=300e-9,
    deserialize=4e-9,
    aggregate_step=9e-9,
    predicate_eval=6e-9,
    serialize=24e-9,          # heavier loading path (indexes, page format)
    convert_int=140e-9,       # load-time conversion cost is higher
    convert_float=280e-9,
    convert_date=450e-9,
)

#: MySQL 5.5 over loaded data; slower executor, slower load than
#: PostgreSQL (Fig 7: load 1671 s vs PostgreSQL's ~830 s).
MYSQL_PROFILE = replace(
    POSTGRESQL_PROFILE,
    name="MySQL",
    tuple_overhead=1200e-9,
    deserialize=9e-9,
    aggregate_step=22e-9,
    predicate_eval=14e-9,
    serialize=16e-9,
    convert_int=100e-9,
    convert_float=220e-9,
    convert_date=380e-9,
)

#: MySQL CSV storage engine: external-files comparator. Re-parses the
#: whole file per query with a slow per-tuple path (Fig 7's worst case).
CSV_ENGINE_PROFILE = replace(
    MYSQL_PROFILE,
    name="MySQL CSV engine",
    tokenize=3e-9,
    convert_int=100e-9,
    convert_float=220e-9,
    tuple_overhead=1500e-9,
)

#: DBMS X external-files feature: full re-parse per query, but with the
#: faster DBMS X per-tuple machinery.
DBMS_X_EXTERNAL_PROFILE = replace(
    DBMS_X_PROFILE,
    name="DBMS X external files",
    convert_int=90e-9,
    convert_float=200e-9,
    convert_date=320e-9,
)

#: Custom CFITSIO C program (§5.3). Not a bare loop: the CFITSIO
#: library pays per-row buffer management, byte swapping and validity
#: checks (the paper measures ~1.6 us/row over 4.3M rows), and it
#: rescans the whole file per query with no auxiliary structures.
CFITSIO_PROFILE = replace(
    POSTGRESQL_PROFILE,
    name="CFITSIO",
    tuple_overhead=800e-9,
    deserialize=30e-9,
    aggregate_step=10e-9,
    predicate_eval=10e-9,
    query_overhead=1e-4,
)

ALL_PROFILES = {
    profile.name: profile
    for profile in (
        POSTGRES_RAW_PROFILE,
        POSTGRESQL_PROFILE,
        DBMS_X_PROFILE,
        MYSQL_PROFILE,
        CSV_ENGINE_PROFILE,
        DBMS_X_EXTERNAL_PROFILE,
        CFITSIO_PROFILE,
    )
}
