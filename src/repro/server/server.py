"""QueryServer: many connections, one engine, one admission gate.

Concurrency model — the engine (catalog, positional maps, caches,
virtual clock, scheduler) is deliberately single-threaded: that is
what keeps admission, structure mutation and cost accounting
deterministic (PR 4). The server therefore bridges asyncio to the
engine through a **single-threaded executor**: every engine operation
(session open, execute, fetch, close) is a closure serialized onto one
dedicated thread, while the event loop keeps servicing thousands of
sockets. The bridge is *bounded* by the scheduler itself: queries are
admitted against ``max_in_flight`` with a bounded accept queue
(``accept_queue``), and a submission that finds both saturated is
rejected with a typed ``SERVER_BUSY`` error before any engine work —
back-pressure, not unbounded queueing. Fetches on already-admitted
cursors are never rejected (they drain work and relieve pressure).

Disconnect semantics: a client that vanishes mid-stream must not keep
consuming a scheduler slot. The connection teardown path closes every
open cursor (→ ``Scheduler.cancel`` → the abandoned-scan cleanup
contract, counted by the zero-priced ``queries_abandoned`` event) and
the session, on the engine thread, so abandoned queries release their
slots exactly as an in-process ``cursor.close()`` does.

Shutdown drains gracefully: listeners close first (no new
connections), idle connections are dropped, busy connections get
``drain_timeout`` seconds to finish their current request, leftover
sessions are released on the engine thread, and only then does the
engine thread retire.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Optional

from repro.api.exceptions import InterfaceError
from repro.api.session import Session
from repro.server import metrics as _metrics
from repro.server import protocol
from repro.server.tenants import Tenant, TenantRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.cursor import Cursor
    from repro.engines.base import Database


class _Connection:
    """Server-side state of one client connection: a session bound to
    a tenant, plus this connection's cursor/statement id namespaces.
    All methods that touch the session run on the engine thread."""

    __slots__ = ("server", "session", "tenant", "cursors", "statements",
                 "_ids", "closed", "busy", "task", "_released")

    def __init__(self, server: "QueryServer"):
        self.server = server
        self.session: Optional[Session] = None
        self.tenant: Optional[Tenant] = None
        self.cursors: dict[int, "Cursor"] = {}
        self.statements: dict[int, object] = {}
        self._ids = itertools.count(1)
        self.closed = False
        self.busy = False
        self.task: Optional[asyncio.Task] = None
        self._released = False

    # -- session binding (engine thread) -----------------------------------
    def bind(self, tenant_name: str | None) -> Tenant:
        if self.session is not None:
            raise InterfaceError(
                "hello must be the first request on a connection")
        tenant = self.server.tenants.resolve(tenant_name)
        self._open_session(tenant)
        return tenant

    def ensure_session(self) -> Session:
        if self.session is None:
            self._open_session(self.server.tenants.resolve(None))
        return self.session

    def _open_session(self, tenant: Tenant) -> None:
        session = Session(self.server.engine)
        session.cost_hooks.append(tenant.charge)
        tenant.connections += 1
        self.session = session
        self.tenant = tenant

    # -- id namespaces ------------------------------------------------------
    def add_cursor(self, cursor: "Cursor") -> int:
        cid = next(self._ids)
        self.cursors[cid] = cursor
        return cid

    def cursor(self, cid) -> "Cursor":
        cursor = self.cursors.get(cid)
        if cursor is None:
            raise InterfaceError(f"unknown cursor id {cid!r}")
        return cursor

    def add_statement(self, statement) -> int:
        sid = next(self._ids)
        self.statements[sid] = statement
        return sid

    def statement(self, sid):
        statement = self.statements.get(sid)
        if statement is None:
            raise InterfaceError(f"unknown statement id {sid!r}")
        return statement

    # -- teardown (engine thread; idempotent) --------------------------------
    def release(self) -> None:
        """Close every cursor (abandoning unfinished streams, which
        frees their scheduler slots) and the session. Runs for clean
        ``bye`` closes and hard disconnects alike."""
        if self._released:
            return
        self._released = True
        for cursor in list(self.cursors.values()):
            try:
                cursor.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self.cursors.clear()
        self.statements.clear()
        if self.session is not None:
            try:
                self.session.close()
            finally:
                self.tenant.connections -= 1


class QueryServer:
    """The asyncio front end over one engine's admission scheduler.

    Parameters
    ----------
    engine:
        Any :class:`repro.Database`; its shared scheduler becomes the
        server's admission gate.
    host / port / metrics_port:
        Listen addresses; port ``0`` picks an ephemeral port (read the
        bound one back from :attr:`port` / :attr:`metrics_port`).
    max_in_flight:
        Admission gate width (applied when this server is what first
        creates the engine's scheduler).
    accept_queue:
        Bound on the scheduler's waiting queue. When ``max_in_flight``
        queries are running *and* ``accept_queue`` are waiting, new
        executes get a typed ``SERVER_BUSY`` rejection.
    tenants:
        A :class:`TenantRegistry`; omit for a permissive default
        (tenants auto-created with no quota).
    default_timeout:
        Server-side query deadline in virtual seconds applied when the
        client does not send its own ``timeout`` (None = unlimited).
    fetch_rows_max:
        Cap on rows returned by one fetch frame (bounds per-response
        buffering regardless of what clients ask for).
    """

    def __init__(self, engine: "Database", *, host: str = "127.0.0.1",
                 port: int = 0, metrics_port: int = 0,
                 max_in_flight: int | None = None, accept_queue: int = 16,
                 tenants: TenantRegistry | None = None,
                 default_timeout: float | None = None,
                 fetch_rows_max: int = 4096):
        self.engine = engine
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.scheduler = engine.shared_scheduler(max_in_flight)
        self.scheduler.max_queued = accept_queue
        self.default_timeout = default_timeout
        self.fetch_rows_max = fetch_rows_max
        self.host = host
        self._want_port = port
        self._want_metrics_port = metrics_port
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._bound_port: Optional[int] = None
        self._bound_metrics_port: Optional[int] = None
        self._engine_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine")
        self._connections: set[_Connection] = set()
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.stats = {"connections_total": 0, "queries": 0,
                      "rejected_busy": 0, "rejected_quota": 0}

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind both listeners (query port and metrics port)."""
        if self._server is not None:
            raise InterfaceError("server already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._want_port)
        self._metrics_server = await asyncio.start_server(
            lambda r, w: _metrics.serve_http(self, r, w),
            self.host, self._want_metrics_port)
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._bound_metrics_port = (
            self._metrics_server.sockets[0].getsockname()[1])
        return self

    @property
    def port(self) -> int:
        """The bound query port (after :meth:`start`)."""
        return self._bound_port

    @property
    def metrics_port(self) -> int:
        """The bound metrics/health HTTP port (after :meth:`start`)."""
        return self._bound_metrics_port

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def connections_active(self) -> int:
        return len(self._connections)

    async def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Graceful drain: stop accepting, let busy connections finish
        their current request (up to ``drain_timeout`` seconds), then
        release leftover sessions on the engine thread and retire it."""
        if self._draining:
            return
        self._draining = True
        for listener in (self._server, self._metrics_server):
            if listener is not None:
                listener.close()
        for listener in (self._server, self._metrics_server):
            if listener is not None:
                await listener.wait_closed()
        # Idle connections are just waiting for a next request that
        # drain will never serve — drop them now; busy ones get the
        # drain window to finish the request in flight.
        for conn in list(self._connections):
            if not conn.busy and conn.task is not None:
                conn.task.cancel()
        tasks = [c.task for c in list(self._connections) if c.task]
        if tasks:
            await asyncio.wait(tasks, timeout=drain_timeout)
        for conn in list(self._connections):
            if conn.task is not None:
                conn.task.cancel()
        tasks = [c.task for c in list(self._connections) if c.task]
        if tasks:
            await asyncio.wait(tasks, timeout=1.0)
        # Anything still registered lost the race to its own teardown:
        # release on the engine thread (idempotent) before retiring it.
        for conn in list(self._connections):
            await self._run_engine(conn.release)
            self._connections.discard(conn)
        self._engine_exec.shutdown(wait=True)

    # -- sync wrappers (tests, benchmarks, examples) -------------------------
    def start_in_background(self) -> "QueryServer":
        """Run the server on a dedicated event-loop thread and return
        once both ports are bound — the synchronous-world entry point
        (pair with :meth:`stop`)."""
        if self._thread is not None:
            raise InterfaceError("server already started")
        ready = threading.Event()
        boot_error: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def boot():
                try:
                    await self.start()
                except BaseException as exc:  # surfaced to the caller
                    boot_error.append(exc)
                finally:
                    ready.set()

            loop.run_until_complete(boot())
            if not boot_error:
                loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        ready.wait()
        if boot_error:
            self._thread.join(timeout=5)
            raise boot_error[0]
        return self

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Synchronous graceful shutdown of a background server."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.shutdown(drain_timeout), self._loop)
        future.result(timeout=drain_timeout + 10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start_in_background()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- the executor bridge -------------------------------------------------
    async def _run_engine(self, fn: Callable, *args):
        """Run one engine operation on the dedicated engine thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._engine_exec, fn, *args)

    # -- connection handling -------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn = _Connection(self)
        conn.task = asyncio.current_task()
        self._connections.add(conn)
        self.stats["connections_total"] += 1
        try:
            while not self._draining and not conn.closed:
                message = await protocol.read_frame_async(reader)
                if message is None:
                    break
                conn.busy = True
                try:
                    response = await self._dispatch(conn, message)
                finally:
                    conn.busy = False
                await protocol.write_frame_async(writer, response)
        except (protocol.ProtocolError, ConnectionError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            try:
                await asyncio.shield(self._run_engine(conn.release))
            except BaseException:
                pass  # shutdown() releases leftovers itself
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:
                pass

    async def _dispatch(self, conn: _Connection, message: dict) -> dict:
        mid = message.get("id")
        op = message.get("op")
        handler = _OPS.get(op)
        try:
            if handler is None:
                raise InterfaceError(f"unknown protocol op {op!r}")
            payload = await handler(self, conn, message)
            return {"id": mid, "ok": True, **payload}
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            error = protocol.describe_error(exc)
            if error["code"] == "SERVER_BUSY":
                self.stats["rejected_busy"] += 1
            elif error["code"] == "QUOTA_EXCEEDED":
                self.stats["rejected_quota"] += 1
            return {"id": mid, "ok": False, "error": error}

    # -- protocol operations -------------------------------------------------
    async def _op_hello(self, conn: _Connection, message: dict) -> dict:
        tenant_name = message.get("tenant")

        def run():
            tenant = conn.bind(tenant_name)
            return {"tenant": tenant.name, "quota": tenant.quota}

        payload = await self._run_engine(run)
        payload.update(server="repro-server",
                       protocol=protocol.PROTOCOL_VERSION,
                       engine=self.engine.name)
        return payload

    async def _op_prepare(self, conn: _Connection, message: dict) -> dict:
        sql = message.get("sql")
        if not isinstance(sql, str):
            raise InterfaceError("prepare requires sql text")

        def run():
            session = conn.ensure_session()
            statement = session.prepare(sql)
            sid = conn.add_statement(statement)
            return {"statement": sid,
                    "param_count": statement.param_count,
                    "is_explain": statement.is_explain}

        return await self._run_engine(run)

    async def _op_execute(self, conn: _Connection, message: dict) -> dict:
        params = tuple(message.get("params") or ())
        timeout = (message["timeout"] if "timeout" in message
                   else self.default_timeout)
        sid = message.get("statement")
        sql = message.get("sql")

        def run():
            session = conn.ensure_session()
            # Admission-time quota enforcement: over-quota tenants are
            # refused before the engine does any work for the query.
            conn.tenant.check_admission()
            if sid is not None:
                operation = conn.statement(sid)
            elif isinstance(sql, str):
                operation = sql
            else:
                raise InterfaceError(
                    "execute requires sql text or a statement id")
            cursor = session.cursor().execute(operation, params,
                                              timeout=timeout)
            cid = conn.add_cursor(cursor)
            self.stats["queries"] += 1
            return {"cursor": cid, "description": cursor.description}

        return await self._run_engine(run)

    async def _op_fetch(self, conn: _Connection, message: dict) -> dict:
        cid = message.get("cursor")
        want = message.get("n", 1)
        if not isinstance(want, int) or want < 0:
            raise InterfaceError(f"fetch size must be an int >= 0: {want!r}")
        want = min(want, self.fetch_rows_max)

        def run():
            cursor = conn.cursor(cid)
            rows = cursor.fetchmany(want)
            job = cursor._job
            # A failed job is never "done" to the client: its buffered
            # rows were already returned, and the *next* fetch must make
            # the round trip that raises the stored error — the same
            # surface-at-next-fetch contract as the in-process cursor.
            done = job is None or (job.done and not job.buffer
                                   and job.error is None)
            return {"rows": rows, "done": done}

        return await self._run_engine(run)

    async def _op_stats(self, conn: _Connection, message: dict) -> dict:
        cid = message.get("cursor")

        def run():
            cursor = conn.cursor(cid)
            job = cursor._job
            return {
                "elapsed": cursor.elapsed(),
                "counters": protocol.encode_counters(cursor.counters()),
                "peak_buffered_rows": cursor.peak_buffered_rows,
                "rowcount": cursor.rowcount,
                "rows_materialized": job.rows_materialized,
                "worker_tasks": cursor.worker_tasks,
                "state": job.state,
                "plan": job.plan,
            }

        return await self._run_engine(run)

    async def _op_close_cursor(self, conn: _Connection,
                               message: dict) -> dict:
        cid = message.get("cursor")

        def run():
            cursor = conn.cursor(cid)
            del conn.cursors[cid]
            abandoned = cursor._job is not None and not cursor._job.done
            cursor.close()
            return {"abandoned": abandoned}

        return await self._run_engine(run)

    async def _op_close_statement(self, conn: _Connection,
                                  message: dict) -> dict:
        sid = message.get("statement")

        def run():
            conn.statement(sid)  # raises on unknown id
            del conn.statements[sid]
            return {}

        return await self._run_engine(run)

    async def _op_session(self, conn: _Connection, message: dict) -> dict:
        def run():
            session = conn.ensure_session()
            tenant = conn.tenant
            return {
                "elapsed": session.elapsed(),
                "counters": protocol.encode_counters(session.counters()),
                "stats": dict(session.stats),
                "tenant": {"name": tenant.name, "quota": tenant.quota,
                           "spent_seconds": tenant.spent_seconds,
                           "remaining": tenant.remaining()},
            }

        return await self._run_engine(run)

    async def _op_bye(self, conn: _Connection, message: dict) -> dict:
        conn.closed = True
        return {}


_OPS = {
    "hello": QueryServer._op_hello,
    "prepare": QueryServer._op_prepare,
    "execute": QueryServer._op_execute,
    "fetch": QueryServer._op_fetch,
    "stats": QueryServer._op_stats,
    "close_cursor": QueryServer._op_close_cursor,
    "close_statement": QueryServer._op_close_statement,
    "session": QueryServer._op_session,
    "bye": QueryServer._op_bye,
}
