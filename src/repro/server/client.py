"""Pure-stdlib wire client: the Session/Cursor API over a socket.

:func:`wire_connect` is the remote twin of :func:`repro.connect`:
it returns a :class:`WireSession` whose cursors implement the same
DB-API-flavored surface as :class:`repro.api.cursor.Cursor` — execute
with ``?`` params, prepared statements, EXPLAIN, ``fetchone`` /
``fetchmany`` / ``fetchall`` / iteration, ``description`` /
``rowcount`` / ``plan``, per-query ``counters()`` / ``elapsed()`` —
so code (and tests) written against an in-process session run
unchanged against a server. Rows, column metadata and cost counters
round-trip bit-identically (dates and counter keys are restored by the
protocol layer), and server-side failures re-raise as the *same*
DB-API exception classes with their stable ``code`` and structured
``context`` intact.

The client needs nothing beyond the standard library (``socket``,
``struct``, ``json``, ``threading``); it never imports the engine.
One socket carries one session; requests are serialized under a lock
(the protocol is strictly request/response), so a session and its
cursors may be shared across threads the same way DB-API connections
usually are: one operation at a time.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Iterator, Optional, Sequence, Union

from repro.api.exceptions import InterfaceError, ProgrammingError
from repro.server import protocol
from repro.sql.executor import QueryResult, column_index

#: rows pulled per wire round trip by fetchall()/iteration
DEFAULT_FETCH_CHUNK = 1024


def wire_connect(host: str, port: int, *, tenant: str | None = None,
                 timeout: float | None = None) -> "WireSession":
    """Open a session on a :class:`~repro.server.server.QueryServer`.

    ``tenant`` names the quota ledger this connection bills to (the
    server's registry decides whether unknown names are auto-created).
    ``timeout`` is the socket timeout in real seconds (None = block).
    """
    return WireSession(host, port, tenant=tenant, timeout=timeout)


class WireSession:
    """One client's connection to a remote engine."""

    def __init__(self, host: str, port: int, tenant: str | None = None,
                 timeout: float | None = None):
        self._sock = socket.create_connection((host, port), timeout)
        self._sock.settimeout(timeout)
        self._stream = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.closed = False
        hello = self._request("hello", tenant=tenant)
        #: tenant this session bills to (server-resolved)
        self.tenant: str = hello.get("tenant")
        self.tenant_quota = hello.get("quota")
        self.engine_name: str = hello.get("engine")
        self.protocol_version: int = hello.get("protocol")

    # -- plumbing ------------------------------------------------------------
    def _request(self, op: str, **fields) -> dict:
        with self._lock:
            if self.closed:
                raise InterfaceError("session is closed")
            mid = next(self._ids)
            message = {"id": mid, "op": op}
            message.update(fields)
            try:
                protocol.write_frame(self._stream, message)
                response = protocol.read_frame(self._stream)
            except (ConnectionError, OSError) as exc:
                self._teardown()
                raise InterfaceError(
                    f"connection to server lost: {exc}") from exc
        if response is None:
            self._teardown()
            raise InterfaceError("server closed the connection")
        if response.get("id") != mid:
            self._teardown()
            raise protocol.ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {mid}")
        if not response.get("ok"):
            raise protocol.restore_error(response.get("error") or {})
        return response

    def _teardown(self) -> None:
        self.closed = True
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- cursors and execution ---------------------------------------------
    def cursor(self) -> "WireCursor":
        self._check_open()
        return WireCursor(self)

    def execute(self, operation, params: Sequence = (),
                timeout: float | None = None) -> "WireCursor":
        """Convenience: ``session.cursor().execute(...)``."""
        return self.cursor().execute(operation, params, timeout=timeout)

    def query(self, sql, params: Sequence = ()) -> QueryResult:
        """Eager convenience: execute and drain into a QueryResult."""
        cursor = self.execute(sql, params)
        try:
            return cursor.result()
        finally:
            cursor.close()

    def prepare(self, sql: str) -> "WirePreparedStatement":
        self._check_open()
        response = self._request("prepare", sql=sql)
        return WirePreparedStatement(self, sql, response["statement"],
                                     response["param_count"],
                                     response["is_explain"])

    # -- per-session accounting ---------------------------------------------
    def _session_info(self) -> dict:
        return self._request("session")

    def elapsed(self) -> float:
        """Virtual seconds of engine work this session has caused."""
        return self._session_info()["elapsed"]

    def counters(self) -> dict:
        """This session's share of the engine's cost-event units."""
        return protocol.decode_counters(self._session_info()["counters"])

    def tenant_info(self) -> dict:
        """The server's view of this session's tenant ledger."""
        return self._session_info()["tenant"]

    @property
    def stats(self) -> dict:
        return self._session_info()["stats"]

    # -- lifecycle -----------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise InterfaceError("session is closed")

    def close(self) -> None:
        """Clean goodbye: the server closes open cursors (abandoning
        unfinished streams) and the session."""
        if self.closed:
            return
        try:
            self._request("bye")
        except InterfaceError:
            pass
        self._teardown()

    def close_socket(self) -> None:
        """Hard disconnect *without* a goodbye — simulates a client
        crash. The server notices EOF and releases the session's
        cursors and scheduler slots itself (test hook)."""
        self._teardown()

    def __enter__(self) -> "WireSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class WirePreparedStatement:
    """Client handle to a statement prepared (parsed + planned) once
    server-side; re-executions bind new ``?`` parameters with zero
    parse/plan work, exactly like the in-process PreparedStatement."""

    def __init__(self, session: WireSession, sql: str, statement_id: int,
                 param_count: int, is_explain: bool):
        self.session = session
        self.sql = sql
        self.id = statement_id
        self.param_count = param_count
        self.is_explain = is_explain
        self.closed = False

    def execute(self, params: Sequence = ()) -> "WireCursor":
        """Run on a fresh cursor of the owning session."""
        return self.session.cursor().execute(self, params)

    def close(self) -> None:
        if self.closed or self.session.closed:
            self.closed = True
            return
        try:
            self.session._request("close_statement", statement=self.id)
        except InterfaceError:
            pass
        self.closed = True


#: a cursor.execute operation: SQL text or a prepared statement
Operation = Union[str, WirePreparedStatement]


class WireCursor:
    """One stream of query results, fetched over the wire on demand.

    Rows are buffered server-side one block past the fetch (the same
    streaming bound as in-process cursors, observable via
    :attr:`peak_buffered_rows`); each fetch round trip carries at most
    the rows asked for (capped by the server's ``fetch_rows_max``)."""

    def __init__(self, session: WireSession):
        self.session = session
        self.arraysize = 1
        self._closed = False
        self._id: Optional[int] = None
        self._description: Optional[list[tuple]] = None
        self._done = False
        self._rowcount_override: Optional[int] = None

    @property
    def closed(self) -> bool:
        return self._closed or self.session.closed

    # -- execution -----------------------------------------------------------
    def execute(self, operation: Operation, params: Sequence = (),
                timeout: float | None = None) -> "WireCursor":
        """Run one statement; returns ``self`` so fetches can chain.
        Any previous unfinished result on this cursor is abandoned
        (its server-side scheduler slot is released)."""
        self._check_open()
        self._release_remote()
        fields: dict = {"params": list(params)}
        if timeout is not None:
            fields["timeout"] = timeout
        if isinstance(operation, WirePreparedStatement):
            if operation.session is not self.session:
                raise InterfaceError(
                    "prepared statement belongs to a different session")
            fields["statement"] = operation.id
        elif isinstance(operation, str):
            fields["sql"] = operation
        else:
            raise InterfaceError(
                f"cannot execute {type(operation).__name__}; pass SQL text "
                f"or a WirePreparedStatement")
        response = self.session._request("execute", **fields)
        self._id = response["cursor"]
        description = response.get("description")
        self._description = ([tuple(entry) for entry in description]
                             if description is not None else None)
        self._done = False
        self._rowcount_override = None
        return self

    def executemany(self, operation: Operation,
                    seq_of_params: Sequence[Sequence],
                    timeout: float | None = None) -> "WireCursor":
        """Execute once per parameter sequence (prepared a single time
        server-side when given SQL text). Per DB-API no result set is
        kept, but ``rowcount`` totals the rows produced."""
        self._check_open()
        statement = (operation if isinstance(operation,
                                             WirePreparedStatement)
                     else self.session.prepare(operation))
        total = 0
        try:
            for params in seq_of_params:
                self.execute(statement, params, timeout=timeout)
                total += len(self.fetchall())
        finally:
            if statement is not operation:
                statement.close()
        self._release_remote()
        self._rowcount_override = total
        return self

    # -- fetching ------------------------------------------------------------
    def fetchone(self) -> Optional[tuple]:
        """The next row, or None when the result is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """Up to ``size`` rows (default ``arraysize``); the server
        pulls only the batches needed to satisfy the request."""
        self._require_result()
        want = self.arraysize if size is None else size
        if want < 0:
            raise InterfaceError("fetchmany size must be >= 0")
        if self._done or want == 0:
            return []
        response = self.session._request("fetch", cursor=self._id, n=want)
        if response.get("done"):
            self._done = True
        return [tuple(row) for row in response["rows"]]

    def fetchall(self) -> list[tuple]:
        """Every remaining row (chunked wire round trips)."""
        self._require_result()
        out: list[tuple] = []
        while not self._done:
            out.extend(self.fetchmany(DEFAULT_FETCH_CHUNK))
        return out

    def result(self) -> QueryResult:
        """Drain the remaining rows into the classic eager
        :class:`QueryResult`, with this query's own elapsed/counters
        ledger and plan summary attached — bit-compatible with
        ``Cursor.result()`` on an in-process session."""
        rows = self.fetchall()
        stats = self._stats()
        return QueryResult(
            columns=[entry[0] for entry in (self._description or [])],
            rows=rows, elapsed=stats["elapsed"],
            counters=protocol.decode_counters(stats["counters"]),
            plan=stats["plan"],
            rows_materialized=stats["rows_materialized"])

    def __iter__(self) -> Iterator[tuple]:
        while True:
            rows = self.fetchmany(DEFAULT_FETCH_CHUNK)
            if not rows:
                return
            yield from rows

    # -- introspection -------------------------------------------------------
    def _stats(self) -> dict:
        self._require_result()
        return self.session._request("stats", cursor=self._id)

    @property
    def description(self) -> Optional[list[tuple]]:
        """DB-API 7-tuples for the current result's columns."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows produced by the finished statement (-1 while the
        stream is still open, per DB-API)."""
        if self._rowcount_override is not None:
            return self._rowcount_override
        if self._id is None:
            return -1
        return self._stats()["rowcount"]

    def column_index(self, name: str) -> int:
        """Position of ``name`` among the result columns."""
        self._require_result()
        return column_index(name,
                            [entry[0] for entry in (self._description or [])])

    @property
    def plan(self) -> dict:
        """Physical plan summary of the current statement."""
        return dict(self._stats()["plan"])

    def counters(self) -> dict:
        """Cost-event units charged to this query so far."""
        return protocol.decode_counters(self._stats()["counters"])

    def elapsed(self) -> float:
        """Virtual seconds charged to this query so far."""
        return self._stats()["elapsed"]

    @property
    def peak_buffered_rows(self) -> int:
        """Server-side high-water mark of rows buffered between the
        stream and this client (the streaming bound, observable)."""
        if self._id is None:
            return 0
        return self._stats()["peak_buffered_rows"]

    @property
    def worker_tasks(self) -> int:
        """Scan-pool tasks this query's pulls dispatched server-side."""
        if self._id is None:
            return 0
        return self._stats()["worker_tasks"]

    # -- lifecycle -----------------------------------------------------------
    def _require_result(self) -> None:
        self._check_open()
        if self._id is None:
            raise InterfaceError("no query has been executed on this cursor")

    def _check_open(self) -> None:
        if self.closed:
            raise InterfaceError("cursor is closed")

    def _release_remote(self) -> None:
        if self._id is None or self.session.closed:
            self._id = None
            return
        try:
            self.session._request("close_cursor", cursor=self._id)
        except (InterfaceError, ProgrammingError):
            pass
        self._id = None
        self._description = None
        self._done = False

    def close(self) -> None:
        """Release the server-side cursor; an unfinished stream is
        abandoned there, freeing its scheduler slot immediately."""
        if self._closed:
            return
        self._release_remote()
        self._closed = True

    def __enter__(self) -> "WireCursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
