"""The metrics plane: HTTP ``/health`` and ``/metrics``.

A deliberately tiny HTTP/1.0 responder on the server's metrics port —
enough for ``curl`` and any Prometheus-style scraper, with zero
dependencies. ``/metrics`` renders the live resource-utilization view
the engine already keeps (cf. "Resource Utilization Monitoring for Raw
Data Query Processing"): every :class:`~repro.simcost.clock.CostEvent`
counter (scan, conversion, positional-map, cache, rollup, kernel and
fault counters alike), the virtual clock, scheduler depth and abandons,
server connection/rejection stats, and per-tenant spend against quota.

The snapshot is taken **on the engine thread**, so one scrape sees a
consistent point-in-time ledger (never a counter mid-update).
``/health`` answers from the event loop without touching the engine
thread, so it stays responsive even while a long query streams.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.simcost.clock import CostEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.server import QueryServer


def _label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def render_metrics(server: "QueryServer") -> str:
    """The ``/metrics`` body (Prometheus text exposition format).
    Runs on the engine thread for a consistent snapshot."""
    engine = server.engine
    scheduler = server.scheduler
    counters = engine.clock.counters
    lines = [
        "# HELP repro_engine_events_total cost-model event units, "
        "by CostEvent",
        "# TYPE repro_engine_events_total counter",
    ]
    for event in CostEvent:
        lines.append(
            f'repro_engine_events_total{{event="{event.value}"}} '
            f"{counters.get(event, 0)}")
    lines += [
        "# TYPE repro_engine_virtual_seconds counter",
        f"repro_engine_virtual_seconds {engine.clock.now()}",
        "# TYPE repro_engine_rows_materialized counter",
        f"repro_engine_rows_materialized {engine.clock.rows_materialized}",
        "# TYPE repro_scheduler_in_flight gauge",
        f"repro_scheduler_in_flight {scheduler.in_flight}",
        "# TYPE repro_scheduler_queued gauge",
        f"repro_scheduler_queued {scheduler.queued}",
        "# TYPE repro_scheduler_max_in_flight gauge",
        f"repro_scheduler_max_in_flight {scheduler.max_in_flight}",
        "# TYPE repro_scheduler_accept_queue_limit gauge",
        f"repro_scheduler_accept_queue_limit "
        f"{-1 if scheduler.max_queued is None else scheduler.max_queued}",
        "# TYPE repro_scheduler_queries_abandoned counter",
        f"repro_scheduler_queries_abandoned {scheduler.abandoned}",
        "# TYPE repro_server_connections_active gauge",
        f"repro_server_connections_active {server.connections_active}",
        "# TYPE repro_server_connections_total counter",
        f"repro_server_connections_total "
        f"{server.stats['connections_total']}",
        "# TYPE repro_server_queries_total counter",
        f"repro_server_queries_total {server.stats['queries']}",
        "# TYPE repro_server_rejected_total counter",
        f'repro_server_rejected_total{{reason="busy"}} '
        f"{server.stats['rejected_busy']}",
        f'repro_server_rejected_total{{reason="quota"}} '
        f"{server.stats['rejected_quota']}",
    ]
    tenant_rows = server.tenants.snapshot()
    if tenant_rows:
        lines += [
            "# TYPE repro_tenant_spent_virtual_seconds counter",
            "# TYPE repro_tenant_quota_virtual_seconds gauge",
            "# TYPE repro_tenant_rejected_total counter",
            "# TYPE repro_tenant_connections gauge",
        ]
        for row in tenant_rows:
            tenant = _label(row["name"])
            lines.append(
                f'repro_tenant_spent_virtual_seconds{{tenant="{tenant}"}} '
                f"{row['spent_seconds']}")
            if row["quota"] is not None:
                lines.append(
                    f'repro_tenant_quota_virtual_seconds'
                    f'{{tenant="{tenant}"}} {row["quota"]}')
            lines.append(
                f'repro_tenant_rejected_total{{tenant="{tenant}"}} '
                f"{row['rejected']}")
            lines.append(
                f'repro_tenant_connections{{tenant="{tenant}"}} '
                f"{row['connections']}")
    return "\n".join(lines) + "\n"


def render_health(server: "QueryServer") -> str:
    """The ``/health`` body — cheap, engine-thread-free liveness."""
    return json.dumps({
        "status": "draining" if server.draining else "ok",
        "engine": server.engine.name,
        "in_flight": server.scheduler.in_flight,
        "queued": server.scheduler.queued,
        "connections": server.connections_active,
    }) + "\n"


async def serve_http(server: "QueryServer", reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
    """Handle one HTTP connection on the metrics port (one request,
    then close — HTTP/1.0 semantics keep the responder stateless)."""
    try:
        request_line = await asyncio.wait_for(reader.readline(), timeout=10)
        while True:  # drain request headers
            line = await asyncio.wait_for(reader.readline(), timeout=10)
            if line in (b"\r\n", b"\n", b""):
                break
        parts = request_line.decode("latin-1", "replace").split()
        method = parts[0] if parts else ""
        path = (parts[1] if len(parts) > 1 else "/").split("?", 1)[0]
        if method != "GET":
            status, body = "405 Method Not Allowed", "method not allowed\n"
            content_type = "text/plain"
        elif path == "/health":
            status = "200 OK"
            body = render_health(server)
            content_type = "application/json"
        elif path == "/metrics":
            status = "200 OK"
            body = await server._run_engine(render_metrics, server)
            content_type = "text/plain; version=0.0.4"
        else:
            status, body = "404 Not Found", f"no such path {path}\n"
            content_type = "text/plain"
        payload = body.encode("utf-8")
        writer.write(
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload)
        await writer.drain()
    except (asyncio.TimeoutError, ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except BaseException:
            pass
