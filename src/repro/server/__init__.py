"""Network service front end: the library as a server.

The session/cursor API (:mod:`repro.api`) made the engine shareable by
many in-process clients under one admission scheduler; this package
puts that surface on the wire so *remote* clients get the same thing:

* :mod:`repro.server.protocol` — a length-prefixed JSON framing that
  carries the full Session/Cursor surface (execute with ``?`` params,
  prepared statements, EXPLAIN, fetchmany streaming, structured
  errors) symmetrically between server and client.
* :mod:`repro.server.server` — :class:`QueryServer`, an asyncio server
  multiplexing many connections onto one engine through a
  single-threaded executor bridge, with typed ``SERVER_BUSY``
  back-pressure, graceful drain on shutdown, and disconnect →
  cursor early-close.
* :mod:`repro.server.tenants` — per-tenant quota ledgers rolled up
  from the per-session cost deltas (``QUOTA_EXCEEDED`` at admission).
* :mod:`repro.server.client` — a pure-stdlib wire client implementing
  the same Session/Cursor API, so code written against
  ``repro.connect()`` runs unchanged against a server.
* :mod:`repro.server.metrics` — HTTP ``/health`` and ``/metrics``
  exposing the engine's CostEvent counters, scheduler depth and
  per-tenant spend (cf. resource-utilization monitoring for raw-data
  query processing).
"""

from repro.server.client import WireCursor, WireSession, wire_connect
from repro.server.server import QueryServer
from repro.server.tenants import Tenant, TenantRegistry

__all__ = [
    "QueryServer",
    "Tenant",
    "TenantRegistry",
    "WireCursor",
    "WireSession",
    "wire_connect",
]
