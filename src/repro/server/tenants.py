"""Per-tenant accounting: session cost ledgers rolled up into quotas.

The scheduler already charges every query's clock/counter deltas to its
job and session (PR 2); a tenant is simply a named aggregation point
above sessions. The server installs :meth:`Tenant.charge` as a session
cost hook (:attr:`repro.api.session.Session.cost_hooks`), so every
virtual second and cost-event unit a tenant's connections cause —
queries, prepares, re-plans, DDL — accrues to one ledger, with zero
engine changes and zero double counting.

Quotas are *virtual-cost* quotas, in the engine's own currency
(virtual seconds on the shared clock): enforcement is admission-time —
:meth:`Tenant.check_admission` raises
:class:`~repro.errors.QuotaExceededError` before any engine work is
done for a new query, while queries already streaming run to
completion and keep billing the tenant (so a tenant can finish at most
``max_in_flight`` queries past its quota, never start new ones).

All mutation happens on the server's single engine thread; readers
(the metrics plane) see a consistent snapshot via :meth:`snapshot`
taken on that same thread.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Optional

from repro.errors import QuotaExceededError, annotate

#: tenant used by connections that do not name one in their hello
DEFAULT_TENANT = "default"


class Tenant:
    """One named client population with a shared cost ledger.

    Parameters
    ----------
    name:
        Tenant identifier (carried in the hello handshake).
    quota:
        Virtual-second budget; ``None`` = unlimited. Compared against
        :attr:`spent_seconds` at every admission.
    """

    def __init__(self, name: str, quota: float | None = None):
        if quota is not None and quota < 0:
            raise ValueError(f"negative quota for tenant {name!r}: {quota}")
        self.name = name
        self.quota = quota
        self.spent_seconds = 0.0
        self.counters: Counter = Counter()
        #: admissions rejected over quota (observability, not a charge)
        self.rejected = 0
        #: live connections currently bound to this tenant
        self.connections = 0

    # -- ledger ------------------------------------------------------------
    def charge(self, elapsed: float, counters: dict) -> None:
        """Session cost-hook entry point: fold one session delta in."""
        self.spent_seconds += elapsed
        for event, units in counters.items():
            self.counters[event] += units

    def remaining(self) -> float | None:
        """Virtual seconds left under the quota (None = unlimited)."""
        if self.quota is None:
            return None
        return max(0.0, self.quota - self.spent_seconds)

    @property
    def over_quota(self) -> bool:
        return self.quota is not None and self.spent_seconds >= self.quota

    # -- enforcement -------------------------------------------------------
    def check_admission(self) -> None:
        """Admission gate: refuse new work once the quota is spent."""
        if self.over_quota:
            self.rejected += 1
            raise annotate(
                QuotaExceededError(
                    f"tenant {self.name!r} exhausted its quota of "
                    f"{self.quota:.6g} virtual seconds (spent "
                    f"{self.spent_seconds:.6g}); no new queries admitted"),
                tenant=self.name, quota=self.quota,
                spent=self.spent_seconds)

    def reset(self, quota: float | None = None) -> None:
        """Zero the ledger (and optionally re-quota) — the billing-cycle
        rollover hook."""
        self.spent_seconds = 0.0
        self.counters.clear()
        self.rejected = 0
        if quota is not None:
            self.quota = quota

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tenant({self.name!r}, quota={self.quota}, "
                f"spent={self.spent_seconds:.6g})")


class TenantRegistry:
    """The server's tenant table.

    ``strict=False`` (the default) auto-creates tenants on first sight
    with ``default_quota`` — the zero-config path. ``strict=True``
    makes an unknown tenant name in the hello handshake a
    :class:`~repro.errors.QuotaExceededError`-adjacent admission
    failure (the connection is refused before a session exists).
    """

    def __init__(self, default_quota: float | None = None,
                 strict: bool = False):
        self.default_quota = default_quota
        self.strict = strict
        self._tenants: dict[str, Tenant] = {}

    def declare(self, name: str, quota: float | None = None) -> Tenant:
        """Create (or re-quota) a tenant explicitly — server setup."""
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self._tenants[name] = Tenant(name, quota)
        else:
            tenant.quota = quota
        return tenant

    def resolve(self, name: str | None) -> Tenant:
        """The tenant a connection binds to (hello handshake)."""
        key = name if name else DEFAULT_TENANT
        tenant = self._tenants.get(key)
        if tenant is None:
            if self.strict:
                raise annotate(
                    QuotaExceededError(
                        f"unknown tenant {key!r}: this server only admits "
                        f"declared tenants"),
                    tenant=key)
            tenant = self._tenants[key] = Tenant(key, self.default_quota)
        return tenant

    def get(self, name: str) -> Optional[Tenant]:
        return self._tenants.get(name)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def snapshot(self) -> list[dict]:
        """Metrics-plane view: one plain dict per tenant."""
        return [{
            "name": tenant.name,
            "quota": tenant.quota,
            "spent_seconds": tenant.spent_seconds,
            "remaining": tenant.remaining(),
            "rejected": tenant.rejected,
            "connections": tenant.connections,
            "counters": dict(tenant.counters),
        } for tenant in self._tenants.values()]
