"""Wire protocol: length-prefixed JSON frames.

Each frame is a 4-byte big-endian length followed by a UTF-8 JSON
object. Requests carry ``{"id": n, "op": name, ...}``; responses echo
the id as ``{"id": n, "ok": true, ...}`` or ``{"id": n, "ok": false,
"error": {...}}``. One request yields exactly one response, in order —
the framing stays trivial so a pure-stdlib client (socket + struct +
json) can speak it.

Value fidelity: rows may contain dates (the engine's DATE columns
yield :class:`datetime.date`), which JSON has no type for. They travel
as ``{"$date": "YYYY-MM-DD"}`` and are restored on decode, so a wire
fetch returns *bit-identical* rows to an in-process fetch. Cost
counters travel keyed by event value strings — the keying in-process
job/session ledgers already use — so they compare equal end to end.

Errors travel structured, not stringly: the DB-API class name, the
stable machine-readable ``code`` (``SQL_PARSE``, ``CSV_FORMAT``,
``QUERY_TIMEOUT``, ``SERVER_BUSY``, ``QUOTA_EXCEEDED``, ...) and the
``context`` dict (``path``, ``byte_offset``, ``row_number``,
``table``, ...) from :mod:`repro.errors`. :func:`restore_error`
reconstructs the right :mod:`repro.api.exceptions` class client-side,
so ``except ProgrammingError`` works identically over the wire.
"""

from __future__ import annotations

import asyncio
import datetime
import json
import struct
from typing import BinaryIO, Optional

from repro.api import exceptions as _dbapi
from repro.api.exceptions import Error, InterfaceError, map_error
from repro.simcost.clock import CostEvent

#: protocol revision, exchanged in the hello handshake
PROTOCOL_VERSION = 1

#: hard bound on one frame's payload — a corrupt or hostile length
#: prefix must not make either side allocate without limit
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: context keys guaranteed to survive the wire (others ride along when
#: JSON-serializable)
CONTEXT_KEYS = ("path", "byte_offset", "row_number", "table", "timeout",
                "in_flight", "queued", "max_in_flight", "max_queued",
                "tenant", "quota", "spent")


class ProtocolError(InterfaceError):
    """The peer violated the framing (bad length, bad JSON, id skew)."""

    code = "PROTOCOL"


# ---------------------------------------------------------------------------
# JSON value fidelity
# ---------------------------------------------------------------------------
class _Encoder(json.JSONEncoder):
    def default(self, o):
        if isinstance(o, datetime.date) and not isinstance(
                o, datetime.datetime):
            return {"$date": o.isoformat()}
        if isinstance(o, CostEvent):
            return o.value
        return super().default(o)


def _decode_object(obj: dict):
    if len(obj) == 1 and "$date" in obj:
        return datetime.date.fromisoformat(obj["$date"])
    return obj


def encode(message: dict) -> bytes:
    """One message as a framed payload (length prefix + JSON)."""
    payload = json.dumps(message, cls=_Encoder,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    return _LENGTH.pack(len(payload)) + payload


def decode(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"),
                             object_hook=_decode_object)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must decode to an object, got {type(message).__name__}")
    return message


def _check_length(nbytes: int) -> None:
    if nbytes > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {nbytes}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); closing")


# ---------------------------------------------------------------------------
# Blocking I/O (client side: plain sockets / file objects)
# ---------------------------------------------------------------------------
def write_frame(stream: BinaryIO, message: dict) -> None:
    stream.write(encode(message))
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[dict]:
    """The next message, or None on clean EOF at a frame boundary."""
    header = stream.read(_LENGTH.size)
    if not header:
        return None
    if len(header) < _LENGTH.size:
        raise ProtocolError("connection closed mid-frame header")
    (nbytes,) = _LENGTH.unpack(header)
    _check_length(nbytes)
    payload = b""
    while len(payload) < nbytes:
        chunk = stream.read(nbytes - len(payload))
        if not chunk:
            raise ProtocolError("connection closed mid-frame payload")
        payload += chunk
    return decode(payload)


# ---------------------------------------------------------------------------
# Asyncio I/O (server side)
# ---------------------------------------------------------------------------
async def write_frame_async(writer: asyncio.StreamWriter,
                            message: dict) -> None:
    writer.write(encode(message))
    await writer.drain()


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[dict]:
    """The next message, or None on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame header") from exc
    (nbytes,) = _LENGTH.unpack(header)
    _check_length(nbytes)
    try:
        payload = await reader.readexactly(nbytes)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame payload") from exc
    return decode(payload)


# ---------------------------------------------------------------------------
# Error serialization
# ---------------------------------------------------------------------------
def _wire_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def describe_error(exc: BaseException) -> dict:
    """Serialize any server-side failure as a wire error object.

    Internal errors are first mapped through the DB-API boundary
    (:func:`repro.api.exceptions.map_error`) exactly as an in-process
    cursor would map them, so wire clients see the same class, the same
    stable ``code`` and the same structured context."""
    mapped = exc if isinstance(exc, Error) else map_error(exc)
    context = {key: _wire_safe(value)
               for key, value in (getattr(mapped, "context", None)
                                  or {}).items()}
    return {
        "dbapi": type(mapped).__name__,
        "code": getattr(mapped, "code", "REPRO_ERROR"),
        "message": str(mapped),
        "context": context,
    }


def restore_error(error: dict) -> Error:
    """Reconstruct the DB-API exception a wire error describes.

    The class is resolved by name inside :mod:`repro.api.exceptions`
    (never arbitrary import paths), falling back to
    :class:`~repro.api.exceptions.OperationalError` for names a newer
    server might send; ``code`` and ``context`` are reattached so
    handlers keyed on either keep working."""
    name = error.get("dbapi", "OperationalError")
    cls = getattr(_dbapi, name, None)
    if not (isinstance(cls, type) and issubclass(cls, Error)):
        cls = _dbapi.OperationalError
    exc = cls(error.get("message", "server error"))
    exc.code = error.get("code", exc.code)
    exc.context = dict(error.get("context") or {})
    return exc


# ---------------------------------------------------------------------------
# Counter fidelity
# ---------------------------------------------------------------------------
def encode_counters(counters: dict) -> dict:
    """Cost counters for the wire. Job/session ledgers are already
    keyed by event *value* strings (see ``counters_delta``), which is
    exactly what JSON wants — this normalizes any stray enum keys and
    otherwise passes the dict through so a wire ``counters()`` compares
    equal to its in-process twin."""
    return {(key.value if isinstance(key, CostEvent) else str(key)): units
            for key, units in counters.items()}


def decode_counters(counters: dict) -> dict:
    """Wire counters arrive keyed by event value strings — the same
    keying in-process ledgers use, so decoding is the identity."""
    return dict(counters or {})
