"""Bulk loader: raw CSV -> binary heap pages + statistics.

This is the cost a conventional DBMS pays up front and NoDB eliminates:
one full pass that tokenizes every character, converts every value,
serializes binary tuples, and writes them out as slotted pages. The
loader also samples the data for optimizer statistics (ANALYZE),
mirroring the paper's loaded comparators which always query with
statistics in place.
"""

from __future__ import annotations

from repro.core.statistics import ReservoirSampler
from repro.errors import CSVFormatError
from repro.formats.csvfmt import CsvDialect, LineReader, split_line
from repro.simcost.model import CostModel
from repro.sql.catalog import Schema
from repro.sql.stats import ColumnStats, TableStats
from repro.storage.heap import HeapWriter
from repro.storage.record import RecordCodec
from repro.storage.toast import ToastWriter, toast_values
from repro.storage.vfs import VirtualFS

_SAMPLE_TARGET = 1000


class BulkLoader:
    """Loads one CSV file into a heap file on the same VFS."""

    def __init__(self, vfs: VirtualFS, model: CostModel,
                 dialect: CsvDialect | None = None):
        self.vfs = vfs
        self.model = model
        self.dialect = dialect if dialect is not None else CsvDialect()

    def load(self, csv_path: str, heap_path: str, schema: Schema,
             ) -> tuple[int, TableStats]:
        """Run the load; returns ``(row_count, stats)``.

        Tuples wider than the TOAST threshold get their largest string
        values moved to ``<heap_path>.toast`` (see storage.toast).

        Raises :class:`CSVFormatError` on arity mismatches — a loader
        must reject malformed input (unlike the forgiving straw-man
        external scan).
        """
        model = self.model
        codec = RecordCodec(schema)
        dtypes = schema.types
        families = [t.family for t in dtypes]
        arity = schema.arity
        samplers = [ReservoirSampler(_SAMPLE_TARGET, seed=i)
                    for i in range(arity)]
        if self.vfs.exists(heap_path):
            self.vfs.delete(heap_path)
        toast_path = heap_path + ".toast"
        if self.vfs.exists(toast_path):
            self.vfs.delete(toast_path)
        toast_writer = ToastWriter(self.vfs, toast_path, model)
        handle = self.vfs.open(csv_path, model)
        reader = LineReader(handle)
        rows = 0
        scanned_before = 0
        with HeapWriter(self.vfs, heap_path, model) as writer:
            for _offset, line in reader:
                model.newline_scan(reader.chars_scanned - scanned_before)
                scanned_before = reader.chars_scanned
                spans, scanned = split_line(line, self.dialect)
                model.tokenize(scanned)
                if len(spans) != arity:
                    raise CSVFormatError(
                        f"row {rows} has {len(spans)} attributes, "
                        f"schema has {arity}", row_number=rows)
                values = []
                for attr, (start, end) in enumerate(spans):
                    text = line[start:end].decode("utf-8", "replace")
                    model.convert(families[attr], 1)
                    if text == "" and families[attr] != "str":
                        value = None
                    else:
                        value = dtypes[attr].parse(text)
                    values.append(value)
                    samplers[attr].add(value)
                    model.stats_sample(1)
                model.serialize(arity)
                values = toast_values(values, families, toast_writer,
                                      codec.encoded_width)
                writer.append(codec.encode(values))
                rows += 1
        stats = TableStats(row_count=rows)
        for attr, sampler in enumerate(samplers):
            if sampler.seen == 0:
                continue
            column = ColumnStats(name=schema.columns[attr].name)
            column.merge_sample(sampler.sample, rows, sampler.null_count,
                                sampler.seen)
            stats.set_column(column)
        return rows, stats


def load_rows(vfs: VirtualFS, model: CostModel, heap_path: str,
              schema: Schema, rows) -> tuple[int, TableStats]:
    """Materialize already-computed tuples into a heap file.

    The serialize-and-sample half of :class:`BulkLoader` without the
    parse half: CTAS and rollup builds land here with tuples produced
    by a query whose scan already paid the tokenize/convert cost, so
    only serialization and statistics sampling are charged.

    Returns ``(row_count, stats)`` like :meth:`BulkLoader.load`.
    """
    codec = RecordCodec(schema)
    families = [t.family for t in schema.types]
    arity = schema.arity
    samplers = [ReservoirSampler(_SAMPLE_TARGET, seed=i)
                for i in range(arity)]
    if vfs.exists(heap_path):
        vfs.delete(heap_path)
    toast_path = heap_path + ".toast"
    if vfs.exists(toast_path):
        vfs.delete(toast_path)
    toast_writer = ToastWriter(vfs, toast_path, model)
    count = 0
    with HeapWriter(vfs, heap_path, model) as writer:
        for values in rows:
            values = list(values)
            if len(values) != arity:
                raise CSVFormatError(
                    f"row {count} has {len(values)} attributes, "
                    f"schema has {arity}", row_number=count)
            for attr, value in enumerate(values):
                samplers[attr].add(value)
                model.stats_sample(1)
            model.serialize(arity)
            values = toast_values(values, families, toast_writer,
                                  codec.encoded_width)
            writer.append(codec.encode(values))
            count += 1
    stats = TableStats(row_count=count)
    for attr, sampler in enumerate(samplers):
        if sampler.seen == 0:
            continue
        column = ColumnStats(name=schema.columns[attr].name)
        column.merge_sample(sampler.sample, count, sampler.null_count,
                            sampler.seen)
        stats.set_column(column)
    return count, stats
