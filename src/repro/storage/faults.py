"""Deterministic I/O fault injection over the virtual filesystem.

:class:`FaultInjectingVFS` wraps the normal :class:`~repro.storage.vfs.
VirtualFS` read path with a *seeded schedule* of faults: transient read
errors (retried by the storage layer with bounded, virtually-billed
backoff), injected latency stalls, and externally scheduled truncation
or in-place corruption. Chaos tests drive queries through the real scan
pipeline against this VFS instead of mocking reads.

Determinism contract: whether a fault fires at a given ``(path, block,
kind)`` is a pure function of the seed and those coordinates — never of
call order, wall-clock time or thread interleaving. All costed reads
happen on the scan driver thread in a deterministic order (parallel
chunk scans record read charges into op logs replayed serially), so the
injected retries and stalls land on the virtual clock in the same order
at any ``scan_workers`` count: results, structures, counters and the
clock stay bit-identical.

The retry loop is modeled *inside* the hook: a transient fault at a
block costs ``io_retries`` counter units plus exponentially growing
``io_stall`` virtual seconds, then the read proceeds normally (the
bytes themselves are served by the ordinary read path). Faults resolve
per (path, block): once a block's transient faults have been retried
through, later reads of the same block are clean — flaky storage, not
permanently bad sectors. Permanently bad regions are scheduled
explicitly via :meth:`schedule_error`, and exhaust the retry budget
into a typed :class:`~repro.errors.IOFaultError`.
"""

from __future__ import annotations

import hashlib

from repro.errors import IOFaultError, annotate
from repro.storage.vfs import OS_CACHE_BLOCK, OSPageCache, VirtualFS


class FaultInjectingVFS(VirtualFS):
    """A :class:`VirtualFS` whose costed reads fault on a seeded schedule.

    Parameters
    ----------
    seed:
        Schedule seed; two instances with the same seed fault
        identically for the same paths and offsets.
    rate:
        Probability (per (path, block, kind)) that a fault fires.
    latency:
        Virtual seconds of stall injected when a latency fault fires.
    retry_limit / backoff:
        Bounded-retry budget for transient faults: a transient fault
        needs between 1 and ``retry_limit`` retries (hash-decided),
        each stalling the clock by ``backoff * 2**attempt`` seconds.
        Scheduled hard errors burn the whole budget and then raise
        :class:`~repro.errors.IOFaultError`.
    """

    def __init__(self, seed: int = 0, rate: float = 0.05,
                 latency: float = 0.0005, retry_limit: int = 3,
                 backoff: float = 0.001,
                 os_cache: OSPageCache | None = None):
        super().__init__(os_cache=os_cache)
        self.seed = seed
        self.rate = rate
        self.latency = latency
        self.retry_limit = max(0, retry_limit)
        self.backoff = backoff
        #: (kind, path, block, detail) tuples, for test assertions
        self.fault_log: list[tuple] = []
        #: (path, block) transient faults already retried through
        self._resolved: set[tuple[str, int]] = set()
        #: paths (or (path, block)) scheduled to fail permanently
        self._hard_errors: set = set()
        #: path -> (after_reads, keep_bytes) pending truncations
        self._truncations: dict[str, tuple[int, int]] = {}
        #: per-path costed read counts (truncation trigger)
        self._read_counts: dict[str, int] = {}

    # -- schedule (pure function of seed/path/block/kind) -------------------
    def _fraction(self, path: str, block: int, kind: str) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{path}:{block}:{kind}".encode(),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def _transient_fails(self, path: str, block: int) -> int:
        """How many attempts of this block fail transiently (0 = clean).
        Always within the retry budget, so organic transient faults
        degrade into retries, never into errors."""
        if self.retry_limit == 0 or self.rate == 0.0:
            return 0
        if self._fraction(path, block, "transient") >= self.rate:
            return 0
        return 1 + int(self._fraction(path, block, "fails")
                       * self.retry_limit) % self.retry_limit

    def _has_latency(self, path: str, block: int) -> bool:
        return (self.rate > 0.0 and self.latency > 0.0
                and self._fraction(path, block, "latency") < self.rate)

    # -- explicit fault scheduling (test APIs) ------------------------------
    def schedule_error(self, path: str, block: int | None = None) -> None:
        """Make costed reads of ``path`` (or just one of its blocks)
        permanently fail: the retry budget is burned — charged like any
        transient fault — and then a typed ``IOFaultError`` raises."""
        self._hard_errors.add(path if block is None else (path, block))

    def resolve_error(self, path: str, block: int | None = None) -> None:
        """Clear a scheduled hard error — the bad sector was repaired.
        Subsequent reads succeed (tests use this to assert the engine
        recovers once the fault goes away)."""
        self._hard_errors.discard(path if block is None else (path, block))

    def schedule_truncation(self, path: str, after_reads: int,
                            keep_bytes: int) -> None:
        """Truncate ``path`` to ``keep_bytes`` once its costed-read
        count exceeds ``after_reads`` — a mid-scan truncation by an
        external actor, applied through the real mutation path (bumps
        the rewrite counter, so §4.5 refresh resets structures on the
        next query)."""
        self._truncations[path] = (after_reads, max(0, keep_bytes))

    def external_overwrite(self, path: str, offset: int,
                           data: bytes) -> None:
        """Mutate file bytes in place *without* touching generation or
        rewrite counters — the truly-external same-size rewrite the
        (rewrites, size) staleness guards cannot see. Content
        fingerprints on auxiliary sidecars exist to catch exactly
        this."""
        entry = self._entry(path)
        entry.data[offset:offset + len(data)] = data
        self.os_cache.invalidate(path)

    # -- the hook -----------------------------------------------------------
    def fault_check(self, path, offset, length, model) -> None:
        count = self._read_counts.get(path, 0) + 1
        self._read_counts[path] = count
        pending = self._truncations.get(path)
        if pending is not None and count > pending[0]:
            del self._truncations[path]
            entry = self._entry(path)
            if len(entry.data) > pending[1]:
                del entry.data[pending[1]:]
                entry.generation += 1
                entry.rewrites += 1
                self.os_cache.invalidate(path)
                self.fault_log.append(("truncation", path, 0, pending[1]))

        block = offset // OS_CACHE_BLOCK
        if self._has_latency(path, block):
            self.fault_log.append(("latency", path, block, self.latency))
            if model is not None:
                model.io_stall(self.latency)

        hard = path in self._hard_errors or (path, block) in self._hard_errors
        fails = self.retry_limit if hard else self._transient_fails(
            path, block)
        if not fails:
            return
        key = (path, block)
        if not hard and key in self._resolved:
            return
        backoff = self.backoff
        for attempt in range(1, fails + 1):
            self.fault_log.append(("transient", path, block, attempt))
            if model is not None:
                model.io_retry(1)
                model.io_stall(backoff)
            backoff *= 2
        if hard:
            self.fault_log.append(("hard", path, block, self.retry_limit))
            raise annotate(
                IOFaultError(
                    f"I/O error reading {path!r} at offset {offset}: "
                    f"retry budget ({self.retry_limit}) exhausted"),
                path=path, byte_offset=offset)
        self._resolved.add(key)

    @classmethod
    def from_config(cls, config,
                    os_cache: OSPageCache | None = None,
                    ) -> "FaultInjectingVFS":
        """Build from a :class:`~repro.core.config.PostgresRawConfig`
        (``fault_seed`` must be set)."""
        return cls(seed=config.fault_seed, rate=config.fault_rate,
                   retry_limit=config.io_retry_limit,
                   backoff=config.io_retry_backoff, os_cache=os_cache)
