"""Heap files: sequences of slotted pages holding one table's tuples."""

from __future__ import annotations

from typing import Iterator

from repro.errors import PageFormatError, StorageError
from repro.simcost.model import CostModel
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.vfs import VirtualFS


class HeapFile:
    """A table's binary pages on the VFS.

    Writing goes through :class:`HeapWriter` (bulk load); reading goes
    through :meth:`scan_records` with a buffer pool.
    """

    def __init__(self, vfs: VirtualFS, path: str):
        self.vfs = vfs
        self.path = path

    @property
    def num_pages(self) -> int:
        size = self.vfs.size(self.path)
        if size % PAGE_SIZE:
            raise StorageError(
                f"heap file {self.path!r} is not page aligned ({size} bytes)")
        return size // PAGE_SIZE

    def scan_records(self, pool: BufferPool) -> Iterator[bytes]:
        """Yield every record's bytes, page by page, via the pool."""
        for page_index in range(self.num_pages):
            page = pool.get_page(self.path, page_index)
            yield from page.records()

    def record_count(self, pool: BufferPool) -> int:
        total = 0
        for page_index in range(self.num_pages):
            total += pool.get_page(self.path, page_index).tuple_count
        return total


class HeapWriter:
    """Append-only writer used by the bulk loader.

    Keeps one fill page in memory and flushes it when full; always call
    :meth:`close` (or use as a context manager) to flush the tail page.
    """

    def __init__(self, vfs: VirtualFS, path: str, model: CostModel):
        self.vfs = vfs
        self.path = path
        self.model = model
        if not vfs.exists(path):
            vfs.create(path)
        self._handle = vfs.open(path, model)
        self._fill = SlottedPage()
        self._records_written = 0
        self._closed = False

    def append(self, record: bytes) -> None:
        """Append one encoded record, starting a new page when needed."""
        if self._closed:
            raise StorageError("writer already closed")
        if not self._fill.has_room(len(record)):
            if self._fill.tuple_count == 0:
                raise PageFormatError(
                    f"record of {len(record)} bytes exceeds page capacity "
                    f"— tuples cannot span pages (see DESIGN.md §6 note)")
            self._flush_fill()
        self._fill.insert(record)
        self._records_written += 1

    def _flush_fill(self) -> None:
        self._handle.append(self._fill.to_bytes())
        self._fill = SlottedPage()

    def close(self) -> int:
        """Flush the tail page; returns the number of records written."""
        if not self._closed:
            if self._fill.tuple_count:
                self._flush_fill()
            self._closed = True
        return self._records_written

    def __enter__(self) -> "HeapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
