"""Slotted pages: the unit of storage for loaded engines.

Layout (little-endian)::

    [ tuple_count: u16 ][ free_end: u16 ]      -- 4-byte header
    [ slot 0: offset u16, length u16 ] ...      -- slot array, grows forward
    ...free space...
    ...tuple data, grows backward from the end...

This mirrors PostgreSQL's page shape closely enough to exhibit the
behaviours the paper leans on (§6 "Complex Database Schemas"): a tuple
cannot span pages, so wide tuples waste space and can overflow.
"""

from __future__ import annotations

import struct

from repro.errors import PageFormatError

PAGE_SIZE = 8192
_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")


class SlottedPage:
    """One in-memory page. Use :meth:`to_bytes` to persist."""

    def __init__(self, data: bytes | None = None):
        if data is None:
            self._buf = bytearray(PAGE_SIZE)
            self.tuple_count = 0
            self.free_end = PAGE_SIZE
            self._sync_header()
        else:
            if len(data) != PAGE_SIZE:
                raise PageFormatError(
                    f"page must be exactly {PAGE_SIZE} bytes, got {len(data)}")
            self._buf = bytearray(data)
            self.tuple_count, self.free_end = _HEADER.unpack_from(self._buf, 0)
            if self.free_end > PAGE_SIZE:
                raise PageFormatError("corrupt page header: free_end past end")

    def _sync_header(self) -> None:
        _HEADER.pack_into(self._buf, 0, self.tuple_count, self.free_end)

    def _slot_offset(self, slot: int) -> int:
        return _HEADER.size + slot * _SLOT.size

    @property
    def free_space(self) -> int:
        """Bytes available for one more tuple (including its slot)."""
        used_front = self._slot_offset(self.tuple_count)
        return max(0, self.free_end - used_front - _SLOT.size)

    def has_room(self, record_length: int) -> bool:
        return record_length <= self.free_space

    def insert(self, record: bytes) -> int:
        """Insert a record; returns its slot index.

        Raises :class:`PageFormatError` when the record does not fit —
        callers are expected to check :meth:`has_room` (the bulk loader
        starts a fresh page; a conventional engine would error out, which
        is the overflow behaviour §6 discusses for wide tuples).
        """
        if not self.has_room(len(record)):
            raise PageFormatError(
                f"record of {len(record)} bytes does not fit "
                f"(free={self.free_space})")
        self.free_end -= len(record)
        self._buf[self.free_end:self.free_end + len(record)] = record
        _SLOT.pack_into(self._buf, self._slot_offset(self.tuple_count),
                        self.free_end, len(record))
        self.tuple_count += 1
        self._sync_header()
        return self.tuple_count - 1

    def get(self, slot: int) -> bytes:
        """Record bytes stored at ``slot``."""
        if not 0 <= slot < self.tuple_count:
            raise PageFormatError(f"slot {slot} out of range "
                                  f"(page has {self.tuple_count})")
        offset, length = _SLOT.unpack_from(self._buf, self._slot_offset(slot))
        return bytes(self._buf[offset:offset + length])

    def records(self):
        """Yield every record on the page in slot order."""
        for slot in range(self.tuple_count):
            yield self.get(slot)

    def to_bytes(self) -> bytes:
        return bytes(self._buf)
