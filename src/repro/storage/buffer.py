"""Buffer pool: the DBMS-side page cache for loaded engines.

Distinct from the simulated OS page cache in the VFS — a buffer-pool hit
avoids the disk entirely (no I/O charge), while a miss performs a costed
VFS read (which may itself be warm or cold at the OS level). This
two-level arrangement matches the paper's comparators, whose "cold
buffer caches" are called out explicitly in §5.1.4.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.simcost.model import CostModel
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.vfs import VirtualFS


class BufferPool:
    """LRU pool of decoded :class:`SlottedPage` objects."""

    def __init__(self, vfs: VirtualFS, model: CostModel,
                 capacity_pages: int = 1024):
        if capacity_pages <= 0:
            raise StorageError("buffer pool needs at least one page")
        self.vfs = vfs
        self.model = model
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[tuple[str, int], SlottedPage] = OrderedDict()
        self._handles: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def get_page(self, path: str, page_index: int) -> SlottedPage:
        """Fetch a page, reading through the VFS on a miss.

        One persistent handle per file: consecutive page misses read
        sequentially (a table scan does not seek between pages)."""
        key = (path, page_index)
        page = self._pages.get(key)
        if page is not None:
            self.hits += 1
            self._pages.move_to_end(key)
            return page
        self.misses += 1
        handle = self._handles.get(path)
        if handle is None:
            handle = self.vfs.open(path, self.model)
            self._handles[path] = handle
        raw = handle.read_at(page_index * PAGE_SIZE, PAGE_SIZE)
        if len(raw) != PAGE_SIZE:
            raise StorageError(
                f"short page read: {path}[{page_index}] -> {len(raw)} bytes")
        page = SlottedPage(raw)
        self._pages[key] = page
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return page

    def invalidate(self, path: str) -> None:
        """Drop every buffered page of ``path``."""
        stale = [key for key in self._pages if key[0] == path]
        for key in stale:
            del self._pages[key]

    def clear(self) -> None:
        """Empty the pool (models a cold restart)."""
        self._pages.clear()
