"""Storage substrate: virtual filesystem, slotted pages, heap files.

This package plays the role PostgreSQL's storage layer plays in the
paper: raw files live on a :class:`VirtualFS` whose reads are priced by
the cost model (cold vs OS-cache-warm), and loaded engines store binary
tuples in slotted pages inside heap files behind a buffer pool.
"""

from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.record import RecordCodec
from repro.storage.toast import ToastReader, ToastWriter
from repro.storage.vfs import OSPageCache, VirtualFS

__all__ = [
    "VirtualFS",
    "OSPageCache",
    "SlottedPage",
    "PAGE_SIZE",
    "HeapFile",
    "BufferPool",
    "RecordCodec",
    "ToastReader",
    "ToastWriter",
]
