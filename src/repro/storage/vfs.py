"""Virtual filesystem with a simulated OS page cache.

All raw data files and database files live here. Reads are priced by a
:class:`~repro.simcost.model.CostModel`: bytes resident in the simulated
OS page cache are charged at the warm rate, the rest at the cold rate,
and non-sequential repositioning is charged as a seek. The cache is a
property of the *machine* (the VFS), shared by every engine reading the
same files — exactly like a real OS page cache, and the mechanism behind
the paper's "Baseline improves slightly as of the second query mainly
due to file system caching" observation (§5.1.2).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import FileNotFoundInVFS, StorageError
from repro.simcost.model import CostModel

#: Granularity at which the simulated OS caches file contents.
OS_CACHE_BLOCK = 64 * 1024


class OSPageCache:
    """LRU cache of (path, block) residency, in bytes of capacity.

    The cache only tracks *residency* — the actual bytes always come from
    the backing file. ``capacity_bytes=None`` models RAM larger than any
    file in the experiment (the paper's 32 GB vs 11 GB file).
    """

    def __init__(self, capacity_bytes: int | None = None,
                 block_size: int = OS_CACHE_BLOCK):
        if block_size <= 0:
            raise StorageError("block_size must be positive")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self._resident: OrderedDict[tuple[str, int], None] = OrderedDict()

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * self.block_size

    def _capacity_blocks(self) -> int | None:
        if self.capacity_bytes is None:
            return None
        return max(1, self.capacity_bytes // self.block_size)

    def touch(self, path: str, offset: int, length: int) -> tuple[int, int]:
        """Mark a byte range accessed; return ``(warm_bytes, cold_bytes)``.

        Accessed blocks become resident (LRU order updated); eviction keeps
        residency within capacity.
        """
        if length <= 0:
            return (0, 0)
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        warm_blocks = 0
        for block in range(first, last + 1):
            key = (path, block)
            if key in self._resident:
                warm_blocks += 1
                self._resident.move_to_end(key)
            else:
                self._resident[key] = None
        cap = self._capacity_blocks()
        if cap is not None:
            while len(self._resident) > cap:
                self._resident.popitem(last=False)
        total_blocks = last - first + 1
        cold_blocks = total_blocks - warm_blocks
        # Apportion the byte count pro rata across blocks; exactness per
        # block boundary does not affect any experiment shape.
        warm_bytes = round(length * warm_blocks / total_blocks)
        return (warm_bytes, length - warm_bytes)

    def is_resident(self, path: str, offset: int) -> bool:
        return (path, offset // self.block_size) in self._resident

    def invalidate(self, path: str) -> None:
        """Drop every cached block of ``path`` (file deleted/truncated)."""
        stale = [key for key in self._resident if key[0] == path]
        for key in stale:
            del self._resident[key]

    def clear(self) -> None:
        self._resident.clear()


@dataclass
class _FileEntry:
    data: bytearray
    generation: int = 0   # bumped on every mutation; cheap mtime analogue
    rewrites: int = 0     # bumped on non-append mutations (rewrite detection)


class VirtualFS:
    """In-memory filesystem shared by engines on the same "machine"."""

    def __init__(self, os_cache: OSPageCache | None = None):
        self._files: dict[str, _FileEntry] = {}
        self.os_cache = os_cache if os_cache is not None else OSPageCache()
        self._read_observers: dict[str, list] = {}

    # -- read observers (§7 File System Interface) -------------------------
    def add_read_observer(self, path: str, callback) -> None:
        """Invoke ``callback(path, offset, length)`` whenever a
        notifying handle reads ``path`` — the paper's §7 idea of a NoDB
        engine intercepting file-system reads (e.g. a user's text
        editor) to build auxiliary structures opportunistically."""
        self._read_observers.setdefault(path, []).append(callback)

    def remove_read_observer(self, path: str, callback) -> None:
        observers = self._read_observers.get(path, [])
        if callback in observers:
            observers.remove(callback)

    def _notify_read(self, path: str, offset: int, length: int) -> None:
        for callback in self._read_observers.get(path, ()):
            callback(path, offset, length)

    # -- namespace ---------------------------------------------------------
    def create(self, path: str, data: bytes = b"") -> None:
        """Create ``path``; overwriting an existing file counts as a
        rewrite (so engines invalidate their auxiliary structures)."""
        existing = self._files.get(path)
        if existing is None:
            self._files[path] = _FileEntry(bytearray(data))
        else:
            existing.data[:] = data
            existing.generation += 1
            existing.rewrites += 1
        self.os_cache.invalidate(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._entry(path)
        del self._files[path]
        self.os_cache.invalidate(path)

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> int:
        return len(self._entry(path).data)

    def generation(self, path: str) -> int:
        """Mutation counter for ``path`` — an mtime analogue for
        detecting external updates (§4.5)."""
        return self._entry(path).generation

    def rewrite_count(self, path: str) -> int:
        """Counter of *non-append* mutations. A grown file with an
        unchanged rewrite count was appended to — the update kind whose
        auxiliary structures can be extended instead of dropped (§4.5)."""
        return self._entry(path).rewrites

    def import_local(self, os_path: str, vfs_path: str | None = None) -> str:
        """Copy a real on-disk file into the VFS; returns the VFS path."""
        vfs_path = vfs_path or os.path.basename(os_path)
        with open(os_path, "rb") as handle:
            self.create(vfs_path, handle.read())
        return vfs_path

    def export_local(self, vfs_path: str, os_path: str) -> None:
        """Copy a VFS file out to the real filesystem."""
        with open(os_path, "wb") as handle:
            handle.write(bytes(self._entry(vfs_path).data))

    # -- raw (uncosted) access, for tools and tests --------------------------
    def read_bytes(self, path: str) -> bytes:
        return bytes(self._entry(path).data)

    def write_bytes(self, path: str, data: bytes) -> None:
        entry = self._files.get(path)
        if entry is None:
            self.create(path, data)
            self._files[path].generation = 1
            return
        entry.data[:] = data
        entry.generation += 1
        entry.rewrites += 1
        self.os_cache.invalidate(path)

    def append_bytes(self, path: str, data: bytes) -> None:
        """Append without invalidating cached blocks (appends do not make
        previously cached contents stale)."""
        entry = self._entry(path)
        entry.data.extend(data)
        entry.generation += 1

    # -- costed access ----------------------------------------------------
    def open(self, path: str, model: CostModel,
             notify: bool = True) -> "VirtualFile":
        """Open a costed handle. ``notify=False`` marks engine-internal
        handles whose reads should not trigger read observers (an engine
        must not react to its own scans)."""
        self._entry(path)
        return VirtualFile(self, path, model, notify=notify)

    def fault_check(self, path: str, offset: int, length: int,
                    model: CostModel) -> None:
        """Fault-injection hook, called by every costed ``read_at``
        before the read is charged. The base VFS never faults; a
        :class:`~repro.storage.faults.FaultInjectingVFS` overrides this
        with a seeded schedule of transient errors, injected latency
        and truncation — so chaos tests exercise the *real* read path
        rather than a mock. Must either return (possibly after charging
        retries/stalls to ``model``) or raise a typed
        :class:`~repro.errors.StorageError`."""
        return None

    def _entry(self, path: str) -> _FileEntry:
        entry = self._files.get(path)
        if entry is None:
            raise FileNotFoundInVFS(f"no such file in VFS: {path!r}")
        return entry


class VirtualFile:
    """A costed read/write handle onto one VFS file.

    Sequential reads are charged at bandwidth rates only; repositioning
    charges one seek. Each handle tracks its own position, like a file
    descriptor.
    """

    def __init__(self, vfs: VirtualFS, path: str, model: CostModel,
                 notify: bool = True):
        self.vfs = vfs
        self.path = path
        self.model = model
        self.notify = notify
        self._pos = 0

    @property
    def size(self) -> int:
        return self.vfs.size(self.path)

    #: Forward gaps up to this size are read through rather than sought
    #: over — a drive (and the OS readahead) streams past small skips
    #: faster than it can reposition.
    SEQUENTIAL_GAP = 64 * 1024

    def read_at(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging I/O.

        Repositioning charges one seek, except for small forward gaps,
        which are charged as read-through bytes (see SEQUENTIAL_GAP).
        """
        if offset < 0:
            raise StorageError(f"negative offset: {offset}")
        self.vfs.fault_check(self.path, offset, length, self.model)
        entry = self.vfs._entry(self.path)
        end = min(offset + max(length, 0), len(entry.data))
        if end <= offset:
            return b""
        if offset != self._pos:
            gap = offset - self._pos
            if 0 < gap <= self.SEQUENTIAL_GAP:
                self._charge_range(self._pos, gap)
            elif not self.vfs.os_cache.is_resident(self.path, offset):
                # Repositioning onto OS-cached data is a memory access,
                # not a head movement: only cold jumps pay the seek.
                self.model.disk_seek()
        self._charge_range(offset, end - offset)
        self._pos = end
        if self.notify:
            self.vfs._notify_read(self.path, offset, end - offset)
        return bytes(entry.data[offset:end])

    def _charge_range(self, offset: int, length: int) -> None:
        warm, cold = self.vfs.os_cache.touch(self.path, offset, length)
        if warm:
            self.model.disk_read(warm, warm=True)
        if cold:
            self.model.disk_read(cold, warm=False)

    def read_sequential(self, length: int) -> bytes:
        """Read the next ``length`` bytes from the current position."""
        return self.read_at(self._pos, length)

    def seek(self, offset: int) -> None:
        """Move the handle position without touching the disk (the seek
        cost is charged by the next non-sequential read)."""
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def append(self, data: bytes) -> None:
        """Append bytes, charging write bandwidth."""
        self.vfs.append_bytes(self.path, data)
        self.model.disk_write(len(data))

    def write_at(self, offset: int, data: bytes) -> None:
        """Overwrite bytes in place (used by heap pages), charging write
        bandwidth plus a seek when repositioning."""
        entry = self.vfs._entry(self.path)
        if offset + len(data) > len(entry.data):
            entry.data.extend(b"\x00" * (offset + len(data) - len(entry.data)))
        if offset != self._pos:
            self.model.disk_seek()
        entry.data[offset:offset + len(data)] = data
        entry.generation += 1
        entry.rewrites += 1
        self.model.disk_write(len(data))
        self._pos = offset + len(data)
