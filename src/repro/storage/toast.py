"""TOAST: out-of-line storage for oversized tuple values.

Row stores built on slotted pages cannot let a tuple span pages; when a
tuple outgrows the threshold, its largest variable-length values move to
an overflow ("toast") file and the tuple keeps pointers. Queries that
touch a toasted attribute pay an extra fetch — the §6 "Complex Database
Schemas" pathology that makes conventional engines degrade sharply with
wide attributes (Figure 13) while PostgresRaw, which has no page
structure at all, does not.

Pointers are encoded as strings starting with NUL (raw CSV values can
never contain NUL — the tokenizer rejects it), so the record codec
needs no schema changes.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.simcost.model import CostModel
from repro.storage.vfs import VirtualFS

#: Tuples wider than this get their largest string values toasted
#: (PostgreSQL's TOAST_TUPLE_THRESHOLD is ~2 KB).
TOAST_TUPLE_THRESHOLD = 1900

#: Only values at least this long are worth moving out of line.
TOAST_VALUE_MIN = 64

_MARKER = "\x00T"


def is_pointer(value) -> bool:
    return isinstance(value, str) and value.startswith(_MARKER)


def make_pointer(offset: int, length: int) -> str:
    return f"{_MARKER}{offset}:{length}"


def parse_pointer(pointer: str) -> tuple[int, int]:
    try:
        offset_text, length_text = pointer[len(_MARKER):].split(":")
        return int(offset_text), int(length_text)
    except ValueError as exc:
        raise StorageError(f"malformed toast pointer: {pointer!r}") from exc


class ToastWriter:
    """Appends values to the overflow file during bulk load."""

    def __init__(self, vfs: VirtualFS, path: str, model: CostModel):
        self.vfs = vfs
        self.path = path
        self.model = model
        self._handle = None
        self.values_written = 0

    def store(self, value: str) -> str:
        """Move ``value`` out of line; returns the pointer to keep in
        the tuple."""
        if self._handle is None:
            if not self.vfs.exists(self.path):
                self.vfs.create(self.path)
            self._handle = self.vfs.open(self.path, self.model)
        raw = value.encode("utf-8")
        offset = self.vfs.size(self.path)
        self._handle.append(raw)
        self.values_written += 1
        return make_pointer(offset, len(raw))


class ToastReader:
    """Fetches out-of-line values at query time (charged per fetch)."""

    def __init__(self, vfs: VirtualFS, path: str, model: CostModel):
        self.vfs = vfs
        self.path = path
        self.model = model
        self._handle = None

    def fetch(self, pointer: str) -> str:
        offset, length = parse_pointer(pointer)
        if self._handle is None:
            self._handle = self.vfs.open(self.path, self.model)
        self.model.toast_fetch(1)
        return self._handle.read_at(offset, length).decode("utf-8")

    def resolve(self, value):
        """Pass-through for inline values; fetch for pointers."""
        if is_pointer(value):
            return self.fetch(value)
        return value


def toast_values(values: list, families: list[str],
                 writer: ToastWriter,
                 encoded_width,
                 threshold: int = TOAST_TUPLE_THRESHOLD) -> list:
    """Shrink a tuple below ``threshold`` by toasting its largest string
    values (largest first), mirroring PostgreSQL's strategy.

    ``encoded_width`` is a callable giving the record's byte size.
    Returns the (possibly modified) values list.
    """
    if encoded_width(values) <= threshold:
        return values
    candidates = sorted(
        (i for i, (v, fam) in enumerate(zip(values, families))
         if fam == "str" and isinstance(v, str)
         and len(v) >= TOAST_VALUE_MIN and not is_pointer(v)),
        key=lambda i: -len(values[i]))
    for index in candidates:
        values[index] = writer.store(values[index])
        if encoded_width(values) <= threshold:
            break
    return values
