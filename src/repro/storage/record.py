"""Binary tuple (record) encoding for heap pages.

Loaded engines store tuples in the classic row-store shape: a null
bitmap followed by fixed-width fields inline and variable-length fields
as (length, bytes). This is what the bulk loader produces once — the
cost a conventional DBMS pays at load time and PostgresRaw avoids.
"""

from __future__ import annotations

import datetime
import struct

from repro.errors import StorageError
from repro.sql.catalog import Schema

_EPOCH = datetime.date(1970, 1, 1)
_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_DATE = struct.Struct("<i")
_VARLEN = struct.Struct("<H")


class RecordCodec:
    """Encodes/decodes tuples of one schema to/from bytes."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._families = [c.dtype.family for c in schema]
        self._bitmap_bytes = (schema.arity + 7) // 8

    def encode(self, values: tuple | list) -> bytes:
        """Serialize one tuple. ``None`` encodes via the null bitmap."""
        if len(values) != self.schema.arity:
            raise StorageError(
                f"tuple arity {len(values)} != schema arity {self.schema.arity}")
        bitmap = bytearray(self._bitmap_bytes)
        parts: list[bytes] = []
        for i, (value, family) in enumerate(zip(values, self._families)):
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                continue
            if family == "int":
                parts.append(_INT.pack(value))
            elif family == "float":
                parts.append(_FLOAT.pack(value))
            elif family == "date":
                parts.append(_DATE.pack((value - _EPOCH).days))
            elif family == "bool":
                parts.append(b"\x01" if value else b"\x00")
            else:  # str
                raw = value.encode("utf-8")
                if len(raw) > 0xFFFF:
                    raise StorageError("string field longer than 65535 bytes")
                parts.append(_VARLEN.pack(len(raw)) + raw)
        return bytes(bitmap) + b"".join(parts)

    def decode(self, data: bytes) -> tuple:
        """Deserialize one tuple previously produced by :meth:`encode`."""
        bitmap = data[: self._bitmap_bytes]
        offset = self._bitmap_bytes
        out: list = []
        for i, family in enumerate(self._families):
            if bitmap[i // 8] & (1 << (i % 8)):
                out.append(None)
                continue
            if family == "int":
                out.append(_INT.unpack_from(data, offset)[0])
                offset += 8
            elif family == "float":
                out.append(_FLOAT.unpack_from(data, offset)[0])
                offset += 8
            elif family == "date":
                days = _DATE.unpack_from(data, offset)[0]
                out.append(_EPOCH + datetime.timedelta(days))
                offset += 4
            elif family == "bool":
                out.append(data[offset] != 0)
                offset += 1
            else:
                (length,) = _VARLEN.unpack_from(data, offset)
                offset += 2
                out.append(data[offset:offset + length].decode("utf-8"))
                offset += length
        return tuple(out)

    def encoded_width(self, values: tuple | list) -> int:
        """Byte size :meth:`encode` would produce, without building it."""
        width = self._bitmap_bytes
        for value, family in zip(values, self._families):
            if value is None:
                continue
            if family in ("int", "float"):
                width += 8
            elif family == "date":
                width += 4
            elif family == "bool":
                width += 1
            else:
                width += 2 + len(value.encode("utf-8"))
        return width
