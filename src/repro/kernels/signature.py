"""Kernel signatures: the cache key of a compiled scan kernel.

A kernel is generated for one *shape* of scan — the (format, schema,
projected columns, predicate shape) tuple that fully determines the
specialized program. Literal constants and ``?``-parameter values are
deliberately **excluded**: the generated code evaluates the planner's
vectorized predicate (whose parameter closures read their slots at
mask-build time), so re-binding a prepared statement re-uses the same
kernel with zero recompilation.

``scan_kernel_spec`` inspects one planned :class:`~repro.sql.operators.
ScanOp` and returns either a :class:`KernelSpec` (compilable shape) or
a human-readable ineligibility reason that EXPLAIN surfaces as
``kernel: none (<reason>)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.sql import ast_nodes as _ast

#: access classes the code generator knows how to specialize
_ACCESS_KINDS = {
    "RawCsvAccess": "csv",
    "JsonlAccess": "jsonl",
}


@dataclass(frozen=True)
class KernelSpec:
    """Everything the code generator needs, plus the cache identity.

    ``key`` is the full collision-free cache key; ``signature`` is the
    short display form (``<kind>:<hash8>``) shown in EXPLAIN and cost
    ledgers.
    """

    kind: str                 # 'csv' | 'jsonl'
    arity: int
    families: tuple           # per-attribute type family, full schema
    out_attrs: tuple          # SELECT attrs in scan emission order
    where_attrs: tuple        # predicate attrs in planner order
    union_attrs: tuple        # sorted(out | where)
    n_terms: int              # predicate conjunct count (0 = no WHERE)
    has_predicate: bool
    key: str
    signature: str


def _shape(node) -> str:
    """Render one predicate AST as a value-free shape string."""
    if node is None:
        return "_"
    if isinstance(node, _ast.ColumnRef):
        return "c:" + str(node.name).lower()
    if isinstance(node, _ast.Parameter):
        return "?"
    if isinstance(node, _ast.Literal):
        return "lit"
    if isinstance(node, _ast.IntervalLiteral):
        return "interval"
    if isinstance(node, _ast.BinaryOp):
        return f"({_shape(node.left)}{node.op}{_shape(node.right)})"
    if isinstance(node, _ast.UnaryOp):
        return f"({node.op} {_shape(node.operand)})"
    if isinstance(node, _ast.Between):
        neg = "not-" if node.negated else ""
        return (f"({_shape(node.operand)} {neg}between "
                f"{_shape(node.low)},{_shape(node.high)})")
    if isinstance(node, _ast.InList):
        neg = "not-" if node.negated else ""
        items = ",".join(_shape(item) for item in node.items)
        return f"({_shape(node.operand)} {neg}in [{items}])"
    if isinstance(node, _ast.IsNull):
        neg = "not-" if node.negated else ""
        return f"({_shape(node.operand)} is {neg}null)"
    if isinstance(node, _ast.LikeExpr):
        neg = "not-" if node.negated else ""
        return f"({_shape(node.operand)} {neg}like lit)"
    if isinstance(node, _ast.FuncCall):
        args = ",".join(_shape(a) for a in node.args)
        return f"{node.name}({args})"
    if isinstance(node, _ast.CaseExpr):
        return "case"
    return type(node).__name__.lower()


def scan_kernel_spec(scan_op):
    """``(KernelSpec, None)`` when ``scan_op`` has a compilable shape,
    else ``(None, reason)``."""
    access = scan_op.access
    kind = _ACCESS_KINDS.get(type(access).__name__)
    if kind is None:
        if getattr(scan_op, "partitions", None) is not None or \
                type(access).__name__ == "PartitionedAccess":
            return None, "partitioned table"
        return None, f"unsupported access ({type(access).__name__})"
    if not getattr(access, "batch_enabled", False):
        return None, "batch mode off"
    predicate = scan_op.predicate
    if predicate is not None and predicate.vector_fn is None:
        return None, "predicate not vectorizable"

    schema = access.schema
    families = tuple(t.family for t in schema.types)
    out_attrs = tuple(scan_op.needed)
    where_attrs = tuple(predicate.attrs) if predicate is not None else ()
    union_attrs = tuple(sorted(set(out_attrs) | set(where_attrs)))
    n_terms = predicate.n_terms if predicate is not None else 0
    pred_shape = ("&".join(_shape(c) for c in predicate.conjuncts)
                  if predicate is not None else "-")

    key = "|".join((
        kind,
        f"a{schema.arity}",
        ",".join(families),
        "o:" + ",".join(str(a) for a in out_attrs),
        "w:" + ",".join(str(a) for a in where_attrs),
        f"t{n_terms}",
        pred_shape,
    ))
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:8]
    spec = KernelSpec(
        kind=kind,
        arity=schema.arity,
        families=families,
        out_attrs=out_attrs,
        where_attrs=where_attrs,
        union_attrs=union_attrs,
        n_terms=n_terms,
        has_predicate=predicate is not None,
        key=key,
        signature=f"{kind}:{digest}",
    )
    return spec, None
