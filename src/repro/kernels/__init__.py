"""Compiled per-query scan kernels (PAPERS.md: code generation for raw
data processing).

The generic batch pipeline (:mod:`repro.core.scan_batch`) walks the
same tokenize -> convert -> vectorize machinery for every scan. This
package specializes that walk per scan *shape*: for a (format, schema,
projected columns, predicate shape) signature it generates one fused
NumPy program — selective byte-slicing, only-needed-column conversion
and predicate masking in a single pass over a row-block group — and
caches it beside the session's prepared-statement plan cache.

Layering:

- :mod:`repro.kernels.signature` — shape derivation and cache keys
  (parameter slots excluded, so ``?`` re-binds never recompile);
- :mod:`repro.kernels.codegen` — textual source generation +
  ``compile``/``exec``, producing :class:`KernelProgram` entry points;
- :mod:`repro.kernels.cache` — the per-session LRU ``KernelCache``,
  invalidated on catalog ``stats_epoch`` bumps;
- :func:`attach_kernels` — walks a planned query's scan leaves and
  pins programs (or ineligibility reasons) onto each ``ScanOp``, which
  EXPLAIN surfaces as ``kernel: <sig> (hit|compiled)`` /
  ``kernel: none (<reason>)``.

The kernel path is gated by ``config.scan_kernels`` (env
``REPRO_SCAN_KERNELS``) and is contractually bit-identical to the
generic path — results, PM/cache contents, cost counters and the
virtual clock — at any worker count; unsupported block states bail out
per block to the generic code, never per query.
"""

from __future__ import annotations

from repro.kernels.cache import KernelCache
from repro.kernels.codegen import (
    KERNEL_BAILOUT,
    KernelProgram,
    compile_kernel,
)
from repro.kernels.signature import KernelSpec, scan_kernel_spec

__all__ = [
    "KERNEL_BAILOUT",
    "KernelCache",
    "KernelProgram",
    "KernelSpec",
    "attach_kernels",
    "compile_kernel",
    "iter_scan_ops",
    "kernel_report",
    "scan_kernel_spec",
]


def iter_scan_ops(root):
    """Every :class:`~repro.sql.operators.ScanOp` reachable from
    ``root`` (a planned operator tree), discovered generically so new
    operator kinds never silently hide their scan leaves."""
    from repro.sql.operators import PlanOp, ScanOp

    stack = [root]
    seen: set[int] = set()
    while stack:
        op = stack.pop()
        if id(op) in seen or not isinstance(op, PlanOp):
            continue
        seen.add(id(op))
        if isinstance(op, ScanOp):
            yield op
            continue
        for value in vars(op).values():
            if isinstance(value, PlanOp):
                stack.append(value)
            elif isinstance(value, (list, tuple)):
                stack.extend(v for v in value if isinstance(v, PlanOp))


def attach_kernels(kernels: KernelCache, model, config, planned,
                   stats_epoch: int) -> int:
    """Attach compiled kernels to every eligible scan leaf of
    ``planned`` (a :class:`~repro.sql.planner.PlannedQuery`).

    Returns the number of kernel-equipped scans. Each ``ScanOp`` gets
    ``kernel`` (a :class:`KernelProgram` or None) and ``kernel_info``
    (the EXPLAIN string) set. A freshly generated program charges one
    zero-priced ``kernel_compiles`` event against ``model``; per-
    execution ``kernel_hits`` are charged by the session at execute
    time, so re-executes of a prepared statement show hits with no
    recompiles.
    """
    attached = 0
    enabled = bool(getattr(config, "scan_kernels", False))
    if model is None:  # pragma: no cover - defensive
        enabled = False
    for scan_op in iter_scan_ops(planned.root):
        if not enabled:
            scan_op.kernel = None
            scan_op.kernel_info = "none (scan_kernels disabled)"
            continue
        spec, reason = scan_kernel_spec(scan_op)
        if spec is None:
            scan_op.kernel = None
            scan_op.kernel_info = f"none ({reason})"
            continue
        program, how = kernels.lookup(spec, stats_epoch)
        if how == "compiled":
            model.kernel_compile()
        scan_op.kernel = program
        scan_op.kernel_info = f"{spec.signature} ({how})"
        attached += 1
    return attached


def kernel_report(planned) -> list[str]:
    """EXPLAIN annotation lines for a kernel-attached plan: one
    ``kernel: <sig> (hit|compiled)`` / ``kernel: none (<reason>)`` row
    per scan leaf. Rendered by the session as extra ``EXPLAIN`` rows —
    kernel state is session-local, so it stays out of the plan summary
    dict (see ``ScanOp.describe``)."""
    lines: list[str] = []
    for scan_op in iter_scan_ops(planned.root):
        info = getattr(scan_op, "kernel_info", None)
        if info is None:
            continue
        table = getattr(scan_op, "table_name", None)
        suffix = f" [{table}]" if table else ""
        lines.append(f"kernel: {info}{suffix}")
    return lines
