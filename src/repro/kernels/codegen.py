"""Scan-kernel code generation.

For one :class:`~repro.kernels.signature.KernelSpec` this module emits
the textual source of up to two specialized entry points, compiles it
with :func:`compile`/``exec`` and wraps the functions in a
:class:`KernelProgram`:

``indexed(scan, handle, block, row0, row1[, predicate, collector])``
    The warm fast path over one fully-mapped, fully-cached row block.
    It first probes its preconditions with **side-effect-free** peeks
    (``BinaryCache.peek``, ``PositionalMap.has_line_spans``) and
    returns :data:`KERNEL_BAILOUT` if any fails — the caller then runs
    the generic block path, whose charges are untouched because the
    probes charged nothing and moved no LRU state. Once committed, the
    kernel replays the generic path's priced events in the generic
    order (tuple overhead, map accesses, cache reads, predicate,
    tuple forming) while serving values straight from the typed cache
    arrays — no per-block zero-fill, mask copies, or ``_IndexedBlockState``
    setup.

``stream(scan, ops, row0, starts, ends, buffer, buffer_base)``
    (CSV only.) A faithful specialization of
    ``BatchCsvScan._compute_stream_group`` with the locate-state
    machine (``_stream_transitions``) folded to literal charge tables
    at compile time and the per-attribute control flow unrolled. It
    runs wherever the generic compute runs — including on
    ``ScanWorkerPool`` workers against a ``RecordingModel`` view — and
    delegates conversion, predicate evaluation and stat/PM/cache
    staging to the scan's own methods, so behavior is identical by
    construction.

Bit-identity is the contract: for any input the kernel path must leave
the same results, PM/cache contents, counters and virtual clock as the
generic pipeline (``tests/test_kernels.py`` enforces this
differentially).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

import numpy as np

from repro.core.scan_batch import (
    KERNEL_BAILOUT,
    BlockTokenizer,
    _Column,
    _stream_transitions,
    block_field_spans,
    block_span_forward,
)
from repro.kernels.signature import KernelSpec
from repro.sql.batch import ColumnBatch, object_nulls


@dataclass
class KernelProgram:
    """One compiled kernel: the signature, the generated source (kept
    for introspection/debugging) and the entry points."""

    signature: str
    source: str
    indexed: object = None    # callable | None
    stream: object = None     # callable | None
    spec: KernelSpec = field(default=None, repr=False)


class _Emitter:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.depth + line) if line else "")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


# ---------------------------------------------------------------------------
# CSV: indexed fast path
# ---------------------------------------------------------------------------
def _emit_csv_indexed(e: _Emitter, spec: KernelSpec) -> None:
    union = spec.union_attrs
    where = spec.where_attrs
    out = spec.out_attrs
    out_only = tuple(a for a in out if a not in where)
    e.emit("def kernel_indexed(scan, handle, block, row0, row1):")
    e.indent()
    e.emit("if scan.collector is not None:")
    e.emit("    return KERNEL_BAILOUT")
    e.emit("cache = scan.cache")
    e.emit("pm = scan.pm")
    e.emit("if cache is None or pm is None:")
    e.emit("    return KERNEL_BAILOUT")
    e.emit("if not pm.has_line_spans(row0, row1):")
    e.emit("    return KERNEL_BAILOUT")
    e.emit("n = row1 - row0")
    e.emit("# probe (side-effect-free): WHERE columns must be fully")
    e.emit("# cached, typed and NULL-free; SELECT-only columns need")
    e.emit("# typed NULL-free coverage of the qualifying rows only —")
    e.emit("# selective parsing (§4.1) never caches more of them.")
    e.emit("data = {}")
    e.emit(f"for attr in {where!r}:")
    e.emit("    cb = cache.peek(attr, block)")
    e.emit("    if cb is None or cb.nrows < n:")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    if not cb.mask[:n].all():")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    td = cb.typed_data()")
    e.emit("    if td is None or td[1][:n].any():")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    data[attr] = td[0]")
    if spec.has_predicate:
        e.emit("# vector_fn is pure (charges nothing): evaluating it")
        e.emit("# during the probe lets the qualifying-row coverage of")
        e.emit("# the SELECT columns be checked before any commitment;")
        e.emit("# the generic predicate charge is replayed below.")
        e.emit("arrays = {}")
        e.emit("nulls = {}")
        e.emit(f"for attr in {where!r}:")
        e.emit("    arrays[attr] = data[attr][:n]")
        e.emit("    nulls[attr] = np.zeros(n, dtype=bool)")
        e.emit("qual = scan.predicate.vector_fn(arrays, nulls, n)")
    else:
        e.emit("qual = np.ones(n, dtype=bool)")
    e.emit("qual_idx = np.flatnonzero(qual)")
    e.emit("nqual = len(qual_idx)")
    e.emit(f"for attr in {out_only!r}:")
    e.emit("    cb = cache.peek(attr, block)")
    e.emit("    if cb is None or cb.nrows < n:")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    m = cb.mask[:n]")
    e.emit("    if not m[qual].all():")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    td = cb.typed_data()")
    e.emit("    if td is None or td[1][:n][m].any():")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    data[attr] = td[0]")
    e.emit("# committed: replay the generic warm charge sequence")
    e.emit("model = scan.model")
    e.emit("model.tuple_overhead(n)")
    e.emit("pm.line_spans_block(row0, row1)")
    e.emit(f"for attr in {union!r}:")
    e.emit("    cache.get(attr, block)")
    e.emit("if scan.config.enable_positional_map:")
    e.indent()
    e.emit(f"prefetch = set({union!r})")
    e.emit(f"for attr in {union!r}:")
    e.emit("    prefetch.add(attr + 1)")
    e.emit("    lo, hi = pm.nearest_indexed(block, attr)")
    e.emit("    if lo is not None:")
    e.emit("        prefetch.add(lo)")
    e.emit("    if hi is not None:")
    e.emit("        prefetch.add(hi)")
    e.emit("for attr in sorted(prefetch):")
    e.emit(f"    if 0 <= attr < {spec.arity}:")
    e.emit("        pm.positions(block, attr)")
    e.dedent()
    for attr in where:
        e.emit("model.cache_read(n)")
    if spec.has_predicate:
        e.emit(f"model.predicate({spec.n_terms} * n)")
    e.emit("out_columns = []")
    e.emit("out_nulls = []")
    for attr in out:
        e.emit("model.cache_read(nqual)")
        if spec.families[attr] == "date":
            e.emit(f"_picked = data[{attr}][:n][qual_idx]")
            e.emit("_vals = np.empty(nqual, dtype=object)")
            e.emit("if nqual:")
            e.emit("    _vals[:] = [datetime.date.fromordinal(v)")
            e.emit("                for v in _picked.tolist()]")
            e.emit("out_columns.append(_vals)")
        else:
            e.emit(f"out_columns.append(data[{attr}][:n][qual_idx])")
        e.emit("out_nulls.append(None)")
    e.emit(f"model.tuple_form({len(out)} * nqual)")
    if out:
        e.emit("if nqual == 0:")
        e.emit(f"    return ColumnBatch([[] for _ in range({len(out)})], 0)")
    e.emit("return ColumnBatch(out_columns, nqual, out_nulls)")
    e.dedent()


# ---------------------------------------------------------------------------
# CSV: streaming-group specialization
# ---------------------------------------------------------------------------
def _emit_csv_stream(e: _Emitter, spec: KernelSpec) -> None:
    union = spec.union_attrs
    where = spec.where_attrs
    out = spec.out_attrs
    arity = spec.arity
    max_where = max(where) if where else -1
    max_union = union[-1] if union else -1
    upto_w = max_where if where else -1
    charges_w, state_w = _stream_transitions(where, arity)
    coverage_w = state_w[1]
    charges_s, _ = _stream_transitions(out, arity, state_w)

    e.emit("def kernel_stream(scan, ops, row0, starts, ends, buffer,")
    e.emit("                  buffer_base):")
    e.indent()
    e.emit("model = scan.model")
    e.emit("pm = scan.pm")
    e.emit("config = scan.config")
    e.emit("n = len(starts)")
    e.emit("block_size = config.row_block_size")
    e.emit("block = row0 // block_size")
    e.emit("first_in_block = row0 - block * block_size")
    e.emit("model.tuple_overhead(n)")
    e.emit("if pm is not None:")
    e.emit('    ops.append(("lines", starts, row0, n))')
    e.emit("tok = BlockTokenizer(buffer, buffer_base, scan.dialect)")
    e.emit("columns = {}")
    e.emit("span_starts = span_ends = None")
    if where:
        e.emit("span_starts, span_ends, _ = block_field_spans(")
        e.emit(f"    tok, starts, ends, {upto_w})")
        e.emit(f"scan._charge_stream_tokenize(tok, {charges_w!r}, starts,")
        e.emit("                             ends)")
        for attr in where:
            fam = spec.families[attr]
            e.emit(f"column = _Column(n, {fam!r})")
            e.emit(f"values, typed = scan._convert_values({attr}, buffer,")
            e.emit(f"    buffer_base, span_starts[:, {attr}],")
            e.emit(f"    span_ends[:, {attr}], want_list=False)")
            e.emit("column.conv_idx = np.arange(n)")
            e.emit("column.conv_values = values")
            e.emit("column.conv_typed = typed")
            e.emit("if typed is not None:")
            e.emit("    column.typed = typed")
            e.emit("else:")
            e.emit("    arr = np.empty(n, dtype=object)")
            e.emit("    if n:")
            e.emit("        arr[:] = values")
            e.emit("    column.set_values(arr)")
            e.emit("    column.nulls = scan._null_mask(values)")
            e.emit(f"columns[{attr}] = column")
    if spec.has_predicate:
        e.emit("qual = scan._evaluate_predicate(columns, n)")
    else:
        e.emit("qual = np.ones(n, dtype=bool)")
    e.emit("qual_idx = np.flatnonzero(qual)")
    e.emit("nqual = len(qual_idx)")
    e.emit("sel_starts = sel_ends = None")
    if out and max_union > upto_w:
        e.emit("if nqual:")
        e.indent()
        e.emit("q_line_starts = starts[qual_idx]")
        e.emit("q_line_ends = ends[qual_idx]")
        if upto_w < 0:
            e.emit("sel_starts, sel_ends, _ = block_field_spans(")
            e.emit(f"    tok, q_line_starts, q_line_ends, {max_union})")
        else:
            e.emit(f"base_pos = span_starts[qual_idx, {upto_w}]")
            e.emit("sel_starts, sel_ends, _ = block_span_forward(")
            e.emit(f"    tok, base_pos, {max_union - upto_w}, q_line_ends)")
        e.emit(f"scan._charge_stream_tokenize(tok, {charges_s!r},")
        e.emit("                             q_line_starts, q_line_ends)")
        e.dedent()
    e.emit("out_columns = []")
    e.emit("out_nulls = []")
    for attr in out:
        fam = spec.families[attr]
        if attr in where:
            e.emit(f"arr, mask = scan._output_column(columns[{attr}],")
            e.emit("                                qual_idx)")
            e.emit("out_columns.append(arr)")
            e.emit("out_nulls.append(mask)")
            continue
        e.emit("if nqual == 0:")
        e.indent()
        e.emit(f"column = _Column(n, {fam!r})")
        e.emit("column.conv_idx = np.empty(0, dtype=np.int64)")
        e.emit("column.conv_values = []")
        e.emit(f"columns[{attr}] = column")
        e.emit("out_columns.append([])")
        e.emit("out_nulls.append(None)")
        e.dedent()
        e.emit("else:")
        e.indent()
        if upto_w < 0:
            e.emit(f"s_col = sel_starts[:, {attr}]")
            e.emit(f"e_col = sel_ends[:, {attr}]")
        elif attr <= upto_w:
            e.emit(f"s_col = span_starts[qual_idx, {attr}]")
            e.emit(f"e_col = span_ends[qual_idx, {attr}]")
        else:
            e.emit(f"s_col = sel_starts[:, {attr - upto_w}]")
            e.emit(f"e_col = sel_ends[:, {attr - upto_w}]")
        e.emit(f"values, sub_typed = scan._convert_values({attr}, buffer,")
        e.emit("    buffer_base, s_col, e_col,")
        e.emit("    want_list=scan.collector is not None)")
        e.emit(f"column = _Column(n, {fam!r})")
        e.emit("if values is not None:")
        e.emit("    arr = np.empty(n, dtype=object)")
        e.emit("    arr[qual_idx] = values")
        e.emit("    column.set_values(arr)")
        e.emit("column.conv_idx = qual_idx")
        e.emit("column.conv_values = values")
        e.emit("column.conv_typed = sub_typed")
        e.emit(f"columns[{attr}] = column")
        if fam == "date":
            e.emit("out_columns.append(values)")
        else:
            e.emit("if sub_typed is not None:")
            e.emit("    out_columns.append(sub_typed)")
            e.emit("else:")
            e.emit("    out_columns.append(values)")
        e.emit("out_nulls.append(None)")
        e.dedent()
    e.emit(f"model.tuple_form({len(out)} * nqual)")
    e.emit("if scan.collector is not None:")
    e.emit('    ops.append(("collect",')
    e.emit("                scan._stage_stream_stats(columns, qual, n)))")
    e.emit("if config.enable_positional_map and pm is not None:")
    e.indent()
    e.emit("staged = scan._stage_stream_positions(")
    e.emit("    block, first_in_block + n, first_in_block, n, starts,")
    e.emit(f"    ends, qual, span_starts, span_ends, sel_starts, {upto_w},")
    e.emit(f"    {max_where}, {coverage_w})")
    e.emit("if staged is not None:")
    e.emit("    ops.append(staged)")
    e.dedent()
    e.emit("if scan.cache is not None:")
    e.indent()
    e.emit("rows_in_block = first_in_block + n")
    e.emit(f"for attr in {union!r}:")
    e.indent()
    e.emit("column = columns.get(attr)")
    e.emit("if column is None or column.conv_idx is None or \\")
    e.emit("        not len(column.conv_idx):")
    e.emit("    continue")
    e.emit('ops.append(("cache", attr, block, rows_in_block,')
    e.emit("            column.conv_idx + first_in_block,")
    e.emit("            column.conv_values, column.conv_typed,")
    e.emit("            scan._families[attr]))")
    e.dedent()
    e.dedent()
    if out:
        e.emit("if nqual == 0:")
        e.emit(f"    return ColumnBatch([[] for _ in range({len(out)})], 0)")
    e.emit("return ColumnBatch(out_columns, nqual, out_nulls)")
    e.dedent()


# ---------------------------------------------------------------------------
# JSONL: indexed fast path
# ---------------------------------------------------------------------------
def _emit_jsonl_indexed(e: _Emitter, spec: KernelSpec) -> None:
    union = spec.union_attrs
    where = spec.where_attrs
    out = spec.out_attrs
    e.emit("def kernel_indexed(scan, handle, block, row0, row1,")
    e.emit("                   predicate, collector):")
    e.indent()
    e.emit("if collector is not None:")
    e.emit("    return KERNEL_BAILOUT")
    e.emit("cache = scan.cache")
    e.emit("pm = scan.pm")
    e.emit("if cache is None or pm is None:")
    e.emit("    return KERNEL_BAILOUT")
    e.emit("if not pm.has_line_spans(row0, row1):")
    e.emit("    return KERNEL_BAILOUT")
    e.emit("n = row1 - row0")
    e.emit("# probe (side-effect-free): WHERE columns fully cached;")
    e.emit("# SELECT-only columns cached at the qualifying rows —")
    e.emit("# selective parsing (§4.1) never caches more of them.")
    e.emit("blocks = {}")
    e.emit(f"for attr in {where!r}:")
    e.emit("    cb = cache.peek(attr, block)")
    e.emit("    if cb is None or cb.nrows < n or not cb.mask[:n].all():")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    blocks[attr] = cb")
    e.emit("columns = {}")
    if where:
        e.emit("all_idx = np.arange(n)")
        for attr in where:
            e.emit("values = np.empty(n, dtype=object)")
            e.emit(f"values[all_idx] = blocks[{attr}].values_at(all_idx)")
            e.emit(f"columns[{attr}] = values")
    if spec.has_predicate:
        e.emit("# vector_fn is pure (charges nothing); the generic")
        e.emit("# predicate charge is replayed below, once committed.")
        e.emit("arrays = {}")
        e.emit("nulls = {}")
        e.emit(f"for attr in {where!r}:")
        e.emit("    arrays[attr] = columns[attr]")
        e.emit("    nulls[attr] = object_nulls(columns[attr])")
        e.emit("qual = predicate.vector_fn(arrays, nulls, n)")
    else:
        e.emit("qual = np.ones(n, dtype=bool)")
    e.emit("qual_idx = np.flatnonzero(qual)")
    e.emit("nqual = len(qual_idx)")
    out_only = tuple(a for a in out if a not in where)
    e.emit(f"for attr in {out_only!r}:")
    e.emit("    cb = cache.peek(attr, block)")
    e.emit("    if cb is None or cb.nrows < n:")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    if not cb.mask[:n][qual].all():")
    e.emit("        return KERNEL_BAILOUT")
    e.emit("    blocks[attr] = cb")
    e.emit("# committed: replay the generic warm charge sequence")
    e.emit("model = scan.model")
    e.emit("model.tuple_overhead(n)")
    e.emit("pm.line_spans_block(row0, row1)")
    e.emit(f"for attr in {union!r}:")
    e.emit("    cache.get(attr, block)")
    e.emit("if scan.config.enable_positional_map:")
    e.emit(f"    for attr in {union!r}:")
    e.emit("        pm.positions(block, attr)")
    for attr in where:
        e.emit("model.cache_read(n)")
    if spec.has_predicate:
        e.emit(f"model.predicate({spec.n_terms} * n)")
    for attr in out_only:
        e.emit("values = np.empty(n, dtype=object)")
        e.emit("if nqual:")
        e.emit(f"    values[qual_idx] = blocks[{attr}].values_at(qual_idx)")
        e.emit("    model.cache_read(nqual)")
        e.emit(f"columns[{attr}] = values")
    e.emit(f"model.tuple_form({len(out)} * nqual)")
    e.emit(f"out_columns = [columns[attr][qual_idx] for attr in {out!r}]")
    e.emit("return ColumnBatch(out_columns, nqual)")
    e.dedent()


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------
def compile_kernel(spec: KernelSpec) -> KernelProgram:
    """Generate, compile and wrap the kernel program for ``spec``."""
    e = _Emitter()
    e.emit(f"# scan kernel {spec.signature}")
    e.emit(f"# key: {spec.key}")
    if spec.kind == "csv":
        _emit_csv_indexed(e, spec)
        e.emit()
        _emit_csv_stream(e, spec)
    else:
        _emit_jsonl_indexed(e, spec)
    source = e.source()
    namespace = {
        "np": np,
        "datetime": datetime,
        "ColumnBatch": ColumnBatch,
        "BlockTokenizer": BlockTokenizer,
        "block_field_spans": block_field_spans,
        "block_span_forward": block_span_forward,
        "_Column": _Column,
        "KERNEL_BAILOUT": KERNEL_BAILOUT,
        "object_nulls": object_nulls,
    }
    code = compile(source, f"<scan-kernel {spec.signature}>", "exec")
    exec(code, namespace)
    return KernelProgram(
        signature=spec.signature,
        source=source,
        indexed=namespace.get("kernel_indexed"),
        stream=namespace.get("kernel_stream"),
        spec=spec,
    )
