"""The plan-adjacent kernel cache.

One :class:`KernelCache` lives on each :class:`~repro.api.session.
Session`, beside the prepared-statement plan cache: preparing (or
re-planning) a statement looks its scan shapes up here, compiling on
miss. The cache is keyed by the full collision-free kernel key (see
:mod:`repro.kernels.signature`) and invalidated wholesale on the same
catalog ``stats_epoch`` bumps that trigger re-planning — DDL, drops,
renames, statistics arrival — so a kernel can never outlive the plan
shape it was generated for. ``?``-parameter re-binds do not touch the
cache at all: parameter values are outside the kernel key and are read
by the predicate closures at execution time.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.kernels.codegen import KernelProgram, compile_kernel
from repro.kernels.signature import KernelSpec

#: kernels retained per session (LRU); shapes are few in practice
DEFAULT_CAPACITY = 64


class KernelCache:
    """LRU cache of compiled :class:`KernelProgram` objects."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._programs: OrderedDict[str, KernelProgram] = OrderedDict()
        self.stats_epoch: int | None = None
        self.hits = 0
        self.compiles = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._programs)

    def lookup(self, spec: KernelSpec,
               stats_epoch: int) -> tuple[KernelProgram, str]:
        """``(program, 'hit'|'compiled')`` for ``spec``, compiling on
        miss. A ``stats_epoch`` different from the one the cached
        programs were built under clears the cache first — the same
        staleness rule the plan cache applies per statement."""
        if self.stats_epoch != stats_epoch:
            if self._programs:
                self.invalidations += 1
            self._programs.clear()
            self.stats_epoch = stats_epoch
        program = self._programs.get(spec.key)
        if program is not None:
            self._programs.move_to_end(spec.key)
            self.hits += 1
            return program, "hit"
        program = compile_kernel(spec)
        self._programs[spec.key] = program
        self.compiles += 1
        while len(self._programs) > self.capacity:
            self._programs.popitem(last=False)
        return program, "compiled"
