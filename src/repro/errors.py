"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them (SQL front end, catalog, storage, formats).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(ReproError):
    """Base class for errors in the SQL front end."""


class LexerError(SQLError):
    """Raised when the SQL lexer meets a character it cannot tokenize."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser meets an unexpected token."""

    def __init__(self, message: str, token: object | None = None):
        super().__init__(message)
        self.token = token


class PlanningError(SQLError):
    """Raised when a parsed query cannot be turned into a plan.

    Typical causes: unknown table or column references, unsupported
    constructs, or ambiguous column names across joined tables.
    """


class CatalogError(ReproError):
    """Raised for catalog-level problems (duplicate/unknown tables)."""


class TypeError_(ReproError):
    """Raised when a value cannot be converted to its declared SQL type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class StorageError(ReproError):
    """Base class for storage-layer errors (pages, heap files, VFS)."""


class FileNotFoundInVFS(StorageError):
    """Raised when a virtual file path does not exist."""


class PageFormatError(StorageError):
    """Raised when a slotted page is malformed or a slot is out of range."""


class FormatError(ReproError):
    """Base class for raw-file format errors (CSV, FITS)."""


class CSVFormatError(FormatError):
    """Raised when a CSV row cannot be tokenized against the schema."""

    def __init__(self, message: str, row_number: int | None = None):
        super().__init__(message)
        self.row_number = row_number


class FITSFormatError(FormatError):
    """Raised when a FITS file or header is malformed."""


class JSONLFormatError(FormatError):
    """Raised when a JSON-Lines row cannot be tokenized."""

    def __init__(self, message: str, row_number: int | None = None):
        super().__init__(message)
        self.row_number = row_number


class ExecutionError(ReproError):
    """Raised when a query plan fails during execution."""


class UnknownColumnError(ReproError, ValueError):
    """Raised when a result column is looked up by a name it does not
    have. Carries the requested name and the available columns so the
    message can point at the fix. Also a :class:`ValueError`, which the
    bare ``list.index`` used to raise, so existing handlers keep
    working."""

    def __init__(self, name: str, available: list[str]):
        listing = ", ".join(available) if available else "(none)"
        super().__init__(
            f"unknown column {name!r}; available columns: {listing}")
        self.name = name
        self.available = list(available)


class BindError(ReproError):
    """Raised when statement parameters cannot be bound (wrong count,
    or execution reached an unbound ``?`` placeholder)."""


class BudgetError(ReproError):
    """Raised when a component is configured with an unusable budget."""
