"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them (SQL front end, catalog, storage, formats).

Structured failure reporting: every class carries a stable ``code``
(machine-readable, never derived from the message text) and every
instance a ``context`` dict. Raise sites that know where a failure
happened attach what they know — file path, byte offset, row number,
table name — via :func:`annotate`; outer layers (the scan chokepoints)
fill in the coarser keys without overwriting the inner, more precise
ones. Error policies and server front ends can therefore react to
failures without parsing message strings, while ``str(exc)`` stays
exactly the human-facing message it always was.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``code`` is a stable machine-readable identifier for the failure
    class; ``context`` holds structured details (``path``, ``table``,
    ``row_number``, ``byte_offset``, ...) attached via
    :func:`annotate`. Neither affects ``str(exc)``.
    """

    code = "REPRO_ERROR"

    def __init__(self, *args):
        super().__init__(*args)
        self.context: dict = {}


def annotate(exc: ReproError, **context) -> ReproError:
    """Attach structured context to ``exc`` and return it.

    Keys already present are kept — the innermost raise site knows the
    most (exact byte offset, row number); outer chokepoints only fill
    in what is still missing (file path, table name). Safe to call on
    errors that predate the ``context`` attribute."""
    existing = getattr(exc, "context", None)
    if existing is None:
        existing = exc.context = {}
    for key, value in context.items():
        existing.setdefault(key, value)
    return exc


class SQLError(ReproError):
    """Base class for errors in the SQL front end."""

    code = "SQL"


class LexerError(SQLError):
    """Raised when the SQL lexer meets a character it cannot tokenize."""

    code = "SQL_LEX"

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser meets an unexpected token."""

    code = "SQL_PARSE"

    def __init__(self, message: str, token: object | None = None):
        super().__init__(message)
        self.token = token


class PlanningError(SQLError):
    """Raised when a parsed query cannot be turned into a plan.

    Typical causes: unknown table or column references, unsupported
    constructs, or ambiguous column names across joined tables.
    """

    code = "SQL_PLAN"


class CatalogError(ReproError):
    """Raised for catalog-level problems (duplicate/unknown tables)."""

    code = "CATALOG"


class TypeError_(ReproError):
    """Raised when a value cannot be converted to its declared SQL type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    code = "TYPE"


class StorageError(ReproError):
    """Base class for storage-layer errors (pages, heap files, VFS)."""

    code = "STORAGE"


class FileNotFoundInVFS(StorageError):
    """Raised when a virtual file path does not exist."""

    code = "STORAGE_NOT_FOUND"


class PageFormatError(StorageError):
    """Raised when a slotted page is malformed or a slot is out of range."""

    code = "STORAGE_PAGE"


class TransientIOError(StorageError):
    """A retryable I/O failure (injected or modeled). The storage layer
    retries these with bounded backoff; one escaping to a caller means
    the retry budget is disabled."""

    code = "IO_TRANSIENT"


class IOFaultError(StorageError):
    """A non-transient I/O failure: the bounded retry loop exhausted its
    budget (or the fault schedule marked the region permanently bad).
    Carries ``path``/``byte_offset`` context for the failing read."""

    code = "IO_FAULT"


class AuxiliaryIntegrityError(StorageError):
    """An auxiliary structure (positional-map spill chunk, binary-cache
    block, ``__zones__/`` sidecar) failed an integrity check. These are
    quarantined and rebuilt from the raw file — an instance escaping to
    a caller is a bug, since auxiliary state is always rebuildable."""

    code = "AUX_INTEGRITY"


class FormatError(ReproError):
    """Base class for raw-file format errors (CSV, FITS)."""

    code = "FORMAT"


class CSVFormatError(FormatError):
    """Raised when a CSV row cannot be tokenized against the schema."""

    code = "CSV_FORMAT"

    def __init__(self, message: str, row_number: int | None = None):
        super().__init__(message)
        self.row_number = row_number
        if row_number is not None:
            self.context.setdefault("row_number", row_number)


class FITSFormatError(FormatError):
    """Raised when a FITS file or header is malformed."""

    code = "FITS_FORMAT"


class JSONLFormatError(FormatError):
    """Raised when a JSON-Lines row cannot be tokenized."""

    code = "JSONL_FORMAT"

    def __init__(self, message: str, row_number: int | None = None):
        super().__init__(message)
        self.row_number = row_number
        if row_number is not None:
            self.context.setdefault("row_number", row_number)


class ExecutionError(ReproError):
    """Raised when a query plan fails during execution."""

    code = "EXECUTION"


class QueryTimeoutError(ExecutionError):
    """Raised when a query exceeds its deadline (``cursor.execute(...,
    timeout=)`` or ``config.query_deadline``, in virtual seconds). The
    scheduler enforces deadlines at batch boundaries: the job's live
    iterator is closed through the abandoned-scan cleanup contract, so
    partial positional-map / cache state stays consistent and the
    partial cost is already charged to the session ledger."""

    code = "QUERY_TIMEOUT"


class AdmissionError(ReproError):
    """Base class for admission-time rejections: the query was refused
    *before* any engine work happened, so retrying it later is always
    safe and nothing was charged to any ledger."""

    code = "ADMISSION"


class ServerBusyError(AdmissionError):
    """The admission gate and its bounded accept queue are both
    saturated (``max_in_flight`` running queries plus ``max_queued``
    waiting). Raised instead of queueing without bound — the typed
    back-pressure signal a network front end forwards to clients as
    ``SERVER_BUSY`` so they can retry with backoff."""

    code = "SERVER_BUSY"


class QuotaExceededError(AdmissionError):
    """A tenant's virtual-cost quota is exhausted. Enforced at
    admission time: queries already streaming are allowed to finish
    (their cost keeps accruing to the tenant ledger), but no new query
    is admitted for the tenant until its quota is raised or reset."""

    code = "QUOTA_EXCEEDED"


class UnknownColumnError(ReproError, ValueError):
    """Raised when a result column is looked up by a name it does not
    have. Carries the requested name and the available columns so the
    message can point at the fix. Also a :class:`ValueError`, which the
    bare ``list.index`` used to raise, so existing handlers keep
    working."""

    code = "UNKNOWN_COLUMN"

    def __init__(self, name: str, available: list[str]):
        listing = ", ".join(available) if available else "(none)"
        super().__init__(
            f"unknown column {name!r}; available columns: {listing}")
        self.name = name
        self.available = list(available)


class BindError(ReproError):
    """Raised when statement parameters cannot be bound (wrong count,
    or execution reached an unbound ``?`` placeholder)."""

    code = "BIND"


class BudgetError(ReproError):
    """Raised when a component is configured with an unusable budget."""

    code = "BUDGET"
