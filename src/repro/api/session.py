"""Sessions and prepared statements — the ``repro.connect()`` surface.

A :class:`Session` attaches to one engine (any :class:`repro.Database`
subclass) and hands out :class:`~repro.api.cursor.Cursor` objects. The
paper's usage model (§3.1) is "point at the file and query" — so the
session removes the remaining per-query ceremony: statements prepare
once (parse + plan cached in a :class:`PreparedStatement`, motivated by
caching compiled query artifacts across invocations), re-execution
binds ``?`` parameters into the cached physical plan with **zero**
parse/plan work, and results stream through the engine's shared
:class:`~repro.api.scheduler.Scheduler` so many sessions can query one
engine concurrently under a single admission gate.

Cost scoping: every job charges its own clock/counter deltas (see the
scheduler), and the session aggregates its jobs — ``session.elapsed()``
/ ``session.counters()`` are this client's share of the engine's work.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Sequence

from repro.api.exceptions import (
    InterfaceError,
    OperationalError,
    ProgrammingError,
    translate_errors,
)
from repro.api.scheduler import QueryJob
from repro.kernels import KernelCache, attach_kernels, kernel_report
from repro.sql.ast_nodes import Explain, ParamBinding, Select, is_ddl
from repro.sql.executor import QueryResult, counters_delta, explain_rows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.cursor import Cursor
    from repro.engines.base import Database
    from repro.sql.planner import PlannedQuery


class DDLStatement:
    """A parsed DDL statement (CREATE/DROP/SHOW/DESCRIBE).

    The front end splits statements once, at parse time: SELECT/EXPLAIN
    become :class:`PreparedStatement` (planned, cached, parameterized);
    DDL becomes this — no plan, no parameters, never cached, and every
    :meth:`execute` re-runs the statement against the live catalog
    through :meth:`~repro.engines.base.Database.run_ddl`. Both kinds
    flow through the same cursor/fetch machinery, so ``SHOW TABLES``
    streams like any result set.
    """

    is_explain = False
    param_count = 0

    def __init__(self, session: "Session", sql: str, node):
        self.session = session
        self.sql = sql
        self.node = node
        self.plan: dict = {"op": type(node).__name__}

    def execute(self, params: Sequence = ()) -> "Cursor":
        """Run on a fresh cursor of the owning session."""
        return self.session.cursor().execute(self, params)


class PreparedStatement:
    """A statement parsed and planned once, executable many times.

    ``execute`` re-binds the statement's ``?`` placeholders by mutating
    the shared :class:`~repro.sql.ast_nodes.ParamBinding` the cached
    plan's compiled closures read at evaluation time — no re-parse, no
    re-plan (assertable: the engine's ``query_overhead`` counter only
    moves at prepare time).

    One exception keeps cached plans honest: PostgresRaw collects
    optimizer statistics *during* scans (§4.4), i.e. potentially after
    this statement froze its plan — later statistics could flip an
    aggregation strategy or join order. The statement snapshots the
    catalog's stats epoch at plan time and transparently re-plans (no
    re-parse; the shared parameter binding is preserved) when the
    epoch has moved. Re-plans are counted in
    ``session.stats["replans"]`` and never touch ``query_overhead``.
    """

    def __init__(self, session: "Session", sql: str,
                 parsed: Select | Explain, planned: "PlannedQuery",
                 prepare_elapsed: float, prepare_counters: dict):
        self.session = session
        self.sql = sql
        self.is_explain = isinstance(parsed, Explain)
        self.select: Select = (parsed.select if isinstance(parsed, Explain)
                               else parsed)
        self.param_count: int = parsed.param_count
        self.binding: Optional[ParamBinding] = parsed.binding
        self.planned = planned
        #: the immutable plan summary, walked once here so every
        #: re-execution can reuse it (until a stats-epoch re-plan
        #: replaces both)
        self.plan: dict = planned.describe()
        #: catalog stats epoch the current plan was built under
        self.stats_epoch: int = session.engine.catalog.stats_epoch
        self.prepare_elapsed = prepare_elapsed
        self.prepare_counters = dict(prepare_counters)
        #: scan leaves served by a compiled kernel (0 = generic path);
        #: set by the session right after it attaches kernels, and the
        #: per-execution ``kernel_hits`` multiplier
        self.kernel_scans: int = 0
        #: ``kernel: ...`` EXPLAIN annotation rows for the cached plan
        self.kernel_notes: list[str] = []
        #: jobs currently streaming from this statement's cached plan
        self._live_jobs: set[QueryJob] = set()

    def _replan_if_stale(self) -> None:
        """Re-plan from the cached AST when statistics arrived since
        the current plan was built. Jobs already streaming keep their
        old plan trees; new executions get the stats-informed one."""
        engine = self.session.engine
        epoch = engine.catalog.stats_epoch
        if epoch == self.stats_epoch:
            return
        clock = engine.clock
        start = clock.checkpoint()
        before = dict(clock.counters)
        self.planned = engine.plan_select(self.select)
        # Stats arriving is exactly what invalidates compiled kernels:
        # re-attach against the session cache (cleared for the new
        # epoch), so the fresh plan compiles fresh kernels.
        self.kernel_scans = self.session._attach_kernels(self.planned)
        self.kernel_notes = kernel_report(self.planned)
        self.plan = self.planned.describe()
        self.stats_epoch = epoch
        self.session.stats["replans"] += 1
        # Like prepare cost, re-plan cost is session work.
        self.session._charge(clock.elapsed_since(start),
                             counters_delta(clock.counters, before))

    def conflicts_with(self, params: Sequence) -> bool:
        """True when executing with ``params`` would re-bind under a
        result that is still streaming from this statement's cached
        plan (whose compiled closures read the shared binding live)."""
        if not self.param_count or not self._live_jobs:
            return False
        values = tuple(params) if params is not None else ()
        return (self.binding.values is not None
                and values != self.binding.values)

    def bind(self, params: Sequence) -> None:
        """Validate and install one execution's parameter values."""
        values = tuple(params) if params is not None else ()
        if len(values) != self.param_count:
            raise ProgrammingError(
                f"statement takes {self.param_count} parameter(s), "
                f"got {len(values)}: {self.sql!r}")
        if not self.param_count:
            return
        if self.conflicts_with(values):
            raise OperationalError(
                "prepared statement still has a streaming result in "
                "flight; fetch it to completion or close its cursor "
                "before re-executing with different parameters")
        self.binding.bind(values)

    def execute(self, params: Sequence = ()) -> "Cursor":
        """Run on a fresh cursor of the owning session."""
        return self.session.cursor().execute(self, params)


class Session:
    """One client's connection to a shared engine.

    Parameters
    ----------
    engine:
        The engine to attach to (its catalog, clock and scheduler are
        shared with every other session on it).
    max_in_flight:
        Admission gate width — applied only if this session is the one
        that first creates the engine's scheduler.
    statement_cache_size:
        LRU capacity for transparently caching prepared statements by
        SQL text (``cursor.execute(sql)`` with a repeated string hits
        the cache and skips parse/plan). ``0`` disables caching,
        ``None`` is unbounded.
    """

    def __init__(self, engine: "Database", max_in_flight: int | None = None,
                 statement_cache_size: int | None = 32):
        self.engine = engine
        self.scheduler = engine.shared_scheduler(max_in_flight)
        self.closed = False
        self._statement_cache_size = statement_cache_size
        self._statements: OrderedDict[str, PreparedStatement] = OrderedDict()
        #: compiled scan kernels, cached beside the statement cache and
        #: keyed by plan signature (see repro.kernels) — ``?`` re-binds
        #: reuse entries; catalog stats-epoch bumps invalidate them
        self.kernels = KernelCache()
        #: unfinished jobs started by this session (cursors come and
        #: go; the jobs are what hold scheduler slots and buffers)
        self._jobs: set[QueryJob] = set()
        self._elapsed = 0.0
        self._counters: dict[str, float] = {}
        #: observers of this session's cost deltas — each is called as
        #: ``hook(elapsed, counters)`` for every charge. The server
        #: front end uses this to roll per-session ledgers up into
        #: per-tenant quota accounting without touching the engine.
        self.cost_hooks: list = []
        self.stats = {"parses": 0, "plans": 0, "replans": 0,
                      "statement_cache_hits": 0, "queries": 0}
        engine.attach_session(self)

    # -- cursors and execution ---------------------------------------------
    def cursor(self) -> "Cursor":
        from repro.api.cursor import Cursor

        self._check_open()
        return Cursor(self)

    def execute(self, sql, params: Sequence = ()) -> "Cursor":
        """Convenience: ``session.cursor().execute(sql, params)``."""
        return self.cursor().execute(sql, params)

    def query(self, sql, params: Sequence = ()) -> QueryResult:
        """Eager convenience: execute and drain into a QueryResult."""
        cursor = self.execute(sql, params)
        try:
            return cursor.result()
        finally:
            cursor.close()

    # -- catalog conveniences (forwarded to the engine) ----------------------
    def register_csv(self, name: str, path: str, schema):
        """Deprecated engine shim; prefer ``session.execute("CREATE
        TABLE ... USING csv OPTIONS (path '...')")``."""
        return self._forward("register_csv", name, path, schema)

    def register_fits(self, name: str, path: str):
        """Deprecated engine shim; prefer ``CREATE TABLE ... USING
        fits``."""
        return self._forward("register_fits", name, path)

    def add_file(self, name: str, path: str, schema):
        """Deprecated engine shim (§4.5 vocabulary); prefer ``CREATE
        TABLE ... USING csv``."""
        return self._forward("add_file", name, path, schema)

    def _forward(self, method: str, *args):
        self._check_open()
        fn = getattr(self.engine, method, None)
        if fn is None:
            raise InterfaceError(
                f"engine {type(self.engine).__name__} does not support "
                f"{method}()")
        with translate_errors():
            return fn(*args)

    # -- prepared statements -----------------------------------------------
    def prepare(self, sql: str) -> "PreparedStatement | DDLStatement":
        """Parse + plan ``sql`` once; the result re-executes with new
        parameters at zero parse/plan cost. DDL text comes back as a
        :class:`DDLStatement` (no plan; each execute hits the catalog
        afresh)."""
        self._check_open()
        return self._prepared(sql)

    def _statement_for_execute(self, sql: str,
                               params: Sequence) -> PreparedStatement:
        """The statement a string-SQL execute should run: the cached
        one — unless re-binding it with ``params`` would corrupt a
        stream still flowing from its shared plan, in which case this
        execution pays for a private, uncached parse/plan."""
        cached = self._statements.get(sql)
        if cached is not None and cached.conflicts_with(params):
            return self._prepared(sql, use_cache=False)
        return self._prepared(sql)

    def _prepared(self, sql: str,
                  use_cache: bool = True) -> "PreparedStatement | DDLStatement":
        if use_cache:
            cached = self._statements.get(sql)
            if cached is not None:
                self._statements.move_to_end(sql)
                self.stats["statement_cache_hits"] += 1
                return cached
        with translate_errors():
            clock = self.engine.clock
            start = clock.checkpoint()
            before = dict(clock.counters)
            parsed = self.engine.parse_sql(sql)
            self.stats["parses"] += 1
            if is_ddl(parsed):
                # The statement-dispatch split: DDL is never planned or
                # cached — each execution runs against the live catalog
                # (its query_overhead is charged per execution).
                return DDLStatement(self, sql, parsed)
            self.engine.model.query_overhead()
            select = (parsed.select if isinstance(parsed, Explain)
                      else parsed)
            self.engine.refresh_for(select)
            planned = self.engine.plan_select(select)
            self.stats["plans"] += 1
            kernel_scans = self._attach_kernels(planned)
            prepare_elapsed = clock.elapsed_since(start)
            prepare_counters = counters_delta(clock.counters, before)
        # Prepare cost is session work (it belongs to no single
        # execution of the statement).
        self._charge(prepare_elapsed, prepare_counters)
        statement = PreparedStatement(self, sql, parsed, planned,
                                      prepare_elapsed, prepare_counters)
        statement.kernel_scans = kernel_scans
        statement.kernel_notes = kernel_report(planned)
        if use_cache and self._statement_cache_size != 0:
            self._statements[sql] = statement
            while (self._statement_cache_size is not None
                   and len(self._statements) > self._statement_cache_size):
                self._statements.popitem(last=False)
        return statement

    def _attach_kernels(self, planned) -> int:
        """Pin compiled scan kernels (or ineligibility reasons) onto
        ``planned``'s scan leaves from this session's kernel cache.
        Returns the number of kernel-served scans."""
        engine = self.engine
        return attach_kernels(self.kernels, engine.model,
                              getattr(engine, "config", None), planned,
                              engine.catalog.stats_epoch)

    # -- job plumbing (used by Cursor) ---------------------------------------
    def _start_job(self, statement: "PreparedStatement | DDLStatement",
                   params: Sequence,
                   timeout: float | None = None) -> QueryJob:
        self._check_open()
        if timeout is None:
            config = getattr(self.engine, "config", None)
            timeout = getattr(config, "query_deadline", None)
        if statement.session is not self:
            raise InterfaceError(
                "prepared statement belongs to a different session")
        if isinstance(statement, DDLStatement):
            return self._run_ddl_job(statement, params)
        with translate_errors():
            if statement.is_explain:
                # EXPLAIN executes nothing; its cached plan is
                # available without binding any parameters (refreshed
                # first if statistics arrived since it was built).
                statement._replan_if_stale()
                columns, rows = explain_rows(statement.plan)
                rows = rows + [(note,) for note in statement.kernel_notes]
                job = QueryJob.completed(self, statement.sql, columns,
                                         rows, statement.plan)
                self.stats["queries"] += 1
                return job
            statement.bind(params)
            self.engine.refresh_for(statement.select)
            statement._replan_if_stale()
            if statement.kernel_scans:
                # Zero-priced observability: this execution's scans are
                # served by compiled kernels (one unit per scan leaf).
                self.engine.model.kernel_hit(statement.kernel_scans)
            job = QueryJob(self, statement.sql, statement.planned,
                           statement=statement, plan=statement.plan,
                           timeout=timeout)
            statement._live_jobs.add(job)
            self._jobs.add(job)
            try:
                self.scheduler.submit(job)
            except BaseException:
                # Admission rejected (bounded accept queue saturated):
                # the job never existed as far as ledgers or the
                # statement's re-bind lock are concerned.
                self._jobs.discard(job)
                statement._live_jobs.discard(job)
                raise
        self.stats["queries"] += 1
        return job

    def _run_ddl_job(self, statement: DDLStatement,
                     params: Sequence) -> QueryJob:
        """Execute DDL synchronously into a born-finished job: catalog
        statements touch no scan slots, so they bypass admission the
        way EXPLAIN does, but their (small) engine cost is still
        charged to the job/session ledgers."""
        if params:
            raise ProgrammingError(
                f"DDL statements take no parameters: {statement.sql!r}")
        with translate_errors():
            clock = self.engine.clock
            start = clock.checkpoint()
            before = dict(clock.counters)
            self.engine.model.query_overhead()
            columns, rows = self.engine.run_ddl(statement.node)
            job = QueryJob.completed(self, statement.sql, columns, rows,
                                     statement.plan)
            job.charge(clock.elapsed_since(start),
                       counters_delta(clock.counters, before))
        self.stats["queries"] += 1
        return job

    def _settle_job(self, job: QueryJob) -> None:
        self._jobs.discard(job)
        if job.statement is not None:
            job.statement._live_jobs.discard(job)

    def _charge(self, elapsed: float, counters: dict[str, float]) -> None:
        self._elapsed += elapsed
        for key, units in counters.items():
            self._counters[key] = self._counters.get(key, 0) + units
        for hook in self.cost_hooks:
            hook(elapsed, counters)

    # -- per-session accounting ---------------------------------------------
    def elapsed(self) -> float:
        """Virtual seconds of engine work this session has caused."""
        return self._elapsed

    def counters(self) -> dict[str, float]:
        """This session's share of the engine's cost-event units."""
        return dict(self._counters)

    # -- lifecycle -----------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise InterfaceError("session is closed")

    def close(self) -> None:
        """Cancel this session's unfinished jobs (releasing their
        scheduler slots and buffers) and detach from the engine.
        Cursors of a closed session report ``closed`` and refuse
        further use."""
        if self.closed:
            return
        for job in list(self._jobs):
            self.scheduler.cancel(job)
        self._statements.clear()
        self.engine.detach_session(self)
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def connect(engine: "Database | None" = None, *, vfs=None, config=None,
            max_in_flight: int | None = None,
            statement_cache_size: int | None = 32) -> Session:
    """Open a session — the public entry point of the API layer.

    ``engine`` may be any existing :class:`repro.Database`; omit it to
    get a session on a fresh :class:`repro.PostgresRaw` (``vfs`` /
    ``config`` are forwarded). Multiple ``connect(engine=shared)``
    calls attach independent sessions whose queries are admitted by the
    engine's single scheduler.
    """
    if engine is None:
        from repro.core.engine import PostgresRaw

        engine = PostgresRaw(config=config, vfs=vfs)
    elif vfs is not None or config is not None:
        raise InterfaceError(
            "vfs/config are only used when connect() creates the engine; "
            "pass them to the engine constructor instead")
    return Session(engine, max_in_flight=max_in_flight,
                   statement_cache_size=statement_cache_size)
