"""DB-API 2.0 exception hierarchy mapped onto :mod:`repro.errors`.

The library's internal errors describe *mechanisms* (lexer, planner,
storage, formats); database clients expect the PEP 249 taxonomy. Every
class here derives from both :class:`repro.errors.ReproError` and the
DB-API :class:`Error` root, so ``except ReproError`` keeps working while
session/cursor users can write ``except repro.api.ProgrammingError``.

:func:`translate_errors` is the boundary guard: code inside the ``with``
block may raise any internal error; it comes out re-raised as the
mapped DB-API class with the original attached as ``__cause__``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro import errors as _errors
from repro.errors import ReproError


class Error(ReproError):
    """DB-API root for everything raised by the session/cursor layer."""


class InterfaceError(Error):
    """Misuse of the interface itself (closed cursor, no result set)."""


class DatabaseError(Error):
    """Root for errors coming from the engine."""


class DataError(DatabaseError):
    """Problems with the data (bad conversions, malformed raw rows)."""


class OperationalError(DatabaseError):
    """Errors in the engine's operation (storage, execution, admission)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (unused: the engine is read-only)."""


class InternalError(DatabaseError):
    """The engine hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """Errors in the submitted SQL or its parameters (syntax, unknown
    tables/columns, wrong parameter count)."""


class NotSupportedError(DatabaseError):
    """A requested feature the engine does not implement."""


#: internal error class -> DB-API class, most-specific first.
_ERROR_MAP: list[tuple[type, type]] = [
    (_errors.LexerError, ProgrammingError),
    (_errors.ParseError, ProgrammingError),
    (_errors.PlanningError, ProgrammingError),
    (_errors.CatalogError, ProgrammingError),
    (_errors.UnknownColumnError, ProgrammingError),
    (_errors.BindError, ProgrammingError),
    (_errors.BudgetError, OperationalError),
    # Admission-time rejections (server busy, tenant over quota): the
    # engine did no work, the client may retry. The stable ``code``
    # (SERVER_BUSY / QUOTA_EXCEEDED) rides along via _carry_context.
    (_errors.AdmissionError, OperationalError),
    (_errors.TypeError_, DataError),
    (_errors.FormatError, DataError),
    (_errors.StorageError, OperationalError),
    (_errors.ExecutionError, OperationalError),
]


def map_error(exc: BaseException) -> Error:
    """The DB-API exception equivalent to an internal error. Plain
    Python exceptions escaping expression evaluation (e.g. a type
    mismatch between a parameter and a column) map to
    :class:`OperationalError`."""
    if isinstance(exc, Error):
        return exc
    for internal_cls, api_cls in _ERROR_MAP:
        if isinstance(exc, internal_cls):
            return _carry_context(api_cls(str(exc)), exc)
    if isinstance(exc, ReproError):
        return _carry_context(DatabaseError(str(exc)), exc)
    return OperationalError(f"query execution failed: {exc}")


def _carry_context(mapped: Error, exc: BaseException) -> Error:
    """Copy the internal error's stable code and structured context
    (file path, byte offset, row number, table...) onto the DB-API
    error, so clients that only catch the mapped class still get the
    machine-readable details without walking ``__cause__``."""
    mapped.code = getattr(exc, "code", mapped.code)
    context = getattr(exc, "context", None)
    if context:
        mapped.context = dict(context)
    return mapped


@contextmanager
def translate_errors():
    """Re-raise internal errors as their DB-API classes (chained)."""
    try:
        yield
    except Error:
        raise
    except ReproError as exc:
        raise map_error(exc) from exc
