"""repro.api: the session/cursor façade over any repro engine.

DB-API 2.0 flavored::

    import repro

    session = repro.connect()                   # fresh PostgresRaw
    session.execute(
        "CREATE TABLE t (a INTEGER, b INTEGER) "
        "USING csv OPTIONS (path 't.csv')")     # declare, never load

    cur = session.execute("SELECT a, b FROM t WHERE a < ?", (10,))
    for row in cur:                             # streams batch-by-batch
        ...

    stmt = session.prepare("SELECT count(*) FROM t WHERE a < ?")
    stmt.execute((5,)).fetchone()               # zero parse/plan work
    stmt.execute((9,)).fetchone()

Module-level DB-API attributes (``apilevel`` etc.) are provided for
tooling that sniffs them; ``paramstyle`` is ``qmark``.
"""

from __future__ import annotations

from repro.api.cursor import Cursor
from repro.api.exceptions import (
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
)
from repro.api.scheduler import QueryJob, Scheduler
from repro.api.session import (
    DDLStatement,
    PreparedStatement,
    Session,
    connect,
)

apilevel = "2.0"
threadsafety = 1  # module-level sharing only; engines are single-threaded
paramstyle = "qmark"

__all__ = [
    "connect", "Session", "Cursor", "PreparedStatement",
    "DDLStatement",
    "Scheduler", "QueryJob",
    "apilevel", "threadsafety", "paramstyle",
    "Error", "InterfaceError", "DatabaseError", "DataError",
    "OperationalError", "IntegrityError", "InternalError",
    "ProgrammingError", "NotSupportedError",
]
