"""Query admission and cooperative streaming execution.

One engine serves many sessions, but it is a single (virtual-time)
machine: the :class:`Scheduler` is the gate in front of it. Queries are
admitted FIFO up to ``max_in_flight``; admitted queries execute
cooperatively — each :meth:`Scheduler.advance` call pulls exactly one
:class:`~repro.sql.batch.ColumnBatch` from one query's live iterator,
so concurrent cursors interleave at batch boundaries and a fetch on a
still-queued query drives the in-flight ones forward until a slot
frees (the single-threaded analogue of blocking on admission).

With parallel chunk scans (``config.scan_workers > 1``) admitted
queries genuinely *overlap on workers* instead of merely taking turns:
a scan's batch iterator dispatches row-block groups to the engine's
shared :class:`~repro.core.parallel.ScanWorkerPool` and keeps them in
flight **across yields**, so while one query's pull runs its
single-threaded merge here, the other in-flight queries' dispatched
groups are still computing on the pool. The scheduler itself stays
single-threaded — that is what keeps admission, structure mutation and
accounting deterministic — but the compute under it is concurrent.

Every pull is bracketed by engine clock/counter checkpoints and the
delta is charged to the pulling :class:`QueryJob` alone, so per-query —
and, summed, per-session — resource accounting falls out of the cost
model without any global instrumentation (cf. resource-utilization
monitoring for raw-data query processing). Worker-side charges fold
into the same ledgers: each group computes against a per-worker
:class:`~repro.simcost.model.RecordingModel` and the scan replays the
recorded deltas inside the owning query's pull, so a job's counters
include every unit its workers spent — and :attr:`QueryJob.
worker_tasks` counts the pool tasks its pulls dispatched.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import QueryTimeoutError, ServerBusyError, annotate
from repro.sql.batch import ColumnBatch
from repro.sql.executor import (
    QueryResult,
    counters_delta,
    execute_batches,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import PreparedStatement, Session
    from repro.sql.planner import PlannedQuery


class QueryJob:
    """One query's life inside the scheduler.

    Holds the live batch iterator, the bounded row buffer cursors fetch
    from, and the query's own cost ledger (clock/counter deltas charged
    at every pull). States: ``queued`` (submitted, waiting for a slot),
    ``running`` (iterator live), ``finished``, ``failed``, ``closed``.
    """

    __slots__ = ("session", "sql", "planned", "names", "plan", "statement",
                 "state", "buffer", "counters", "elapsed", "rows_produced",
                 "rows_fetched", "peak_buffered", "rows_materialized",
                 "worker_tasks", "error", "timeout", "deadline", "_iterator")

    def __init__(self, session: "Session", sql: str,
                 planned: "PlannedQuery | None",
                 statement: "PreparedStatement | None" = None,
                 plan: dict | None = None,
                 timeout: float | None = None):
        self.session = session
        self.sql = sql
        self.planned = planned
        self.names: list[str] = list(planned.names) if planned else []
        # The plan summary is immutable per physical plan; prepared
        # statements pass their cached copy so re-execution does not
        # re-walk the plan tree.
        self.plan: dict = (plan if plan is not None
                           else planned.describe() if planned else {})
        self.statement = statement
        self.state = "queued"
        self.buffer: deque = deque()
        self.counters: dict[str, float] = {}
        self.elapsed = 0.0
        self.rows_produced = 0
        self.rows_fetched = 0
        self.peak_buffered = 0
        self.rows_materialized = 0
        #: scan-pool tasks dispatched during this query's pulls — the
        #: query's share of the engine's worker fan-out (0 under serial
        #: scans)
        self.worker_tasks = 0
        self.error: Optional[BaseException] = None
        #: virtual-seconds budget for this query (None = unlimited);
        #: the absolute deadline is fixed on the engine clock at
        #: admission, so queueing time does not count against it.
        self.timeout = timeout
        self.deadline: float | None = None
        self._iterator: Optional[Iterator[ColumnBatch]] = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def completed(cls, session: "Session", sql: str, names: list[str],
                  rows: list[tuple], plan: dict) -> "QueryJob":
        """A job born finished (EXPLAIN: the plan itself is the result)."""
        job = cls(session, sql, None, plan=plan)
        job.names = list(names)
        job.buffer.extend(rows)
        job.rows_produced = len(rows)
        job.peak_buffered = len(rows)
        job.state = "finished"
        return job

    def start(self) -> None:
        self._iterator = execute_batches(self.planned)
        if self.timeout is not None:
            clock = self.session.engine.clock
            self.deadline = clock.now() + self.timeout
        self.state = "running"

    @property
    def done(self) -> bool:
        return self.state in ("finished", "failed", "closed")

    def charge(self, elapsed: float, counters: dict[str, float]) -> None:
        """Attribute one region of engine work to this query."""
        self.elapsed += elapsed
        for key, units in counters.items():
            self.counters[key] = self.counters.get(key, 0) + units
        self.session._charge(elapsed, counters)

    def to_result(self, rows: list[tuple]) -> QueryResult:
        return QueryResult(columns=list(self.names), rows=rows,
                           elapsed=self.elapsed, counters=dict(self.counters),
                           plan=self.plan,
                           rows_materialized=self.rows_materialized)


class Scheduler:
    """FIFO admission with a max-in-flight gate over one shared engine."""

    def __init__(self, engine, max_in_flight: int = 4,
                 max_queued: int | None = None):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queued is not None and max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.engine = engine
        self.max_in_flight = max_in_flight
        #: bound on the accept queue (waiting jobs). ``None`` — the
        #: in-process default — queues without limit, preserving the
        #: original blocking-admission semantics. A server front end
        #: sets a bound so saturation surfaces as a typed
        #: :class:`~repro.errors.ServerBusyError` (back-pressure)
        #: instead of unbounded queueing.
        self.max_queued = max_queued
        #: queries cancelled before their stream finished (also charged
        #: as the zero-priced ``queries_abandoned`` engine counter)
        self.abandoned = 0
        self._running: list[QueryJob] = []
        self._waiting: deque[QueryJob] = deque()
        self._rr = 0  # round-robin pointer for driving foreign jobs

    # -- introspection -----------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._running)

    @property
    def queued(self) -> int:
        return len(self._waiting)

    @property
    def saturated(self) -> bool:
        """True when a new submission would be rejected: every slot is
        running and the bounded accept queue (if any) is full."""
        return (self.max_queued is not None
                and len(self._running) >= self.max_in_flight
                and len(self._waiting) >= self.max_queued)

    # -- admission ---------------------------------------------------------
    def submit(self, job: QueryJob) -> None:
        """Queue a job; it is admitted immediately when a slot is free
        and no earlier job is still waiting (strict FIFO). With a
        bounded accept queue (``max_queued``), a submission that finds
        both the gate and the queue full is rejected with
        :class:`~repro.errors.ServerBusyError` before any engine work
        happens."""
        if self.saturated:
            raise annotate(
                ServerBusyError(
                    f"admission gate saturated: {len(self._running)} "
                    f"queries in flight (max {self.max_in_flight}) and "
                    f"{len(self._waiting)} waiting (max {self.max_queued}); "
                    f"retry later"),
                in_flight=len(self._running), queued=len(self._waiting),
                max_in_flight=self.max_in_flight, max_queued=self.max_queued)
        self._waiting.append(job)
        self._refill()

    def _refill(self) -> None:
        while self._waiting and len(self._running) < self.max_in_flight:
            job = self._waiting.popleft()
            job.start()
            self._running.append(job)

    # -- cooperative stepping ----------------------------------------------
    def advance(self, job: QueryJob) -> bool:
        """Make one unit of progress on behalf of ``job``: pull one
        batch from it — or, while it is still queued, from the oldest
        in-flight queries (round-robin) until a slot frees and the job
        is admitted. Returns False once the job is done."""
        if job.state == "queued":
            self._drive_until_admitted(job)
        if job.done:
            return False
        self._pull(job)
        return not job.done

    def drain(self, job: QueryJob) -> None:
        """Run ``job`` to completion (the eager path)."""
        while self.advance(job):
            pass

    def _drive_until_admitted(self, job: QueryJob) -> None:
        """Free a slot by completing in-flight work (round-robin, one
        batch at a time). Victim jobs buffer the rows they produce for
        their own cursors — so a half-read query abandoned by its
        client ends up fully buffered when admission pressure forces
        it to completion. That is the deliberate trade-off of a strict
        FIFO gate in one thread: the streaming bound (one block past
        the fetch) is a guarantee to the *fetching* client, not to
        clients who leave results unread. Under parallel chunk scans
        the drive itself is fast — each victim's remaining groups
        compute on the worker pool while this thread only merges — but
        eliminating the buffering entirely would need per-slot driver
        threads (a recorded ROADMAP follow-on)."""
        while job.state == "queued":
            if not self._running:
                self._refill()
                continue
            victim = self._running[self._rr % len(self._running)]
            self._rr += 1
            self._pull(victim)

    def _pull(self, job: QueryJob) -> None:
        """One batch from ``job``'s iterator, its cost charged to the
        job's own ledger. Any failure — engine error or plain Python
        exception from expression evaluation — is recorded on the job
        (raised to *its* cursor at fetch time), never propagated to
        whichever client happened to be driving the scheduler."""
        clock = self.engine.clock
        if job.deadline is not None and clock.now() >= job.deadline:
            # Cooperative cancellation at a batch boundary: the query
            # never observes the deadline mid-batch. Closing the live
            # iterator reuses the abandoned-scan cleanup contract
            # (generator close — partial positional-map/cache state is
            # kept, worker groups are discarded), and the work already
            # pulled stays charged to this job's and its session's
            # ledgers.
            if job._iterator is not None:
                job._iterator.close()
            self._settle(job, "failed", annotate(
                QueryTimeoutError(
                    f"query exceeded its deadline of {job.timeout} "
                    f"virtual seconds ({job.elapsed:.6g}s of engine "
                    f"work charged)"),
                timeout=job.timeout))
            return
        model = self.engine.model
        pool = getattr(self.engine, "scan_pool", None)
        before_seconds = clock.checkpoint()
        before_counters = dict(clock.counters)
        before_materialized = model.rows_materialized
        before_tasks = pool.tasks_submitted if pool is not None else 0
        batch = None
        exhausted = False
        error: Optional[BaseException] = None
        try:
            batch = next(job._iterator)
        except StopIteration:
            exhausted = True
        except Exception as exc:
            error = exc
        finally:
            job.charge(clock.elapsed_since(before_seconds),
                       counters_delta(clock.counters, before_counters))
            job.rows_materialized += (model.rows_materialized
                                      - before_materialized)
            if pool is not None:
                # The scheduler is single-threaded, so every pool task
                # dispatched during this pull belongs to this job.
                job.worker_tasks += pool.tasks_submitted - before_tasks
        if error is not None:
            self._settle(job, "failed", error)
            return
        if exhausted:
            self._settle(job, "finished")
            return
        if batch.nrows:
            job.buffer.extend(batch.iter_rows())
            job.rows_produced += batch.nrows
            if len(job.buffer) > job.peak_buffered:
                job.peak_buffered = len(job.buffer)

    def cancel(self, job: QueryJob) -> None:
        """Abandon a job: close its live iterator (scans keep their
        partial positional-map/cache state, as with any abandoned
        generator) and release its slot. The remaining batches are
        never produced, let alone buffered — early close is how a
        cursor (or a server on behalf of a disconnected client) stops
        an unfinished query from consuming its scheduler slot. Each
        abandon is counted (zero-priced ``queries_abandoned``)."""
        if job.done:
            return
        self.abandoned += 1
        self.engine.model.query_abandoned()
        if job.state == "queued":
            try:
                self._waiting.remove(job)
            except ValueError:
                pass
            job.state = "closed"
            job.session._settle_job(job)
            return
        if job._iterator is not None:
            job._iterator.close()
        self._settle(job, "closed")

    def _settle(self, job: QueryJob, state: str,
                error: Optional[BaseException] = None) -> None:
        job.state = state
        job.error = error
        if job in self._running:
            self._running.remove(job)
        job.session._settle_job(job)
        self._refill()
