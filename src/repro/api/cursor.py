"""DB-API-2.0-flavored cursors with streaming fetch.

A cursor never holds more than it must: ``execute`` plans (or reuses a
cached plan) and submits a :class:`~repro.api.scheduler.QueryJob`, but
rows are produced lazily — each ``fetchone``/``fetchmany(n)`` asks the
scheduler to pull just enough batches to satisfy it, so a large scan is
materialized at most one block past what the client consumed
(``peak_buffered_rows`` exposes the high-water mark; see
``engine.stream_block_rows()`` for the block granularity). ``fetchall``
and :meth:`Cursor.result` remain the eager conveniences on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Union

from repro.api.exceptions import InterfaceError, map_error
from repro.api.scheduler import QueryJob
from repro.api.session import DDLStatement, PreparedStatement
from repro.sql.executor import QueryResult, column_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

#: a cursor.execute operation: SQL text or an already-prepared
#: statement (SELECT/EXPLAIN) or DDL statement (CREATE/DROP/...)
Operation = Union[str, PreparedStatement, DDLStatement]


class Cursor:
    """One stream of query results inside a session."""

    def __init__(self, session: "Session"):
        self.session = session
        self.arraysize = 1
        self._closed = False
        self._job: Optional[QueryJob] = None
        self._rowcount_override: Optional[int] = None

    @property
    def closed(self) -> bool:
        """Closed explicitly, or implicitly by the session closing."""
        return self._closed or self.session.closed

    # -- execution -----------------------------------------------------------
    def execute(self, operation: Operation, params: Sequence = (),
                timeout: float | None = None) -> "Cursor":
        """Run one statement; returns ``self`` so fetches can chain.

        ``operation`` is SQL text (``?`` placeholders bound from
        ``params``; repeated text reuses the session's statement cache)
        or a :class:`PreparedStatement`. Any previous unfinished result
        on this cursor is abandoned.

        ``timeout`` bounds the query's execution in virtual seconds on
        the engine clock (defaulting to ``config.query_deadline``; None
        = unlimited). The scheduler enforces it cooperatively at batch
        boundaries: an overrunning query fails with
        ``OperationalError`` (QUERY_TIMEOUT) at the next fetch, its
        partial cost stays charged to the session ledger, and the
        session remains usable."""
        self._check_open()
        self._abandon()
        # Detach the old result before anything below can raise, so a
        # failed execute leaves the cursor empty (fetches raise "no
        # query executed") instead of serving the dead result's rows.
        self._job = None
        self._rowcount_override = None
        statement = self._resolve(operation, params)
        self._job = self.session._start_job(statement, params,
                                            timeout=timeout)
        return self

    def executemany(self, operation: Operation,
                    seq_of_params: Sequence[Sequence],
                    timeout: float | None = None) -> "Cursor":
        """Execute once per parameter sequence (statement prepared a
        single time). Per DB-API, no result set is kept — each
        execution is drained with its buffer discarded as it streams —
        but ``rowcount`` totals the rows produced."""
        self._check_open()
        self._abandon()
        self._job = None
        self._rowcount_override = None
        param_sets = list(seq_of_params)
        statement = self._resolve(operation,
                                  param_sets[0] if param_sets else ())
        total = 0
        for params in param_sets:
            job = self.session._start_job(statement, params,
                                          timeout=timeout)
            while self.session.scheduler.advance(job):
                job.buffer.clear()
            job.buffer.clear()
            if job.state == "failed":
                raise map_error(job.error) from job.error
            total += job.rows_produced
        self._job = None
        self._rowcount_override = total
        return self

    def _resolve(self, operation: Operation,
                 params: Sequence) -> "PreparedStatement | DDLStatement":
        if isinstance(operation, (PreparedStatement, DDLStatement)):
            return operation
        return self.session._statement_for_execute(operation, params)

    # -- fetching ------------------------------------------------------------
    def fetchone(self) -> Optional[tuple]:
        """The next row, or None when the result is exhausted."""
        job = self._require_job()
        self._fill(job, 1)
        if not job.buffer:
            return None
        job.rows_fetched += 1
        row = job.buffer.popleft()
        self._probe_finish(job)
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """Up to ``size`` rows (default ``arraysize``), pulling only
        the batches needed to satisfy the request."""
        job = self._require_job()
        want = self.arraysize if size is None else size
        if want < 0:
            raise InterfaceError("fetchmany size must be >= 0")
        self._fill(job, want)
        out = []
        while job.buffer and len(out) < want:
            out.append(job.buffer.popleft())
        job.rows_fetched += len(out)
        self._probe_finish(job)
        return out

    def fetchall(self) -> list[tuple]:
        """Every remaining row (the eager path)."""
        job = self._require_job()
        self._drain(job)
        out = list(job.buffer)
        job.buffer.clear()
        job.rows_fetched += len(out)
        return out

    def result(self) -> QueryResult:
        """Drain the remaining rows into the classic eager
        :class:`QueryResult` (with this query's own elapsed/counters
        ledger and plan summary attached)."""
        job = self._require_job()
        return job.to_result(self.fetchall())

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def _fill(self, job: QueryJob, want: int) -> None:
        while len(job.buffer) < want and not job.done:
            self.session.scheduler.advance(job)
        if job.state == "failed":
            raise map_error(job.error) from job.error

    def _probe_finish(self, job: QueryJob) -> None:
        """When a fetch drained the buffer, pull ahead until rows
        arrive or the stream ends. A fully consumed result is thereby
        finished immediately — releasing its scheduler slot and its
        prepared statement's re-bind lock — at the cost of buffering
        at most one non-empty block ahead of the client. A failure
        found while probing stays on the job and surfaces at the next
        fetch (this fetch's rows were already produced)."""
        while not job.done and not job.buffer:
            self.session.scheduler.advance(job)

    def _drain(self, job: QueryJob) -> None:
        self.session.scheduler.drain(job)
        if job.state == "failed":
            raise map_error(job.error) from job.error

    # -- introspection -------------------------------------------------------
    @property
    def description(self) -> Optional[list[tuple]]:
        """DB-API 7-tuples for the current result's columns."""
        if self._job is None:
            return None
        return [(name, None, None, None, None, None, None)
                for name in self._job.names]

    @property
    def rowcount(self) -> int:
        """Rows produced by the finished statement (-1 while the
        stream is still open, per DB-API)."""
        if self._rowcount_override is not None:
            return self._rowcount_override
        if self._job is not None and self._job.state == "finished":
            return self._job.rows_produced
        return -1

    def column_index(self, name: str) -> int:
        """Position of ``name`` among the result columns; raises the
        same descriptive error as ``QueryResult.column``."""
        job = self._require_job()
        return column_index(name, job.names)

    @property
    def plan(self) -> dict:
        """Physical plan summary of the current statement."""
        return dict(self._require_job().plan)

    def counters(self) -> dict[str, float]:
        """Cost-event units charged to this query so far."""
        return dict(self._require_job().counters)

    def elapsed(self) -> float:
        """Virtual seconds charged to this query so far."""
        return self._require_job().elapsed

    @property
    def peak_buffered_rows(self) -> int:
        """High-water mark of rows buffered between the stream and the
        client — the streaming guarantee made observable. 0 before any
        execution; never raises."""
        return self._job.peak_buffered if self._job is not None else 0

    @property
    def worker_tasks(self) -> int:
        """Scan-pool tasks this query's pulls dispatched (its share of
        the engine's parallel-scan fan-out; 0 under serial scans).
        0 before any execution; never raises."""
        return self._job.worker_tasks if self._job is not None else 0

    # -- lifecycle -----------------------------------------------------------
    def _require_job(self) -> QueryJob:
        self._check_open()
        if self._job is None:
            raise InterfaceError("no query has been executed on this cursor")
        return self._job

    def _check_open(self) -> None:
        if self.closed:
            raise InterfaceError("cursor is closed")
        self.session._check_open()

    def _abandon(self) -> None:
        if self._job is not None and not self._job.done:
            self.session.scheduler.cancel(self._job)

    def close(self) -> None:
        if self._closed:
            return
        self._abandon()
        self._job = None
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
