"""Raw file formats: CSV (the paper's main case, §4) and FITS (§5.3)."""

from repro.formats.csvfmt import (
    CsvDialect,
    LineReader,
    field_spans_prefix,
    find_line_starts,
    span_backward,
    span_forward,
    split_line,
    write_csv,
)

__all__ = [
    "CsvDialect",
    "LineReader",
    "find_line_starts",
    "field_spans_prefix",
    "span_forward",
    "span_backward",
    "split_line",
    "write_csv",
]
