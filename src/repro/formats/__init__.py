"""Raw file formats behind the pluggable adapter registry.

Built-ins: CSV (the paper's main case, §4), FITS (§5.3), heap (the
load-then-query comparator path) and JSON Lines (the openness proof —
registered purely through the public registry, touching neither the
planner nor the catalog). Register your own with
:func:`repro.formats.register_format`; see the "writing a format
adapter" section of the README.
"""

from repro.formats.csvfmt import (
    CsvDialect,
    LineReader,
    field_spans_prefix,
    find_line_starts,
    span_backward,
    span_forward,
    split_line,
    write_csv,
)
from repro.formats.registry import (
    CsvAdapter,
    FitsAdapter,
    FormatAdapter,
    HeapAdapter,
    available_formats,
    get_format,
    has_format,
    register_format,
    sniff_format,
)
from repro.formats.jsonl import JsonlAdapter, write_jsonl  # noqa: E402

__all__ = [
    # adapter registry (the public extension surface)
    "FormatAdapter",
    "register_format",
    "get_format",
    "has_format",
    "available_formats",
    "sniff_format",
    "CsvAdapter",
    "FitsAdapter",
    "HeapAdapter",
    "JsonlAdapter",
    "write_jsonl",
    # CSV primitives
    "CsvDialect",
    "LineReader",
    "find_line_starts",
    "field_spans_prefix",
    "span_forward",
    "span_backward",
    "split_line",
    "write_csv",
]
