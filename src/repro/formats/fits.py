"""FITS binary tables: writer + reader (§5.3).

Implements the subset of the FITS standard the paper's experiment needs:
a primary HDU followed by one BINTABLE extension. Headers are 80-byte
ASCII cards in 2880-byte blocks; table data is big-endian, row-major,
padded to a 2880-byte boundary.

Supported TFORM column codes: ``J`` (int32), ``K`` (int64), ``E``
(float32), ``D`` (float64), ``nA`` (fixed-width ASCII string).

Binary formats flip the paper's cost structure: there is nothing to
tokenize or convert ("each tuple and attribute is usually located in a
well-known location"), so positional maps are unnecessary and caching
becomes the interesting mechanism.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import FITSFormatError
from repro.sql.catalog import Column, Schema
from repro.sql.datatypes import BIGINT, FLOAT, INTEGER, DataType, char
from repro.storage.vfs import VirtualFS

BLOCK = 2880
CARD = 80

_TFORM_STRUCT = {"J": ">i", "K": ">q", "E": ">f", "D": ">d"}
_TFORM_BYTES = {"J": 4, "K": 8, "E": 4, "D": 8}


@dataclass(frozen=True)
class FitsColumn:
    """One BINTABLE column: TTYPE name, TFORM code, byte geometry."""

    name: str
    code: str          # J K E D A
    repeat: int        # width for 'A'; 1 for numeric codes
    offset: int        # byte offset inside a row

    @property
    def nbytes(self) -> int:
        if self.code == "A":
            return self.repeat
        return _TFORM_BYTES[self.code]

    @property
    def dtype(self) -> DataType:
        if self.code == "J":
            return INTEGER
        if self.code == "K":
            return BIGINT
        if self.code in ("E", "D"):
            return FLOAT
        return char(self.repeat)

    def decode(self, row: bytes):
        """Decode this column's value from one row's bytes."""
        raw = row[self.offset:self.offset + self.nbytes]
        if self.code == "A":
            return raw.decode("ascii", "replace").rstrip(" \x00")
        value = struct.unpack(_TFORM_STRUCT[self.code], raw)[0]
        return float(value) if self.code in ("E", "D") else value

    def encode(self, value) -> bytes:
        if self.code == "A":
            raw = str(value).encode("ascii", "replace")[:self.repeat]
            return raw.ljust(self.repeat, b" ")
        if self.code in ("E", "D"):
            return struct.pack(_TFORM_STRUCT[self.code], float(value))
        return struct.pack(_TFORM_STRUCT[self.code], int(value))


@dataclass
class FitsTableInfo:
    """Parsed geometry of the BINTABLE extension."""

    columns: list[FitsColumn]
    row_bytes: int
    nrows: int
    data_offset: int    # absolute byte offset of the table data

    @property
    def schema(self) -> Schema:
        return Schema([Column(c.name, c.dtype) for c in self.columns])


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------
def _card(keyword: str, value: str, quote: bool = False) -> bytes:
    if quote:
        rendered = f"'{value:<8}'"
    else:
        rendered = f"{value:>20}"
    text = f"{keyword:<8}= {rendered}"
    return text.ljust(CARD).encode("ascii")


def _bare_card(text: str) -> bytes:
    return text.ljust(CARD).encode("ascii")


def _pad_block(data: bytes) -> bytes:
    remainder = len(data) % BLOCK
    if remainder:
        data += b"\x00" * (BLOCK - remainder)
    return data


def write_bintable(names: list[str], tforms: list[str],
                   rows: list[tuple]) -> bytes:
    """Serialize a complete FITS file with one binary table extension.

    ``tforms`` entries are like ``"J"``, ``"D"`` or ``"16A"``.
    """
    if len(names) != len(tforms):
        raise FITSFormatError("names and tforms must have equal length")
    columns: list[FitsColumn] = []
    offset = 0
    for name, tform in zip(names, tforms):
        code = tform[-1]
        if code not in ("J", "K", "E", "D", "A"):
            raise FITSFormatError(f"unsupported TFORM: {tform!r}")
        repeat = int(tform[:-1]) if tform[:-1] else 1
        column = FitsColumn(name, code, repeat, offset)
        columns.append(column)
        offset += column.nbytes
    row_bytes = offset

    primary = _card("SIMPLE", "T") + _card("BITPIX", "8") + \
        _card("NAXIS", "0") + _bare_card("END")
    out = _pad_block(primary)

    cards = [
        _card("XTENSION", "BINTABLE", quote=True),
        _card("BITPIX", "8"),
        _card("NAXIS", "2"),
        _card("NAXIS1", str(row_bytes)),
        _card("NAXIS2", str(len(rows))),
        _card("PCOUNT", "0"),
        _card("GCOUNT", "1"),
        _card("TFIELDS", str(len(columns))),
    ]
    for i, (name, tform) in enumerate(zip(names, tforms), start=1):
        cards.append(_card(f"TTYPE{i}", name, quote=True))
        cards.append(_card(f"TFORM{i}", tform, quote=True))
    cards.append(_bare_card("END"))
    out += _pad_block(b"".join(cards))

    body = bytearray()
    for row in rows:
        if len(row) != len(columns):
            raise FITSFormatError(
                f"row arity {len(row)} != table arity {len(columns)}")
        for column, value in zip(columns, row):
            body += column.encode(value)
    out += _pad_block(bytes(body))
    return out


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------
def _parse_cards(block_data: bytes) -> dict[str, str]:
    cards: dict[str, str] = {}
    for i in range(0, len(block_data), CARD):
        card = block_data[i:i + CARD].decode("ascii", "replace")
        keyword = card[:8].strip()
        if keyword == "END":
            cards["END"] = ""
            break
        if "=" not in card:
            continue
        value = card.split("=", 1)[1].strip()
        if value.startswith("'"):
            value = value[1:value.index("'", 1)].strip()
        else:
            value = value.split("/")[0].strip()
        cards[keyword] = value
    return cards


def _read_header(raw: bytes, offset: int) -> tuple[dict[str, str], int]:
    """Read one header (possibly spanning blocks); returns (cards,
    offset-after-header)."""
    cards: dict[str, str] = {}
    while True:
        block = raw[offset:offset + BLOCK]
        if len(block) < BLOCK:
            raise FITSFormatError("truncated FITS header")
        cards.update(_parse_cards(block))
        offset += BLOCK
        if "END" in cards:
            return cards, offset


def parse_fits(raw: bytes) -> FitsTableInfo:
    """Parse a FITS file produced by :func:`write_bintable` (or any file
    with a primary HDU + one BINTABLE)."""
    primary, offset = _read_header(raw, 0)
    if primary.get("SIMPLE") != "T":
        raise FITSFormatError("not a FITS file (SIMPLE != T)")
    naxis = int(primary.get("NAXIS", "0"))
    data_bytes = 0
    if naxis > 0:
        data_bytes = abs(int(primary.get("BITPIX", "8"))) // 8
        for axis in range(1, naxis + 1):
            data_bytes *= int(primary[f"NAXIS{axis}"])
    offset += -(-data_bytes // BLOCK) * BLOCK  # skip primary data, padded

    ext, offset = _read_header(raw, offset)
    if ext.get("XTENSION", "").upper() != "BINTABLE":
        raise FITSFormatError(
            f"expected BINTABLE extension, got {ext.get('XTENSION')!r}")
    row_bytes = int(ext["NAXIS1"])
    nrows = int(ext["NAXIS2"])
    tfields = int(ext["TFIELDS"])
    columns: list[FitsColumn] = []
    col_offset = 0
    for i in range(1, tfields + 1):
        tform = ext[f"TFORM{i}"].strip()
        name = ext.get(f"TTYPE{i}", f"col{i}").strip()
        code = tform[-1]
        if code not in ("J", "K", "E", "D", "A"):
            raise FITSFormatError(f"unsupported TFORM: {tform!r}")
        repeat = int(tform[:-1]) if tform[:-1] else 1
        column = FitsColumn(name, code, repeat, col_offset)
        columns.append(column)
        col_offset += column.nbytes
    if col_offset != row_bytes:
        raise FITSFormatError(
            f"column widths sum to {col_offset}, NAXIS1 says {row_bytes}")
    return FitsTableInfo(columns, row_bytes, nrows, offset)


def parse_fits_from_vfs(vfs: VirtualFS, path: str) -> FitsTableInfo:
    """Parse headers directly from the VFS (uncosted — header parsing is
    negligible next to data scans; the paper never charges it)."""
    return parse_fits(vfs.read_bytes(path))
