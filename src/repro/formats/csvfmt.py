"""CSV tokenizing primitives.

These are pure functions over ``bytes``: they find line boundaries and
attribute spans and report *how many characters they had to examine*,
so the caller (the in-situ scan) can charge the cost model precisely.
This separation is what lets tests assert the paper's mechanisms — e.g.
"selective tokenizing touches fewer characters" — as exact counters.

Dialect note: fields are raw bytes between delimiters; no quoting or
escaping (the paper's generated workloads are plain CSV). The generators
in :mod:`repro.workloads` never emit delimiter bytes inside values, and
:func:`split_line` raises on NUL bytes as a cheap corruption guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import CSVFormatError
from repro.storage.vfs import VirtualFile

NEWLINE = 0x0A  # b"\n"


@dataclass(frozen=True)
class CsvDialect:
    """Delimiter configuration (newline is always ``\\n``)."""

    delimiter: bytes = b","

    @property
    def delim_byte(self) -> int:
        return self.delimiter[0]


DEFAULT_DIALECT = CsvDialect()


def find_line_starts(block: bytes, base_offset: int = 0) -> tuple[list[int], int]:
    """Offsets (absolute, given ``base_offset``) of each line start *after*
    a newline inside ``block``; plus characters scanned.

    The caller seeds the very first line start (offset 0) itself.
    """
    starts: list[int] = []
    search_from = 0
    while True:
        idx = block.find(b"\n", search_from)
        if idx < 0:
            break
        starts.append(base_offset + idx + 1)
        search_from = idx + 1
    return starts, len(block)


def split_line(line: bytes, dialect: CsvDialect = DEFAULT_DIALECT,
               ) -> tuple[list[tuple[int, int]], int]:
    """Spans ``(start, end)`` of every attribute in ``line``; plus chars
    scanned (always the whole line). ``line`` excludes the newline."""
    if b"\x00" in line:
        raise CSVFormatError("NUL byte in CSV line")
    delim = dialect.delimiter
    spans: list[tuple[int, int]] = []
    start = 0
    while True:
        idx = line.find(delim, start)
        if idx < 0:
            spans.append((start, len(line)))
            break
        spans.append((start, idx))
        start = idx + 1
    return spans, len(line)


def field_spans_prefix(line: bytes, upto: int,
                       dialect: CsvDialect = DEFAULT_DIALECT,
                       ) -> tuple[list[tuple[int, int]], int]:
    """Spans of attributes ``0..upto`` (inclusive) — *selective
    tokenizing* (§4.1): stop as soon as the last required attribute has
    been delimited. Returns ``(spans, chars_scanned)``.

    Raises :class:`CSVFormatError` if the line has fewer attributes.
    """
    delim = dialect.delimiter
    spans: list[tuple[int, int]] = []
    start = 0
    for _ in range(upto + 1):
        idx = line.find(delim, start)
        if idx < 0:
            spans.append((start, len(line)))
            if len(spans) <= upto:
                raise CSVFormatError(
                    f"line has {len(spans)} attributes, need {upto + 1}")
            return spans, len(line)
        spans.append((start, idx))
        start = idx + 1
    return spans, start  # scanned through the delimiter of attr `upto`


def span_forward(line: bytes, known_start: int, steps: int,
                 dialect: CsvDialect = DEFAULT_DIALECT,
                 ) -> tuple[list[tuple[int, int]], int]:
    """From a known attribute start offset, tokenize ``steps`` attributes
    forward — the PM's *incremental parsing* (§4.2). Returns the spans of
    the ``steps + 1`` attributes beginning at ``known_start`` (the known
    one first) and the chars scanned.
    """
    delim = dialect.delimiter
    spans: list[tuple[int, int]] = []
    start = known_start
    for _ in range(steps + 1):
        idx = line.find(delim, start)
        if idx < 0:
            spans.append((start, len(line)))
            if len(spans) < steps + 1:
                raise CSVFormatError(
                    f"ran out of attributes scanning forward "
                    f"({len(spans)} of {steps + 1})")
            return spans, len(line) - known_start
        spans.append((start, idx))
        start = idx + 1
    return spans, start - known_start


def span_backward(line: bytes, known_start: int, steps: int,
                  dialect: CsvDialect = DEFAULT_DIALECT,
                  ) -> tuple[list[tuple[int, int]], int]:
    """From a known attribute start, tokenize ``steps`` attributes
    *backward* (§4.2: "jumps ... and tokenizes backwards").

    Returns spans of the ``steps`` attributes before the known one, in
    file order (earliest first), plus chars scanned.
    """
    if steps <= 0:
        return [], 0
    delim_byte = dialect.delim_byte
    # known_start - 1 is the delimiter that ends the previous attribute.
    boundaries: list[int] = []   # start offsets, collected right-to-left
    pos = known_start - 1
    scanned = 0
    remaining = steps
    while remaining > 0:
        end = pos          # delimiter position ending this attribute
        pos -= 1
        while pos >= 0 and line[pos] != delim_byte:
            pos -= 1
        scanned += end - pos
        boundaries.append(pos + 1)
        remaining -= 1
        if pos < 0 and remaining > 0:
            raise CSVFormatError(
                f"ran out of attributes scanning backward "
                f"({steps - remaining} of {steps})")
    starts = boundaries[::-1]
    spans = []
    for i, start in enumerate(starts):
        end = starts[i + 1] - 1 if i + 1 < len(starts) else known_start - 1
        spans.append((start, end))
    return spans, scanned


class LineReader:
    """Streams ``(line_start_offset, line_bytes)`` pairs from a costed
    :class:`VirtualFile`, reading in large sequential blocks.

    Disk cost is charged by the file handle; the newline scan itself is
    *not* charged here — the caller decides (a PostgresRaw scan that
    already has the line index jumps without scanning; a first pass
    charges ``tokenize`` per char via the ``chars_scanned`` counter).
    """

    def __init__(self, handle: VirtualFile, block_size: int = 256 * 1024,
                 start_offset: int = 0):
        self.handle = handle
        self.block_size = block_size
        self.start_offset = start_offset
        self.chars_scanned = 0

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        self.handle.seek(self.start_offset)
        buf = b""
        buf_start = self.start_offset  # absolute offset of buf[0]
        while True:
            block = self.handle.read_sequential(self.block_size)
            if not block:
                break
            self.chars_scanned += len(block)
            buf += block
            cursor = 0
            while True:
                idx = buf.find(b"\n", cursor)
                if idx < 0:
                    break
                yield buf_start + cursor, buf[cursor:idx]
                cursor = idx + 1
            buf = buf[cursor:]
            buf_start += cursor
        if buf:
            yield buf_start, buf


def write_csv(rows: Iterator[list[str]] | list[list[str]],
              dialect: CsvDialect = DEFAULT_DIALECT) -> bytes:
    """Render pre-formatted string rows as CSV bytes (used by generators
    and by tests; values must not contain the delimiter or newlines)."""
    delim = dialect.delimiter.decode("ascii")
    out: list[str] = []
    for row in rows:
        for value in row:
            if delim in value or "\n" in value:
                raise CSVFormatError(
                    f"value contains delimiter/newline: {value!r}")
        out.append(delim.join(row))
    return ("\n".join(out) + "\n").encode("utf-8") if out else b""
