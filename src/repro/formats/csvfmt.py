"""CSV tokenizing primitives — scalar and vectorized.

The scalar functions (:func:`split_line`, :func:`field_spans_prefix`,
:func:`span_forward`, :func:`span_backward`) are pure functions over
``bytes``: they find line boundaries and attribute spans and report *how
many characters they had to examine*, so the caller (the in-situ scan)
can charge the cost model precisely. This separation is what lets tests
assert the paper's mechanisms — e.g. "selective tokenizing touches fewer
characters" — as exact counters.

The vectorized layer (:func:`newline_offsets`, :class:`BlockTokenizer`,
:func:`block_field_spans`, :func:`block_span_forward`,
:func:`block_span_backward`) computes the same spans for a whole block
of lines at once with NumPy. The key observation: once the delimiter
positions of a buffer are materialized as one sorted array ``D``
(``np.flatnonzero``), the *j*-th delimiter of any line is
``D[searchsorted(D, line_start) + j]`` — tokenizing forward or backward
from any known attribute position becomes pure index arithmetic, with
no per-row byte scanning. The ``block_*`` functions are pinned to their
scalar counterparts (spans and chars-scanned both) by property tests.

Dialect note: fields are raw bytes between delimiters; no quoting or
escaping (the paper's generated workloads are plain CSV). The generators
in :mod:`repro.workloads` never emit delimiter bytes inside values, and
:func:`split_line` raises on NUL bytes as a cheap corruption guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import CSVFormatError, annotate
from repro.storage.vfs import VirtualFile

NEWLINE = 0x0A  # b"\n"


@dataclass(frozen=True)
class CsvDialect:
    """Delimiter configuration (newline is always ``\\n``)."""

    delimiter: bytes = b","

    @property
    def delim_byte(self) -> int:
        return self.delimiter[0]


DEFAULT_DIALECT = CsvDialect()


def find_line_starts(block: bytes, base_offset: int = 0) -> tuple[list[int], int]:
    """Offsets (absolute, given ``base_offset``) of each line start *after*
    a newline inside ``block``; plus characters scanned.

    The caller seeds the very first line start (offset 0) itself.
    """
    starts: list[int] = []
    search_from = 0
    while True:
        idx = block.find(b"\n", search_from)
        if idx < 0:
            break
        starts.append(base_offset + idx + 1)
        search_from = idx + 1
    return starts, len(block)


def split_line(line: bytes, dialect: CsvDialect = DEFAULT_DIALECT,
               ) -> tuple[list[tuple[int, int]], int]:
    """Spans ``(start, end)`` of every attribute in ``line``; plus chars
    scanned (always the whole line). ``line`` excludes the newline."""
    if b"\x00" in line:
        raise CSVFormatError("NUL byte in CSV line")
    delim = dialect.delimiter
    spans: list[tuple[int, int]] = []
    start = 0
    while True:
        idx = line.find(delim, start)
        if idx < 0:
            spans.append((start, len(line)))
            break
        spans.append((start, idx))
        start = idx + 1
    return spans, len(line)


def field_spans_prefix(line: bytes, upto: int,
                       dialect: CsvDialect = DEFAULT_DIALECT,
                       ) -> tuple[list[tuple[int, int]], int]:
    """Spans of attributes ``0..upto`` (inclusive) — *selective
    tokenizing* (§4.1): stop as soon as the last required attribute has
    been delimited. Returns ``(spans, chars_scanned)``.

    Raises :class:`CSVFormatError` if the line has fewer attributes.
    """
    delim = dialect.delimiter
    spans: list[tuple[int, int]] = []
    start = 0
    for _ in range(upto + 1):
        idx = line.find(delim, start)
        if idx < 0:
            spans.append((start, len(line)))
            if len(spans) <= upto:
                raise CSVFormatError(
                    f"line has {len(spans)} attributes, need {upto + 1}")
            return spans, len(line)
        spans.append((start, idx))
        start = idx + 1
    return spans, start  # scanned through the delimiter of attr `upto`


def span_forward(line: bytes, known_start: int, steps: int,
                 dialect: CsvDialect = DEFAULT_DIALECT,
                 ) -> tuple[list[tuple[int, int]], int]:
    """From a known attribute start offset, tokenize ``steps`` attributes
    forward — the PM's *incremental parsing* (§4.2). Returns the spans of
    the ``steps + 1`` attributes beginning at ``known_start`` (the known
    one first) and the chars scanned.
    """
    delim = dialect.delimiter
    spans: list[tuple[int, int]] = []
    start = known_start
    for _ in range(steps + 1):
        idx = line.find(delim, start)
        if idx < 0:
            spans.append((start, len(line)))
            if len(spans) < steps + 1:
                raise CSVFormatError(
                    f"ran out of attributes scanning forward "
                    f"({len(spans)} of {steps + 1})")
            return spans, len(line) - known_start
        spans.append((start, idx))
        start = idx + 1
    return spans, start - known_start


def span_backward(line: bytes, known_start: int, steps: int,
                  dialect: CsvDialect = DEFAULT_DIALECT,
                  ) -> tuple[list[tuple[int, int]], int]:
    """From a known attribute start, tokenize ``steps`` attributes
    *backward* (§4.2: "jumps ... and tokenizes backwards").

    Returns spans of the ``steps`` attributes before the known one, in
    file order (earliest first), plus chars scanned.
    """
    if steps <= 0:
        return [], 0
    delim_byte = dialect.delim_byte
    # known_start - 1 is the delimiter that ends the previous attribute.
    boundaries: list[int] = []   # start offsets, collected right-to-left
    pos = known_start - 1
    scanned = 0
    remaining = steps
    while remaining > 0:
        end = pos          # delimiter position ending this attribute
        pos -= 1
        while pos >= 0 and line[pos] != delim_byte:
            pos -= 1
        scanned += end - pos
        boundaries.append(pos + 1)
        remaining -= 1
        if pos < 0 and remaining > 0:
            raise CSVFormatError(
                f"ran out of attributes scanning backward "
                f"({steps - remaining} of {steps})")
    starts = boundaries[::-1]
    spans = []
    for i, start in enumerate(starts):
        end = starts[i + 1] - 1 if i + 1 < len(starts) else known_start - 1
        spans.append((start, end))
    return spans, scanned


# ---------------------------------------------------------------------------
# Vectorized (block-at-a-time) tokenizing
# ---------------------------------------------------------------------------
def newline_offsets(block: bytes | memoryview) -> np.ndarray:
    """Offsets of every newline byte inside ``block`` (int64, sorted) —
    the vectorized counterpart of the :func:`find_line_starts` loop."""
    arr = np.frombuffer(block, dtype=np.uint8)
    return np.flatnonzero(arr == NEWLINE).astype(np.int64)


class BlockTokenizer:
    """Delimiter index over one contiguous byte buffer.

    ``base`` is the absolute file offset of ``buffer[0]``; every
    position consumed or produced by this class is absolute, so callers
    can mix positional-map offsets and line spans without translation.
    """

    __slots__ = ("base", "delims", "ndelims")

    def __init__(self, buffer: bytes | memoryview, base: int = 0,
                 dialect: CsvDialect = DEFAULT_DIALECT):
        self.base = base
        arr = np.frombuffer(buffer, dtype=np.uint8)
        self.delims = np.flatnonzero(
            arr == dialect.delim_byte).astype(np.int64)
        if base:
            self.delims += base
        self.ndelims = len(self.delims)

    def delim_index(self, positions: np.ndarray) -> np.ndarray:
        """Index (into the delimiter array) of the first delimiter at or
        after each position."""
        return np.searchsorted(self.delims, positions)

    def boundary(self, indexes: np.ndarray, line_ends: np.ndarray,
                 ) -> tuple[np.ndarray, np.ndarray]:
        """``(positions, is_delim)`` for delimiter ``indexes``, clipped
        per row at ``line_ends``: where a line has no such delimiter the
        position is the line end and ``is_delim`` is False."""
        if self.ndelims == 0:
            return line_ends.copy(), np.zeros(len(indexes), dtype=bool)
        clipped = np.clip(indexes, 0, self.ndelims - 1)
        positions = self.delims[clipped]
        is_delim = ((indexes >= 0) & (indexes < self.ndelims)
                    & (positions < line_ends))
        return np.where(is_delim, positions, line_ends), is_delim


def block_field_spans(tok: BlockTokenizer, line_starts: np.ndarray,
                      line_ends: np.ndarray, upto: int,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`field_spans_prefix` over a block of lines.

    Returns ``(starts, ends, scanned)`` where ``starts``/``ends`` are
    ``(nrows, upto + 1)`` absolute span matrices and ``scanned`` is the
    per-row chars-examined count (identical to the scalar function's).
    Raises :class:`CSVFormatError` if any line has fewer attributes.
    """
    nrows = len(line_starts)
    starts = np.empty((nrows, upto + 1), dtype=np.int64)
    ends = np.empty_like(starts)
    starts[:, 0] = line_starts
    idx0 = tok.delim_index(line_starts)
    for j in range(upto + 1):
        bounds, is_delim = tok.boundary(idx0 + j, line_ends)
        ends[:, j] = bounds
        if j < upto:
            if not is_delim.all():
                short = int(np.flatnonzero(~is_delim)[0])
                raise annotate(
                    CSVFormatError(
                        f"line has {j + 1} attributes, need {upto + 1} "
                        f"(row {short} of block)"),
                    row_in_block=short)
            starts[:, j + 1] = bounds + 1
    scanned = np.minimum(ends[:, upto] + 1, line_ends) - line_starts
    return starts, ends, scanned


def block_span_forward(tok: BlockTokenizer, known_starts: np.ndarray,
                       steps: int, line_ends: np.ndarray,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`span_forward`: from known attribute starts,
    tokenize ``steps`` attributes forward on every line at once.

    Returns ``(starts, ends, scanned)`` — ``(nrows, steps + 1)`` span
    matrices (the known attribute first) plus per-row chars scanned.
    """
    nrows = len(known_starts)
    starts = np.empty((nrows, steps + 1), dtype=np.int64)
    ends = np.empty_like(starts)
    starts[:, 0] = known_starts
    idx0 = tok.delim_index(known_starts)
    for j in range(steps + 1):
        bounds, is_delim = tok.boundary(idx0 + j, line_ends)
        ends[:, j] = bounds
        if j < steps:
            if not is_delim.all():
                found = j + 1
                raise CSVFormatError(
                    f"ran out of attributes scanning forward "
                    f"({found} of {steps + 1})")
            starts[:, j + 1] = bounds + 1
    scanned = np.minimum(ends[:, steps] + 1, line_ends) - known_starts
    return starts, ends, scanned


def block_span_backward(tok: BlockTokenizer, known_starts: np.ndarray,
                        steps: int, line_starts: np.ndarray,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`span_backward`: tokenize ``steps`` attributes
    *backward* from known attribute starts on every line at once.

    Returns ``(starts, ends, scanned)`` — ``(nrows, steps)`` span
    matrices in file order (earliest attribute first) plus per-row chars
    scanned, matching the scalar function exactly.
    """
    nrows = len(known_starts)
    if steps <= 0:
        empty = np.empty((nrows, 0), dtype=np.int64)
        return empty, empty.copy(), np.zeros(nrows, dtype=np.int64)
    idx0 = tok.delim_index(known_starts)   # delim at known_start-1 is idx0-1
    first_idx = tok.delim_index(line_starts)
    # Backward attr m (1 = nearest) ends at delimiter idx0-m; it exists
    # only while idx0-m >= first_idx.
    if int((idx0 - first_idx).min()) < steps:
        short = int(np.flatnonzero((idx0 - first_idx) < steps)[0])
        found = int((idx0 - first_idx)[short])
        raise CSVFormatError(
            f"ran out of attributes scanning backward "
            f"({found} of {steps})")
    starts = np.empty((nrows, steps), dtype=np.int64)
    ends = np.empty_like(starts)
    for m in range(1, steps + 1):
        col = steps - m                    # file order: earliest first
        prev_idx = idx0 - m - 1
        has_prev = prev_idx >= first_idx
        prev = np.where(has_prev, tok.delims[np.maximum(prev_idx, 0)],
                        line_starts - 1)
        starts[:, col] = prev + 1
        # Attr `col` ends one byte before the next attribute's start
        # (the scalar function's convention).
        ends[:, col] = tok.delims[idx0 - m]
    # Chars scanned telescopes: from the delimiter ending the attribute
    # before the known one back to the position just before the earliest
    # attribute found.
    scanned = known_starts - starts[:, 0]
    return starts, ends, scanned


class LineReader:
    """Streams ``(line_start_offset, line_bytes)`` pairs from a costed
    :class:`VirtualFile`, reading in large sequential blocks.

    Disk cost is charged by the file handle; the newline scan itself is
    *not* charged here — the caller decides (a PostgresRaw scan that
    already has the line index jumps without scanning; a first pass
    charges ``tokenize`` per char via the ``chars_scanned`` counter).
    """

    def __init__(self, handle: VirtualFile, block_size: int = 256 * 1024,
                 start_offset: int = 0):
        self.handle = handle
        self.block_size = block_size
        self.start_offset = start_offset
        self.chars_scanned = 0

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        self.handle.seek(self.start_offset)
        buf = b""
        buf_start = self.start_offset  # absolute offset of buf[0]
        while True:
            block = self.handle.read_sequential(self.block_size)
            if not block:
                break
            self.chars_scanned += len(block)
            buf += block
            cursor = 0
            while True:
                idx = buf.find(b"\n", cursor)
                if idx < 0:
                    break
                yield buf_start + cursor, buf[cursor:idx]
                cursor = idx + 1
            buf = buf[cursor:]
            buf_start += cursor
        if buf:
            yield buf_start, buf


def write_csv(rows: Iterator[list[str]] | list[list[str]],
              dialect: CsvDialect = DEFAULT_DIALECT) -> bytes:
    """Render pre-formatted string rows as CSV bytes (used by generators
    and by tests; values must not contain the delimiter or newlines)."""
    delim = dialect.delimiter.decode("ascii")
    out: list[str] = []
    for row in rows:
        for value in row:
            if delim in value or "\n" in value:
                raise CSVFormatError(
                    f"value contains delimiter/newline: {value!r}")
        out.append(delim.join(row))
    return ("\n".join(out) + "\n").encode("utf-8") if out else b""
