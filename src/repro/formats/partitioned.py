"""Partitioned multi-file tables: a format wrapper with zone-map pruning.

Real raw data is a *directory* of files, not one file. This wrapper
extends the paper's adaptive-auxiliary-structure idea (§4) to file
granularity: ``CREATE TABLE t (...) USING csv OPTIONS (path
'events-*.csv')`` expands the glob, binds one child access method per
file through the wrapped :class:`~repro.formats.registry.FormatAdapter`
(csv, jsonl and fits work unchanged), and accumulates a **zone map**
per file — exact min/max per attribute plus the row count — harvested
from the child's §4.4 statistics reservoirs the first time each file is
scanned. A predicate whose interval cannot intersect a file's zone
skips the file entirely; the planner surfaces pruned/scanned file
counts in EXPLAIN, and the scan charges them as the (deliberately
zero-priced) ``files_scanned`` / ``files_pruned`` counters.

Determinism contract (the PR-4 invariant at file granularity): children
are scanned in canonical filename order. With a
:class:`~repro.core.parallel.ScanWorkerPool` the scan dispatches whole
files to workers, each charging into a
:class:`~repro.simcost.model.RecordingModel` op log snapshotted at
batch boundaries; the single-threaded merge replays the logs — and
yields the buffered batches — in file order, so results, per-file
positional-map/cache contents and every counter are bit-identical at
any worker count. Two caveats, both deliberate: children never use the
row-group pool themselves (file-level and group-level fan-out on one
shared pool would deadlock), and a scan that *errors or is abandoned
mid-flight* may leave speculatively scanned files with auxiliary state
a serial scan would not have built yet (their recorded charges are
discarded; on error those files' structures are reset). File fan-out
also stays off when the simulated OS page cache is capacity-bounded —
cross-file prefetch would make eviction order, and therefore warm/cold
accounting, depend on thread timing.

Zone-map soundness: bounds come from
:class:`~repro.core.statistics.ReservoirSampler`'s exact extremes and
are used only when the collecting scan observed *every* row of the
file (true for WHERE attributes, and for all attributes of an
unfiltered scan). SQL three-valued logic makes min/max over non-null
values sufficient: NULL comparisons are UNKNOWN and UNKNOWN rows are
filtered. A ``partition_by '<column> from filename'`` option
additionally seeds each file's zone for that column from the
filename's glob-wildcard text (hive-style partitioning: the user
asserts every row's value equals the filename key), enabling pruning
before any file has been scanned.
"""

from __future__ import annotations

import datetime
import fnmatch
import hashlib
import json
import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import CatalogError
from repro.formats.registry import (
    FormatAdapter,
    get_format,
    register_format,
    sniff_format,
)
from repro.simcost.model import CostModel, RecordingModel
from repro.sql.catalog import TableInfo
from repro.sql.optimizer import zone_may_match
from repro.sql.scanapi import ScanPredicate
from repro.sql.stats import ColumnStats, TableStats

_GLOB_CHARS = frozenset("*?[")
_PARTITION_BY_RE = re.compile(
    r"^\s*([A-Za-z_]\w*)\s+from\s+filename\s*$", re.IGNORECASE)

#: Zone-map sidecars live under their own VFS prefix (never inside the
#: data directories, so a table glob like ``data/*`` cannot match
#: them). Like the positional map and binary cache, they are engine
#: metadata — written and read uncosted — but unlike those they are
#: persisted to the VFS, so a fresh engine over the same VFS starts
#: with warm per-file zone maps (file pruning before any rescan).
_ZONE_PREFIX = "__zones__/"


def _file_fingerprint(vfs, path: str) -> str:
    """Content fingerprint of a data file: hash of its first and last
    OS-cache block plus the size. The (rewrite_count, size) staleness
    guard cannot see a same-size in-place mutation made behind the
    engine's back; hashing the head and tail blocks catches it without
    paying a full-file read on every zone load."""
    from repro.storage.vfs import OS_CACHE_BLOCK
    data = vfs.read_bytes(path)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(len(data)).encode())
    digest.update(b"\x00")
    digest.update(data[:OS_CACHE_BLOCK])
    digest.update(b"\x00")
    digest.update(data[-OS_CACHE_BLOCK:])
    return digest.hexdigest()


def _payload_checksum(payload: dict) -> str:
    """Integrity checksum over the sidecar payload itself (everything
    except the checksum field), so bit rot in the sidecar is detected
    rather than silently steering pruning decisions."""
    body = {key: value for key, value in payload.items()
            if key != "checksum"}
    encoded = json.dumps(body, sort_keys=True, default=str).encode()
    return hashlib.blake2b(encoded, digest_size=16).hexdigest()


def _pack_zone_value(value):
    """JSON-encode one zone bound, tagging types JSON cannot round-trip
    natively (dates as ISO strings)."""
    if isinstance(value, datetime.date):
        return {"date": value.isoformat()}
    return value


def _unpack_zone_value(value):
    if isinstance(value, dict):
        return datetime.date.fromisoformat(value["date"])
    return value


def _is_glob(path) -> bool:
    return isinstance(path, str) and any(ch in _GLOB_CHARS for ch in path)


def maybe_wrap_partitioned(adapter: FormatAdapter,
                           options: dict) -> FormatAdapter:
    """Wrap ``adapter`` in a :class:`PartitionedAdapter` when the DDL
    asked for a multi-file table (glob path or ``partition_by``)."""
    if isinstance(adapter, PartitionedAdapter):
        return adapter
    if _is_glob(options.get("path")) or "partition_by" in options:
        return PartitionedAdapter(inner=adapter)
    return adapter


def expand_glob(vfs, pattern: str) -> list[str]:
    """VFS paths matching ``pattern``, sorted (the canonical child
    order every scan and merge uses)."""
    if not _is_glob(pattern):
        return [pattern] if vfs.exists(pattern) else []
    return sorted(path for path in vfs.listdir()
                  if fnmatch.fnmatchcase(path, pattern)
                  and not path.startswith(_ZONE_PREFIX))


def _parse_partition_by(spec) -> str:
    match = _PARTITION_BY_RE.match(spec) if isinstance(spec, str) else None
    if match is None:
        raise CatalogError(
            f"option 'partition_by' must look like '<column> from "
            f"filename', got {spec!r}")
    return match.group(1).lower()


def _key_extractor(pattern: str):
    """Map a matched path to the text the glob wildcards consumed
    (``events-*.csv`` + ``events-2024-01-07.csv`` -> ``2024-01-07``);
    the whole stem for non-glob patterns."""
    wild = [i for i, ch in enumerate(pattern) if ch in _GLOB_CHARS]
    if not wild:
        def stem(path: str) -> str | None:
            base = path.rsplit("/", 1)[-1]
            dot = base.rfind(".")
            return base[:dot] if dot > 0 else base
        return stem
    prefix = pattern[:wild[0]]
    suffix = pattern[wild[-1] + 1:]

    def extract(path: str) -> str | None:
        if (path.startswith(prefix) and path.endswith(suffix)
                and len(path) >= len(prefix) + len(suffix)):
            return path[len(prefix):len(path) - len(suffix)]
        return None
    return extract


@dataclass
class PartitionSelection:
    """One pruning decision: how many files the predicate left alive."""

    total: int
    scanned: int
    pruned: int
    #: summed row count of surviving files when every one is known
    est_rows: int | None = None


class _ModelRouter(CostModel):
    """A cost model whose charges are forwarded to a switchable target.

    Every per-file object (child access, its positional map, cache and
    statistics collectors) is built against one router. Serially the
    target is the real (format-profile) model; while a pooled file task
    runs, the worker points the target at its private
    :class:`RecordingModel` so the merge can replay the charges in
    canonical file order.
    """

    def __init__(self, target: CostModel):
        super().__init__(clock=target.clock, profile=target.profile)
        self.target = target

    def charge(self, event, units: float = 1) -> None:
        self.target.charge(event, units)


class _EngineProxy:
    """The engine facade handed to the wrapped adapter when building a
    child access method: same machine (vfs/config/policy), but the
    model is the child's router and there is no row-group pool (see
    the module docstring's determinism contract)."""

    def __init__(self, engine, model):
        self.vfs = engine.vfs
        self.model = model
        self.config = getattr(engine, "config", None)
        self.in_situ_policy = getattr(engine, "in_situ_policy", None)
        self.scan_pool = None


class _Partition:
    """One file of a partitioned table: child access + zone map."""

    __slots__ = ("path", "key", "info", "access", "router", "model",
                 "zone", "row_count", "empty", "busy", "future",
                 "_seen_rewrites", "_seen_size")

    def __init__(self, path: str, key):
        self.path = path
        self.key = key
        self.info: TableInfo | None = None
        self.access = None
        self.router: _ModelRouter | None = None
        self.model: CostModel | None = None
        self.zone: dict[str, tuple] = {}
        self.row_count: int | None = None
        self.empty = False
        self.busy = False
        self.future = None
        self._seen_rewrites: int | None = None
        self._seen_size = 0

    def bounds_of(self, name: str):
        if self.empty:
            return (None, None)  # zero rows: nothing can match
        return self.zone.get(name.lower())


class PartitionedAccess:
    """Access method over one glob of files, one child access each."""

    batch_enabled = True

    def __init__(self, engine, info: TableInfo, inner: FormatAdapter,
                 options: dict):
        self.engine = engine
        self.vfs = engine.vfs
        self.model = engine.model
        self.table_info = info
        self.schema = info.schema
        self.inner = inner
        self.options = options
        self.pattern = options.get("path", "")
        #: per-table error policy, inherited by every child access
        #: through ``_child_options`` (surfaced by EXPLAIN here).
        self.on_error = options.get("on_error", "fail")
        self.pool = getattr(engine, "scan_pool", None)
        self.parts: list[_Partition] = []
        self._by_path: dict[str, _Partition] = {}
        self._live_scans = 0
        self._folded = None
        self.partition_column: str | None = None
        spec = options.get("partition_by")
        if spec is not None:
            self.partition_column = _parse_partition_by(spec)
            if not info.schema.has_column(self.partition_column):
                raise CatalogError(
                    f"partition_by column {self.partition_column!r} is "
                    f"not in the schema of {info.name!r}")
        self._extract_key = _key_extractor(self.pattern)
        self._expand()
        if not self.parts:
            raise CatalogError(
                f"no files match {self.pattern!r} for table "
                f"{info.name!r}")

    # -- partition lifecycle -------------------------------------------
    def _child_options(self, path: str) -> dict:
        child = {key: value for key, value in self.options.items()
                 if key not in ("partition_by", "format")}
        child["path"] = path
        return child

    def _build_part(self, path: str) -> _Partition:
        key = self._extract_key(path)
        part = _Partition(path, key)
        part.model = CostModel(
            self.model.clock,
            self.inner.cost_profile(self.engine) or self.model.profile)
        part.router = _ModelRouter(part.model)
        child_options = self._child_options(path)
        part.info = TableInfo(
            name=f"{self.table_info.name}#{path}",
            schema=self.schema, path=path, format=self.inner.name,
            options=child_options, external=self.table_info.external)
        proxy = _EngineProxy(self.engine, part.router)
        part.access = self.inner.build_access(proxy, part.info,
                                              child_options)
        part._seen_rewrites = self.vfs.rewrite_count(path)
        part._seen_size = self.vfs.size(path)
        if self.partition_column is not None:
            part.zone[self.partition_column] = self._seed_bounds(part)
        self._load_zone(part)
        return part

    # -- zone persistence ----------------------------------------------
    def _zone_path(self, part: _Partition) -> str:
        return _ZONE_PREFIX + part.path.lstrip("/")

    def _persist_zone(self, part: _Partition) -> None:
        """Write the file's zone map to its sidecar so the next engine
        over this VFS prunes without rescanning. Catalog metadata, so
        the write is uncosted (``write_bytes`` bypasses costed
        handles), mirroring how the zone itself is consulted at plan
        time for free."""
        if part.row_count is None:
            return
        payload = {
            "rewrites": part._seen_rewrites,
            "size": part._seen_size,
            "row_count": part.row_count,
            "empty": part.empty,
            "zone": {name: [_pack_zone_value(lo), _pack_zone_value(hi)]
                     for name, (lo, hi) in part.zone.items()},
        }
        payload["fingerprint"] = _file_fingerprint(self.vfs, part.path)
        payload["checksum"] = _payload_checksum(payload)
        self.vfs.write_bytes(self._zone_path(part),
                             json.dumps(payload).encode())

    def _load_zone(self, part: _Partition) -> None:
        """Restore a sidecar written by a previous engine — but only
        when its recorded (rewrite_count, size) still matches the data
        file, i.e. the bounds provably cover every current row."""
        path = self._zone_path(part)
        if not self.vfs.exists(path):
            return
        try:
            payload = json.loads(self.vfs.read_bytes(path).decode())
        except (ValueError, UnicodeDecodeError):
            self._quarantine_zone(part, path)
            return  # corrupt sidecar: quarantined, rebuilt on next scan
        if (not isinstance(payload, dict)
                or payload.get("checksum") != _payload_checksum(payload)):
            self._quarantine_zone(part, path)
            return  # sidecar body doesn't match its checksum
        if (payload.get("rewrites") != part._seen_rewrites
                or payload.get("size") != part._seen_size):
            return  # data file changed since the sidecar was written
        if payload.get("fingerprint") != _file_fingerprint(self.vfs,
                                                           part.path):
            # Same (rewrites, size) but different bytes: the file was
            # mutated in place behind the engine's back. The recorded
            # bounds may no longer cover every row — quarantine.
            self._quarantine_zone(part, path)
            return
        row_count = payload.get("row_count")
        if not isinstance(row_count, int):
            return
        part.row_count = row_count
        part.empty = bool(payload.get("empty"))
        for name, bounds in payload.get("zone", {}).items():
            if not self.schema.has_column(name):
                continue
            try:
                part.zone[name.lower()] = (_unpack_zone_value(bounds[0]),
                                           _unpack_zone_value(bounds[1]))
            except (KeyError, IndexError, TypeError, ValueError):
                continue

    def _quarantine_zone(self, part: _Partition, path: str) -> None:
        """Drop an untrustworthy sidecar (corrupt, checksum mismatch, or
        fingerprint-detected in-place mutation): delete it, count the
        degradation, and let the next scan rebuild it from the raw file
        — graceful degradation, never a wrong pruning decision."""
        if self.vfs.exists(path):
            self.vfs.delete(path)
        self.model.aux_rebuild(1)

    def _seed_bounds(self, part: _Partition) -> tuple:
        if part.key is None:
            raise CatalogError(
                f"cannot derive a partition key for {part.path!r} from "
                f"pattern {self.pattern!r}")
        idx = self.schema.index_of(self.partition_column)
        try:
            value = self.schema.columns[idx].dtype.parse(part.key)
        except Exception as exc:
            raise CatalogError(
                f"partition key {part.key!r} of {part.path!r} is not a "
                f"valid {self.schema.columns[idx].dtype.name}: {exc}"
            ) from exc
        return (value, value)

    def _teardown_part(self, part: _Partition) -> None:
        positional_map = getattr(part.access, "pm", None)
        if positional_map is not None:
            positional_map.drop()
        cache = getattr(part.access, "cache", None)
        if cache is not None:
            cache.clear()
        part.access = None

    def _expand(self) -> None:
        """(Re-)expand the glob: new files appear in sorted order,
        vanished files are torn down. Pure catalog work — uncosted."""
        matched = expand_glob(self.vfs, self.pattern)
        matched_set = set(matched)
        for path in list(self._by_path):
            if path not in matched_set:
                self._teardown_part(self._by_path.pop(path))
        for path in matched:
            if path not in self._by_path:
                self._by_path[path] = self._build_part(path)
        self.parts = [self._by_path[path] for path in matched]

    def _reset_part(self, part: _Partition) -> None:
        """Back to a cold, zone-less state (file changed externally, or
        a speculative worker scan had to be discarded)."""
        positional_map = getattr(part.access, "pm", None)
        if positional_map is not None:
            positional_map.drop()
        cache = getattr(part.access, "cache", None)
        if cache is not None:
            cache.clear()
        part.info.stats = None
        part.info.row_count_hint = None
        if hasattr(part.access, "row_count"):
            part.access.row_count = None
        part.zone = {}
        part.row_count = None
        part.empty = False
        if self.partition_column is not None:
            part.zone[self.partition_column] = self._seed_bounds(part)

    # -- AccessMethod protocol -----------------------------------------
    def refresh(self) -> None:
        before = {part.path for part in self.parts}
        self._expand()
        changed = {part.path for part in self.parts} != before
        for part in self.parts:
            refresh = getattr(part.access, "refresh", None)
            if refresh is not None:
                refresh()
            rewrites = self.vfs.rewrite_count(part.path)
            size = self.vfs.size(part.path)
            if part._seen_rewrites is None:
                part._seen_rewrites, part._seen_size = rewrites, size
                continue
            if rewrites != part._seen_rewrites or size > part._seen_size:
                # Rewritten or appended: the zone (and the child stats
                # it was harvested from) no longer covers every row.
                part.info.stats = None
                part.zone = {}
                part.row_count = None
                part.empty = False
                changed = True
                if self.partition_column is not None:
                    part.zone[self.partition_column] = \
                        self._seed_bounds(part)
            part._seen_rewrites, part._seen_size = rewrites, size
        if changed:
            # Plan-time folds over zone maps (and rollups built from
            # this table) must be invalidated *now*, not at the next
            # stats install — move the table's data version so the
            # catalog epoch advances immediately.
            self.table_info.data_version += 1

    def estimated_rows(self) -> int | None:
        rows = 0
        for part in self.parts:
            if part.row_count is None:
                return None
            rows += part.row_count
        return rows

    # -- pruning --------------------------------------------------------
    def _split(self, conjuncts: list) -> tuple[list, list]:
        if not conjuncts:
            return list(self.parts), []
        survivors: list[_Partition] = []
        pruned: list[_Partition] = []
        for part in self.parts:
            if all(zone_may_match(conjunct, part.bounds_of)
                   for conjunct in conjuncts):
                survivors.append(part)
            else:
                pruned.append(part)
        return survivors, pruned

    def select_partitions(self, conjuncts: list | None
                          ) -> PartitionSelection:
        """The pruning decision for a conjunct list — consulted by the
        planner for EXPLAIN/estimates and by every scan for the real
        file selection. Free of virtual time (catalog work)."""
        survivors, pruned = self._split(list(conjuncts or []))
        est: int | None = 0
        for part in survivors:
            if part.row_count is None:
                est = None
                break
            est += part.row_count
        return PartitionSelection(total=len(self.parts),
                                  scanned=len(survivors),
                                  pruned=len(pruned), est_rows=est)

    # -- scanning -------------------------------------------------------
    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        for batch in self.scan_batches(needed, predicate):
            self.model.materialize_rows(batch.nrows)
            yield from batch.iter_rows()

    def scan_batches(self, needed: Sequence[int],
                     predicate: ScanPredicate | None):
        conjuncts = (list(predicate.conjuncts or [])
                     if predicate is not None else [])
        survivors, pruned = self._split(conjuncts)
        self.model.files_scanned(len(survivors))
        self.model.files_pruned(len(pruned))
        fan_out = (
            self.pool is not None and len(survivors) > 1
            and self._live_scans == 0
            and self.vfs.os_cache.capacity_bytes is None)
        self._live_scans += 1
        try:
            if fan_out:
                yield from self._scan_fanout(survivors, needed,
                                             predicate)
            else:
                for part in survivors:
                    self._wait_idle(part)
                    yield from self._scan_inline(part, needed,
                                                 predicate)
            self._fold_parent_stats()
        finally:
            self._live_scans -= 1

    def _scan_inline(self, part: _Partition, needed, predicate):
        yield from part.access.scan_batches(needed, predicate)
        self._harvest(part)

    def _wait_idle(self, part: _Partition) -> None:
        """Block until a pooled task on ``part`` (dispatched by an
        overlapping scan) finishes — workers never wait on the main
        thread, so this cannot deadlock."""
        while part.busy:
            future = part.future
            if future is None:
                break
            future.result()

    # -- file-level fan-out ---------------------------------------------
    def _run_child(self, part: _Partition, recorder: RecordingModel,
                   needed, predicate):
        """Worker body: run one child scan to completion, charges
        routed into ``recorder`` and snapshotted at batch boundaries so
        the merge can interleave replay and yield exactly like the
        serial scan."""
        chunks: list[tuple[list, object]] = []
        error = None
        try:
            part.router.target = recorder
            try:
                for batch in part.access.scan_batches(needed, predicate):
                    chunks.append((recorder.take_ops(), batch))
            except Exception as exc:  # replayed, then re-raised in order
                error = exc
            chunks.append((recorder.take_ops(), None))
        finally:
            part.router.target = part.model
            part.busy = False
        return chunks, error

    def _scan_fanout(self, survivors: list, needed, predicate):
        window = max(1, self.pool.workers)
        pending: dict[int, RecordingModel] = {}

        def dispatch(i: int) -> None:
            part = survivors[i]
            if part.busy:
                return  # another query's task owns it: inline later
            recorder = RecordingModel()
            part.busy = True
            part.future = self.pool.submit(
                self._run_child, part, recorder, needed, predicate)
            pending[i] = recorder

        for i in range(min(window, len(survivors))):
            dispatch(i)
        abort = None
        for i, part in enumerate(survivors):
            recorder = pending.pop(i, None)
            if recorder is None:
                self._wait_idle(part)
                yield from self._scan_inline(part, needed, predicate)
            else:
                chunks, error = part.future.result()
                for ops, batch in chunks:
                    for _tag, event, units in ops:
                        part.model.charge(event, units)
                    if batch is not None:
                        yield batch
                if error is not None:
                    abort = error
                    break
                self._harvest(part)
            if i + window < len(survivors):
                dispatch(i + window)
        if abort is not None:
            # The serial scan never reached the speculatively
            # dispatched files: discard their charges and reset their
            # structures to a clean cold state.
            for j in sorted(pending):
                survivors[j].future.result()
                self._reset_part(survivors[j])
            raise abort

    # -- zone-map harvesting ---------------------------------------------
    def _harvest(self, part: _Partition) -> None:
        """After a completed child scan, lift the child's §4.4 exact
        extremes into the file's zone map — but only for attributes
        whose collection observed every row of the file."""
        estimated = getattr(part.access, "estimated_rows", None)
        rows = estimated() if estimated is not None else None
        if rows is None:
            return
        part.row_count = rows
        part.empty = rows == 0
        stats = part.info.stats
        if stats is not None and rows > 0:
            for column in self.schema:
                col = stats.column(column.name)
                if col is None or col.observed_rows != rows:
                    continue
                if (col.observed_min is None
                        and col.observed_nulls < col.observed_rows):
                    continue  # unorderable values: no usable bounds
                part.zone[column.name.lower()] = (col.observed_min,
                                                  col.observed_max)
        self._persist_zone(part)

    def _fold_parent_stats(self) -> None:
        """Aggregate child statistics into the parent's TableStats so
        the optimizer (and prepared-statement re-planning via the
        catalog stats epoch) sees the table, not the files. Idempotent
        per child-stats state — no version churn without new data."""
        state = tuple(
            (part.info.stats.version if part.info.stats else 0,
             part.row_count)
            for part in self.parts)
        if state == self._folded:
            return
        self._folded = state
        if any(part.row_count is None for part in self.parts):
            return
        total = sum(part.row_count for part in self.parts)
        stats = self.table_info.stats or TableStats()
        stats.set_row_count(total)
        for column in self.schema:
            merged = self._merge_column(column.name, total)
            if merged is None:
                continue
            existing = stats.column(column.name)
            if existing is not None and (
                    existing.null_frac, existing.n_distinct,
                    existing.min_value, existing.max_value) == (
                    merged.null_frac, merged.n_distinct,
                    merged.min_value, merged.max_value):
                continue
            stats.set_column(merged)
        self.table_info.stats = stats
        self.table_info.row_count_hint = total

    def _merge_column(self, name: str, total_rows: int
                      ) -> ColumnStats | None:
        children = []
        for part in self.parts:
            if part.info.stats is None:
                return None
            col = part.info.stats.column(name)
            if col is None:
                return None
            children.append((part.row_count or 0, col))
        if not children:
            return None
        merged = ColumnStats(name=name)
        weight = sum(rows for rows, _ in children)
        if weight:
            merged.null_frac = sum(
                rows * col.null_frac for rows, col in children) / weight
        merged.n_distinct = min(
            float(max(total_rows, 1)),
            sum(max(col.n_distinct, 1.0) for _, col in children))
        mins = [col.min_value for _, col in children
                if col.min_value is not None]
        maxs = [col.max_value for _, col in children
                if col.max_value is not None]
        try:
            merged.min_value = min(mins) if mins else None
            merged.max_value = max(maxs) if maxs else None
        except TypeError:
            merged.min_value = merged.max_value = None
        return merged


# ---------------------------------------------------------------------------
# Adapter
# ---------------------------------------------------------------------------
class PartitionedAdapter(FormatAdapter):
    """The wrapper adapter. Reached two ways: automatically, when a
    CREATE's path contains glob characters (or a ``partition_by``
    option) — the resolved inner adapter is wrapped per-table — or
    explicitly via ``USING partitioned OPTIONS (format 'csv', ...)``
    through the registry singleton."""

    name = "partitioned"

    def __init__(self, inner: FormatAdapter | None = None):
        self.inner = inner

    def _resolve_inner(self, options: dict) -> FormatAdapter:
        if self.inner is not None:
            return self.inner
        fmt = options.get("format")
        if fmt is not None:
            inner = get_format(str(fmt))
        else:
            inner = sniff_format(str(options.get("path", "")))
        if isinstance(inner, PartitionedAdapter):
            raise CatalogError("cannot nest partitioned formats")
        return inner

    def _child_options(self, options: dict, path: str) -> dict:
        child = {key: value for key, value in options.items()
                 if key not in ("partition_by", "format")}
        child["path"] = path
        return child

    def validate_options(self, engine, options: dict) -> dict:
        options = dict(options)
        pattern = options.get("path")
        if not isinstance(pattern, str) or not pattern:
            raise CatalogError(
                "option 'path' must be a file path or glob pattern")
        inner = self._resolve_inner(options)
        unknown = (set(options)
                   - set(inner.allowed_options)
                   - {"partition_by", "format"})
        if unknown:
            raise CatalogError(
                f"format {inner.name!r} (partitioned) does not accept "
                f"option(s) {sorted(unknown)}")
        if "partition_by" in options:
            _parse_partition_by(options["partition_by"])
        paths = expand_glob(engine.vfs, pattern)
        if not paths:
            raise CatalogError(f"no files match {pattern!r}")
        for path in paths:
            inner.validate_options(engine,
                                   self._child_options(options, path))
        return options

    def infer_schema(self, engine, options: dict):
        inner = self._resolve_inner(options)
        paths = expand_glob(engine.vfs, options.get("path", ""))
        if not paths:
            return None
        return inner.infer_schema(
            engine, self._child_options(options, paths[0]))

    def check_schema(self, engine, schema, options: dict) -> None:
        inner = self._resolve_inner(options)
        for path in expand_glob(engine.vfs, options.get("path", "")):
            inner.check_schema(engine,
                               schema, self._child_options(options, path))

    def build_access(self, engine, info, options: dict):
        inner = self._resolve_inner(options)
        return PartitionedAccess(engine, info, inner, options)

    def teardown(self, engine, info) -> None:
        prewarmer = info.extra.pop("prewarmer", None)
        if prewarmer is not None:
            prewarmer.detach()
        access = info.access
        if isinstance(access, PartitionedAccess):
            for part in access.parts:
                access._teardown_part(part)
            access.parts = []
            access._by_path.clear()


register_format(PartitionedAdapter())
