"""JSON Lines: an in-situ raw adapter built purely on the public seams.

This module is the registry's openness proof: a complete raw format —
adaptive positional map, binary cache, on-the-fly statistics, columnar
batch delivery — integrated through :func:`repro.formats.registry.
register_format` and the duck-typed
:class:`~repro.sql.scanapi.AccessMethod` protocol alone. It imports
nothing from the planner or the catalog and edits neither; a
third-party package could ship this file verbatim.

Data model: one JSON object per line (``{"a": 1, "b": "x"}``); values
are reached by the declared column name (case-insensitive), missing
members and JSON ``null`` are SQL NULL, member order may vary per line.
Only top-level scalar members are addressable as columns (nested
arrays/objects are tokenized correctly but must be declared as strings
to be selected raw).

Positional-map reuse, NoDB-style (§4.2): the map's **line index**
stores byte offsets of line starts — warm scans skip newline discovery
entirely and read only the byte runs they need — and its **chunks**
store relative byte offsets of member *values*. A warm scan with a
known value position tokenizes just that value's bytes (string-aware,
bracket-depth scanning) instead of the whole line; positions are
discovered as a side effect of the first full tokenization of each
line, exactly the adaptive behavior of the CSV scan. The binary cache
and statistics reservoirs participate identically.
"""

from __future__ import annotations

import json
from typing import Iterator, Sequence

import numpy as np

import copy
from collections import deque
from concurrent.futures import CancelledError

from repro.core.scan_batch import KERNEL_BAILOUT
from repro.errors import (
    CatalogError,
    ExecutionError,
    FormatError,
    JSONLFormatError,
    StorageError,
    annotate,
)
from repro.simcost.model import RecordingModel
from repro.formats.csvfmt import newline_offsets
from repro.formats.registry import (
    FormatAdapter,
    register_format,
    validate_on_error,
)
from repro.sql.scanapi import ScanPredicate
from repro.sql.stats import TableStats

_NO_POS = -1  # sentinel inside PM chunks: position unknown for this row

_WS = frozenset(b" \t\r")
_QUOTE = ord('"')
_BACKSLASH = ord("\\")
_OPEN = {ord("["): ord("]"), ord("{"): ord("}")}
_BARE_END = frozenset(b",}] \t\r")


# ---------------------------------------------------------------------------
# Tokenization: string/escape/bracket-aware, byte-precise, costed by
# the caller via the returned scan lengths.
# ---------------------------------------------------------------------------
def _skip_ws(line: bytes, i: int) -> int:
    n = len(line)
    while i < n and line[i] in _WS:
        i += 1
    return i


def _string_end(line: bytes, i: int) -> int:
    """Offset just past the string starting at ``i`` (a ``"``)."""
    n = len(line)
    j = i + 1
    while j < n:
        b = line[j]
        if b == _BACKSLASH:
            j += 2
            continue
        if b == _QUOTE:
            return j + 1
        j += 1
    raise JSONLFormatError(f"unterminated string at byte {i}")


def value_end(line: bytes, i: int) -> int:
    """Offset just past the JSON value starting at ``i`` — the warm
    path's single-value scan (the only bytes a known position makes the
    scan touch)."""
    n = len(line)
    if i >= n:
        raise JSONLFormatError(f"expected a value at byte {i}")
    b = line[i]
    if b == _QUOTE:
        return _string_end(line, i)
    if b in _OPEN:
        depth = 0
        j = i
        while j < n:
            c = line[j]
            if c == _QUOTE:
                j = _string_end(line, j)
                continue
            if c in _OPEN:
                depth += 1
            elif c in (ord("]"), ord("}")):
                depth -= 1
                if depth == 0:
                    return j + 1
            j += 1
        raise JSONLFormatError(f"unterminated container at byte {i}")
    j = i
    while j < n and line[j] not in _BARE_END:
        j += 1
    if j == i:
        raise JSONLFormatError(f"expected a value at byte {i}")
    return j


def member_spans(line: bytes) -> tuple[dict[str, tuple[int, int]], int]:
    """Spans ``(start, end)`` of every top-level member *value*, keyed
    by lower-cased member name; plus characters scanned (the whole
    line — the cold path's full tokenization)."""
    spans: dict[str, tuple[int, int]] = {}
    n = len(line)
    i = _skip_ws(line, 0)
    if i >= n or line[i] != ord("{"):
        raise JSONLFormatError("line is not a JSON object")
    i = _skip_ws(line, i + 1)
    if i < n and line[i] == ord("}"):
        return spans, n
    while True:
        if i >= n or line[i] != _QUOTE:
            raise JSONLFormatError(f"expected a member name at byte {i}")
        key_end = _string_end(line, i)
        try:
            key = json.loads(line[i:key_end].decode("utf-8", "replace"))
        except ValueError as exc:
            raise JSONLFormatError(
                f"bad member name at byte {i}: {exc}") from exc
        i = _skip_ws(line, key_end)
        if i >= n or line[i] != ord(":"):
            raise JSONLFormatError(f"expected ':' at byte {i}")
        i = _skip_ws(line, i + 1)
        start = i
        i = value_end(line, i)
        spans[key.lower()] = (start, i)
        i = _skip_ws(line, i)
        if i < n and line[i] == ord(","):
            i = _skip_ws(line, i + 1)
            continue
        if i < n and line[i] == ord("}"):
            return spans, n
        raise JSONLFormatError(f"expected ',' or '}}' at byte {i}")


def write_jsonl(rows: Sequence[dict], vfs, path: str) -> None:
    """Serialize ``rows`` (dicts of JSON-compatible values) as one
    object per line — the generator twin of ``write_csv`` for tests,
    examples and differential harnesses."""
    lines = [json.dumps(row, default=str, separators=(", ", ": "))
             for row in rows]
    payload = ("\n".join(lines) + "\n") if lines else ""
    if vfs.exists(path):
        vfs.write_bytes(path, payload.encode())
    else:
        vfs.create(path, payload.encode())


# ---------------------------------------------------------------------------
# Per-row lazy member location (the JSONL twin of the CSV _RowContext)
# ---------------------------------------------------------------------------
class _RowView:
    """Member spans of one line, located lazily: a known positional-map
    start costs one single-value scan; anything else costs one full
    tokenization of the line (memoized), whose discovered positions are
    flushed back to the map."""

    __slots__ = ("scan", "line", "spans", "known")

    def __init__(self, scan: "JsonlAccess", line: bytes):
        self.scan = scan
        self.line = line
        self.spans: dict[str, tuple[int, int]] | None = None
        self.known: dict[int, tuple[int, int] | None] = {}

    def span(self, attr: int,
             hint_start: int | None) -> tuple[int, int] | None:
        if attr in self.known:
            return self.known[attr]
        if self.spans is None and hint_start is not None \
                and 0 <= hint_start < len(self.line):
            end = value_end(self.line, hint_start)
            self.scan.model.tokenize(end - hint_start)
            span = (hint_start, end)
            self.known[attr] = span
            return span
        if self.spans is None:
            self.spans, scanned = member_spans(self.line)
            self.scan.model.tokenize(scanned)
        span = self.spans.get(self.scan.keys[attr])
        self.known[attr] = span
        return span

    def value(self, attr: int, hint_start: int | None):
        span = self.span(attr, hint_start)
        token = None if span is None else self.line[span[0]:span[1]]
        return self.scan._convert(attr, token)


# ---------------------------------------------------------------------------
# Access method
# ---------------------------------------------------------------------------
class JsonlAccess:
    """In-situ scan over one JSON-Lines table (PM + cache + stats)."""

    def __init__(self, vfs, path: str, schema, model, config, table_info,
                 positional_map, cache, pool=None):
        self.vfs = vfs
        self.path = path
        self.schema = schema
        self.model = model
        self.config = config
        self.table_info = table_info
        self.pm = positional_map
        self.cache = cache
        #: shared ScanWorkerPool (engine-owned) for streaming fan-out
        self.pool = pool
        self.keys = [c.name.lower() for c in schema]
        self._dtypes = schema.types
        self._families = [t.family for t in schema.types]
        self.row_count: int | None = None
        self._seen_size = 0
        self._seen_rewrites: int | None = None
        self.queries_executed = 0
        self.attr_request_counts: dict[int, int] = {}
        #: per-table error policy (OPTIONS (on_error 'fail'|'skip'|'null'))
        self.on_error = (getattr(table_info, "options", None)
                         or {}).get("on_error", "fail")
        self._rejects_path = f"__rejects__/{table_info.name.lower()}"
        self._rejected_rows: set[int] = set()

    #: batch delivery is the only mode (``ScanOp.supports_batches``)
    batch_enabled = True

    # -- §4.5 external updates -----------------------------------------
    def refresh(self) -> None:
        rewrites = self.vfs.rewrite_count(self.path)
        size = self.vfs.size(self.path)
        if self._seen_rewrites is None:
            self._seen_rewrites = rewrites
            self._seen_size = size
            return
        if rewrites != self._seen_rewrites:
            if self.pm is not None:
                self.pm.drop()
            if self.cache is not None:
                self.cache.clear()
            self.row_count = None
            self.table_info.data_version += 1
            self._rejected_rows.clear()
            if self.vfs.exists(self._rejects_path):
                self.vfs.delete(self._rejects_path)
        elif size > self._seen_size:
            if self.pm is not None:
                self.pm.invalidate_file_length()
            self.row_count = None
            self.table_info.data_version += 1
        self._seen_rewrites = rewrites
        self._seen_size = size

    def estimated_rows(self) -> int | None:
        return self.row_count

    # -- scan entry points ---------------------------------------------
    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        for batch in self.scan_batches(needed, predicate):
            self.model.materialize_rows(batch.nrows)
            yield from batch.iter_rows()

    def scan_batches(self, needed: Sequence[int],
                     predicate: ScanPredicate | None, kernel=None):
        self.queries_executed += 1
        out_attrs = list(needed)
        where_attrs = list(predicate.attrs) if predicate else []
        union_attrs = sorted(set(out_attrs) | set(where_attrs))
        for attr in union_attrs:
            self.attr_request_counts[attr] = \
                self.attr_request_counts.get(attr, 0) + 1
        collector = self._collector(union_attrs)
        handle = self.vfs.open(self.path, self.model, notify=False)
        # Freeze the indexed/streaming split for the whole scan (a
        # concurrent cursor may grow the map while this generator
        # lives — same contract as the CSV scan).
        spanned = self._rows_with_known_span()
        try:
            yield from self._indexed_region(handle, spanned, out_attrs,
                                            where_attrs, union_attrs,
                                            predicate, collector,
                                            kernel=kernel)
            yield from self._streaming_region(handle, spanned, out_attrs,
                                              where_attrs, union_attrs,
                                              predicate, collector)
        except (FormatError, StorageError) as exc:
            raise annotate(exc, path=self.path,
                           table=self.table_info.name)
        if collector is not None:
            stats = self.table_info.stats or TableStats()
            row_count = (self.row_count if self.row_count is not None
                         else self.table_info.row_count_hint or 0)
            collector.finalize(stats, row_count)
            self.table_info.stats = stats

    def _collector(self, union_attrs):
        if not self.config.enable_statistics:
            return None
        from repro.core.statistics import StatsCollector

        existing = self.table_info.stats
        missing = [
            attr for attr in union_attrs
            if existing is None
            or not existing.has_column(self.schema.columns[attr].name)
        ]
        if not missing:
            return None
        return StatsCollector(self.model, self.schema, missing,
                              self.config.stats_sample_target,
                              seed=self.queries_executed)

    def _rows_with_known_span(self) -> int:
        if self.pm is None:
            return 0
        known = self.pm.known_line_count
        if known == 0:
            return 0
        if self.row_count is not None and known >= self.row_count:
            return self.row_count
        if self.pm.has_file_length:
            return known
        return known - 1

    # -- value conversion ----------------------------------------------
    def _convert(self, attr: int, token: bytes | None, model=None):
        """JSON value token -> binary value, charging the family's
        conversion cost (missing member / ``null`` -> SQL NULL)."""
        (model if model is not None else self.model).convert(
            self._families[attr], 1)
        return self._convert_value(attr, token)

    def _convert_value(self, attr: int, token: bytes | None):
        """The uncosted token -> value logic (the caller has already
        charged the family's conversion units)."""
        family = self._families[attr]
        if token is None or token == b"null":
            return None
        if token[:1] == b'"':
            try:
                text = json.loads(token.decode("utf-8", "replace"))
            except ValueError as exc:
                raise JSONLFormatError(
                    f"bad string value for attribute "
                    f"{self.schema.columns[attr].name}: {exc}") from exc
        else:
            text = token.decode("utf-8", "replace")
        if family == "str":
            return text if isinstance(text, str) else str(text)
        if text == "":
            return None
        try:
            return self._dtypes[attr].parse(str(text))
        except Exception as exc:
            raise annotate(
                JSONLFormatError(
                    f"cannot parse {text!r} as {self._dtypes[attr].name} "
                    f"(attribute {self.schema.columns[attr].name})"),
                column=self.schema.columns[attr].name) from exc

    def _convert_many(self, attr: int,
                      pairs: list) -> list:
        """Convert a batch of ``(row_idx, token)`` pairs, charging one
        aggregate conversion (unit total identical to the per-row
        path). Bare numeric tokens of int/float columns go through the
        same byte-matrix ``astype`` fast path the CSV scan uses
        (``scan_batch._decode_numeric_column``); quoted / null /
        missing tokens — and any batch numpy refuses — fall back to
        the scalar conversion, value-for-value identical."""
        if not pairs:
            return []
        family = self._families[attr]
        self.model.convert(family, len(pairs))
        if family in ("int", "float"):
            fast = self._fast_numeric(attr, pairs, family)
            if fast is not None:
                return fast
        return [(idx, self._convert_value(attr, token))
                for idx, token in pairs]

    def _fast_numeric(self, attr: int, pairs: list, family: str):
        clean: list = []
        dirty: list = []
        for pair in pairs:
            token = pair[1]
            if token is None or token == b"null" or not token \
                    or token[:1] == b'"':
                dirty.append(pair)
            else:
                clean.append(pair)
        if not clean:
            return None
        max_width = max(len(token) for _, token in clean)
        if max_width > 64:
            return None
        matrix = np.zeros((len(clean), max_width), dtype=np.uint8)
        for r, (_idx, token) in enumerate(clean):
            matrix[r, :len(token)] = np.frombuffer(token, dtype=np.uint8)
        fields = np.ascontiguousarray(matrix).view(f"S{max_width}").ravel()
        dtype = np.int64 if family == "int" else np.float64
        try:
            converted = fields.astype(dtype).tolist()
        except (ValueError, OverflowError):
            return None
        values = {idx: value
                  for (idx, _), value in zip(clean, converted)}
        for idx, token in dirty:
            values[idx] = self._convert_value(attr, token)
        return [(idx, values[idx]) for idx, _ in pairs]

    # -- error policies (OPTIONS (on_error ...)) ------------------------
    def tolerant_row(self, model, line: bytes, out_attrs, where_attrs,
                     predicate):
        """Best-effort evaluation of one malformed-or-suspect line under
        a tolerant error policy — the JSONL twin of
        :meth:`~repro.core.scan.RawCsvAccess.tolerant_row`. The line is
        fully tokenized (a structurally broken line yields no spans);
        a missing member is ordinary NULL, but an unparseable *value*
        becomes NULL under ``'null'`` and rejects the row under
        ``'skip'``. Returns ``(qualifies, out_values | None,
        reject_reason | None)``; all charges go to ``model``."""
        policy = self.on_error
        model.tokenize(len(line))
        try:
            spans, _ = member_spans(line)
        except JSONLFormatError as exc:
            if policy == "skip":
                return False, None, str(exc)
            spans = {}
        values: dict[int, object] = {}
        errors: dict[int, str] = {}

        def fetch(attr):
            # -> (ok, value); not ok == row rejected (policy 'skip')
            if attr in values:
                return True, values[attr]
            span = spans.get(self.keys[attr])
            token = None if span is None else line[span[0]:span[1]]
            try:
                value = self._convert(attr, token, model=model)
            except FormatError as exc:
                if policy == "skip":
                    errors[attr] = str(exc)
                    return False, None
                value = None
            values[attr] = value
            return True, value

        if predicate is not None:
            pvalues = {}
            for attr in where_attrs:
                ok, value = fetch(attr)
                if not ok:
                    return False, None, errors[attr]
                pvalues[attr] = value
            model.predicate(predicate.n_terms)
            if predicate.fn(pvalues) is not True:
                return False, None, None
        out_values = []
        for attr in out_attrs:
            ok, value = fetch(attr)
            if not ok:
                return False, None, errors[attr]
            out_values.append(value)
        model.tuple_form(len(out_attrs))
        return True, out_values, None

    def _quarantine_row(self, row_number: int, line: bytes,
                        reason: str) -> None:
        """Record a rejected line in the ``__rejects__/`` sidecar (free
        of virtual time; the caller charges ``rows_rejected``)."""
        if row_number in self._rejected_rows:
            return
        self._rejected_rows.add(row_number)
        note = reason.replace("\t", " ").replace("\n", " ")
        record = b"%d\t%s\t%s\n" % (
            row_number, note.encode("utf-8", "replace"),
            bytes(line).replace(b"\n", b" "))
        if not self.vfs.exists(self._rejects_path):
            self.vfs.create(self._rejects_path)
        self.vfs.append_bytes(self._rejects_path, record)

    # ==================================================================
    # Indexed region: line spans known to the map
    # ==================================================================
    def _indexed_region(self, handle, spanned, out_attrs, where_attrs,
                        union_attrs, predicate, collector, kernel=None):
        if spanned == 0:
            return
        block_size = self.config.row_block_size
        row = 0
        while row < spanned:
            block = row // block_size
            block_end = min((block + 1) * block_size, spanned)
            batch = None
            if kernel is not None and kernel.indexed is not None:
                batch = kernel.indexed(self, handle, block, row,
                                       block_end, predicate, collector)
                if batch is KERNEL_BAILOUT:
                    # Probes were side-effect-free; the generic block
                    # below charges exactly what it always charges.
                    self.model.kernel_bailout()
                    batch = None
            if batch is None:
                batch = self._process_block(
                    handle, block, row, block_end, out_attrs,
                    where_attrs, union_attrs, predicate, collector)
            yield batch
            row = block_end

    def _process_block(self, handle, block, row0, row1, out_attrs,
                       where_attrs, union_attrs, predicate, collector):
        try:
            return self._process_block_strict(
                handle, block, row0, row1, out_attrs, where_attrs,
                union_attrs, predicate, collector)
        except JSONLFormatError:
            if self.on_error == "fail":
                raise
            # Strict attempt flushed nothing (PM/cache writes happen at
            # the end of a clean block) and the indexed region runs on
            # the driver thread only: redo row by row, tolerantly.
            return self._process_block_tolerant(handle, row0, row1,
                                                out_attrs, where_attrs,
                                                predicate)

    def _process_block_tolerant(self, handle, row0, row1, out_attrs,
                                where_attrs, predicate):
        """Row-at-a-time redo of an indexed block under a tolerant
        policy: one read over the block's span, per-row
        :meth:`tolerant_row`, direct quarantine. The block forfeits its
        PM/cache/stats contributions — degradation, never
        corruption."""
        from repro.sql.batch import ColumnBatch

        model = self.model
        spans = self.pm.line_spans_block(row0, row1)
        if spans is None:
            raise ExecutionError(
                f"line spans for rows {row0}..{row1} vanished from the "
                "positional map mid-scan (table dropped or map torn "
                "down under a live query); re-run the query")
        starts, ends = spans
        base = int(starts[0])
        blob = handle.read_at(base, int(ends[-1]) - base)
        rows: list[tuple] = []
        for i in range(row1 - row0):
            line = blob[int(starts[i]) - base:int(ends[i]) - base]
            qual, out_values, reason = self.tolerant_row(
                model, line, out_attrs, where_attrs, predicate)
            if reason is not None:
                self._quarantine_row(row0 + i, line, reason)
                model.rows_rejected(1)
                continue
            if qual:
                rows.append(tuple(out_values))
        return ColumnBatch.from_rows(rows, len(out_attrs))

    def _process_block_strict(self, handle, block, row0, row1, out_attrs,
                              where_attrs, union_attrs, predicate,
                              collector):
        from repro.sql.batch import ColumnBatch

        model = self.model
        n = row1 - row0
        model.tuple_overhead(n)
        spans = self.pm.line_spans_block(row0, row1)
        if spans is None:
            # DROP TABLE / map teardown under a live scan: fail cleanly.
            raise ExecutionError(
                f"line spans for rows {row0}..{row1} vanished from the "
                "positional map mid-scan (table dropped or map torn "
                "down under a live query); re-run the query")
        starts, ends = spans

        cached: dict[int, object] = {}
        cmask: dict[int, np.ndarray] = {}
        for attr in union_attrs:
            cache_block = (self.cache.get(attr, block)
                           if self.cache is not None else None)
            cached[attr] = cache_block
            cmask[attr] = (cache_block.mask_array(n)
                           if cache_block is not None
                           else np.zeros(n, dtype=bool))
        positions: dict[int, np.ndarray] = {}
        if self.pm is not None and self.config.enable_positional_map:
            for attr in union_attrs:
                column = self.pm.positions(block, attr)
                if column is not None:
                    positions[attr] = column

        line_bytes: dict[int, bytes] = {}
        views: dict[int, _RowView] = {}

        def view_for(idx: int) -> _RowView:
            view = views.get(idx)
            if view is None:
                view = _RowView(self, line_bytes[idx])
                views[idx] = view
            return view

        def hint(attr: int, idx: int) -> int | None:
            column = positions.get(attr)
            if column is None or idx >= len(column):
                return None
            rel = int(column[idx])
            return None if rel == _NO_POS else rel

        def materialize(attr: int, conv_mask: np.ndarray,
                        read_cached: np.ndarray, entries: list,
                        ) -> np.ndarray:
            values = np.empty(n, dtype=object)
            cached_idx = np.flatnonzero(read_cached)
            if len(cached_idx):
                values[cached_idx] = cached[attr].values_at(cached_idx)
                model.cache_read(len(cached_idx))
            pairs = []
            for idx in np.flatnonzero(conv_mask).tolist():
                view = view_for(idx)
                span = view.span(attr, hint(attr, idx))
                token = (None if span is None
                         else view.line[span[0]:span[1]])
                pairs.append((idx, token))
            for idx, value in self._convert_many(attr, pairs):
                values[idx] = value
                entries.append((idx, value))
            return values

        # -- phase W: bytes + conversion for rows whose WHERE
        #    attributes are not fully cached
        need_file = np.zeros(n, dtype=bool)
        for attr in where_attrs:
            need_file |= ~cmask[attr]
        self._read_runs(handle, starts, ends, need_file, line_bytes)

        columns: dict[int, np.ndarray] = {}
        cache_entries: dict[int, list] = {attr: [] for attr in union_attrs}
        for attr in where_attrs:
            columns[attr] = materialize(attr, ~cmask[attr], cmask[attr],
                                        cache_entries[attr])

        if predicate is not None:
            qual = self._predicate_mask(predicate, where_attrs, columns, n)
        else:
            qual = np.ones(n, dtype=bool)
        qual_idx = np.flatnonzero(qual)

        # -- phase S: bytes + conversion for qualifying rows missing
        #    SELECT attributes (selective parsing, §4.1)
        missing = np.zeros(n, dtype=bool)
        for attr in out_attrs:
            if attr not in columns:
                missing |= ~cmask[attr]
        need_sel = qual & missing & ~need_file
        self._read_runs(handle, starts, ends, need_sel, line_bytes)
        for attr in out_attrs:
            if attr in columns:
                continue
            columns[attr] = materialize(
                attr, qual & ~cmask[attr], cmask[attr] & qual,
                cache_entries[attr])
        model.tuple_form(len(out_attrs) * len(qual_idx))

        if collector is not None:
            self._collect_rows(collector, columns, where_attrs,
                               out_attrs, qual, n)

        self._flush_positions(block, n, views, union_attrs, positions)
        if self.cache is not None:
            for attr, entries in cache_entries.items():
                if entries:
                    self.cache.put(attr, block, n, entries,
                                   self._families[attr])
        out_columns = [columns[attr][qual_idx] for attr in out_attrs]
        return ColumnBatch(out_columns, len(qual_idx))

    def _read_runs(self, handle, starts, ends, mask, line_bytes) -> None:
        """One sequential read covering every flagged row not yet
        loaded, sliced into per-line bytes (the CSV scan's read
        pattern: stream through small gaps, never seek per tuple)."""
        needed = [idx for idx in np.flatnonzero(mask).tolist()
                  if idx not in line_bytes]
        if not needed:
            return
        first, last = needed[0], needed[-1]
        byte_start = int(starts[first])
        blob = handle.read_at(byte_start, int(ends[last]) - byte_start)
        for idx in needed:
            line_bytes[idx] = blob[int(starts[idx]) - byte_start:
                                   int(ends[idx]) - byte_start]

    def _predicate_mask(self, predicate, where_attrs, columns,
                        n) -> np.ndarray:
        from repro.sql.batch import object_nulls

        self.model.predicate(predicate.n_terms * n)
        if predicate.vector_fn is not None:
            arrays = {attr: columns[attr] for attr in where_attrs}
            nulls = {attr: object_nulls(columns[attr])
                     for attr in where_attrs}
            return predicate.vector_fn(arrays, nulls, n)
        fn = predicate.fn
        mask = np.zeros(n, dtype=bool)
        for i in range(n):
            mask[i] = fn({attr: columns[attr][i]
                          for attr in where_attrs}) is True
        return mask

    def _collect_rows(self, collector, columns, where_attrs, out_attrs,
                      qual, n) -> None:
        """§4.4 sampling: WHERE values for every row, SELECT values for
        qualifying rows (whose conversions this scan actually paid)."""
        for i in range(n):
            row_values = {attr: columns[attr][i] for attr in where_attrs}
            if qual[i]:
                for attr in out_attrs:
                    row_values[attr] = columns[attr][i]
            collector.add_row(row_values)

    def _flush_positions(self, block, rows_in_block, views, union_attrs,
                         existing, first_in_block: int = 0) -> None:
        """Insert value positions discovered by this block's full
        tokenizations as one chunk, merged with whatever the map
        already knows (§4.2 adaptive population)."""
        if self.pm is None or not self.config.enable_positional_map:
            return
        discovered: dict[int, np.ndarray] = {}
        for idx, view in views.items():
            if view.spans is None:
                continue  # served entirely from known positions
            for attr in union_attrs:
                span = view.spans.get(self.keys[attr])
                if span is None:
                    continue
                column = discovered.get(attr)
                if column is None:
                    column = np.full(rows_in_block + first_in_block,
                                     _NO_POS, dtype=np.int32)
                    discovered[attr] = column
                column[first_in_block + idx] = span[0]
        group = []
        for attr in sorted(discovered):
            already = existing.get(attr)
            column = discovered[attr]
            if already is not None:
                prior = np.full(len(column), _NO_POS, dtype=np.int32)
                m = min(len(already), len(column))
                prior[:m] = already[:m]
                merged = np.where(column == _NO_POS, prior, column)
                if int((merged != _NO_POS).sum()) <= \
                        int((prior != _NO_POS).sum()):
                    continue  # nothing new for this attribute
                discovered[attr] = merged
            group.append(attr)
        if not group:
            return
        matrix = np.column_stack([discovered[attr] for attr in group])
        self.pm.insert_chunk(tuple(group), block, matrix)

    # ==================================================================
    # Streaming region: unseen tail
    # ==================================================================
    def _streaming_region(self, handle, spanned, out_attrs, where_attrs,
                          union_attrs, predicate, collector):
        pm = self.pm
        track = pm is not None
        if self.row_count is not None and spanned >= self.row_count:
            return
        file_size = handle.size
        if track and pm.known_line_count > spanned:
            start_offset = pm.line_start(spanned)
        elif track and spanned > 0:
            start_offset = file_size
        else:
            start_offset = 0
            spanned = 0
        if start_offset >= file_size:
            if track:
                pm.set_file_length(file_size)
            self.row_count = spanned
            self.table_info.row_count_hint = spanned
            return
        scan_args = (out_attrs, where_attrs, union_attrs, predicate,
                     collector)
        pool = self.pool if self.config.scan_workers > 1 else None
        if pool is not None:
            yield from self._stream_parallel(pool, file_size,
                                             start_offset, spanned,
                                             *scan_args)
        else:
            yield from self._stream_serial(handle, file_size,
                                           start_offset, spanned,
                                           *scan_args)

    def _stream_serial(self, handle, file_size, start_offset, spanned,
                       out_attrs, where_attrs, union_attrs, predicate,
                       collector):
        """Single-threaded driver: read sequentially, discover lines,
        run each row-block group inline (compute + replay) — the same
        compute/apply split the parallel driver merges, so both paths
        evolve the engine identically by construction."""
        pm = self.pm
        track = pm is not None
        block_size = self.config.row_block_size
        handle.seek(start_offset)
        read_size = self.config.batch_read_bytes
        row = spanned
        buffer = b""
        buffer_start = start_offset
        next_start = start_offset
        pending: list[tuple[int, int]] = []
        newline_terminated = True
        eof = False
        while not eof:
            chunk = handle.read_sequential(read_size)
            if not chunk:
                eof = True
                end_of_data = buffer_start + len(buffer)
                if end_of_data > next_start:
                    newline_terminated = False
                    pending.append((next_start, end_of_data))
            else:
                self.model.newline_scan(len(chunk))
                chunk_base = buffer_start + len(buffer)
                buffer += chunk
                for nl in (newline_offsets(chunk) + chunk_base).tolist():
                    pending.append((next_start, nl))
                    next_start = nl + 1
            while pending and (eof or len(pending)
                               >= block_size - row % block_size):
                take = min(len(pending), block_size - row % block_size)
                group, pending = pending[:take], pending[take:]
                ops, batch, error = self._group_task(
                    row, group,
                    self._group_slice(buffer, buffer_start, group),
                    int(group[0][0]), out_attrs, where_attrs,
                    union_attrs, predicate, collector)
                self._apply_staged(ops, union_attrs, collector)
                if error is not None:
                    raise error
                row += take
                consumed = min(group[-1][1] + 1 - buffer_start,
                               len(buffer))
                if consumed > 0:
                    buffer = buffer[consumed:]
                    buffer_start += consumed
                yield batch
        if track:
            pm.set_file_length(file_size,
                               newline_terminated=newline_terminated)
        self.row_count = row
        self.table_info.row_count_hint = row

    def _stream_parallel(self, pool, file_size, start_offset, spanned,
                         out_attrs, where_attrs, union_attrs, predicate,
                         collector):
        """Fan-out driver: the same read/group-formation loop as
        :meth:`_stream_serial`, but groups compute on the shared
        ``ScanWorkerPool`` while the driver reads ahead. A merge
        replays each schedule entry — recorded read charges and
        completed groups' op logs — in exact serial order, so batch
        delivery, PM/cache contents, statistics, counters and the
        virtual clock are identical to the serial driver at any worker
        count (the CSV streaming region's contract)."""
        config = self.config
        pm = self.pm
        track = pm is not None
        block_size = config.row_block_size
        read_size = config.batch_read_bytes

        # Reads charge into a recorder so their cost replays in serial
        # order even though the driver reads ahead of the merge.
        read_rec = RecordingModel()
        rhandle = self.vfs.open(self.path, read_rec, notify=False)
        rhandle.seek(start_offset)

        depth = 2 * pool.workers        # groups in flight (read-ahead bound)
        schedule: deque = deque()       # ("r", ops) | ("g", future)
        state = {"in_flight": 0, "row": spanned, "buffer": b"",
                 "buffer_start": start_offset,
                 "next_start": start_offset, "eof": False,
                 "newline_terminated": True}
        pending: list[tuple[int, int]] = []

        def dispatch_groups() -> None:
            while pending and (
                    state["eof"] or len(pending)
                    >= block_size - state["row"] % block_size):
                take = min(len(pending),
                           block_size - state["row"] % block_size)
                group = pending[:take]
                del pending[:take]
                group_buf = self._group_slice(
                    state["buffer"], state["buffer_start"], group)
                schedule.append(("g", pool.submit(
                    self._group_task, state["row"], group, group_buf,
                    int(group[0][0]), out_attrs, where_attrs,
                    union_attrs, predicate, collector)))
                state["in_flight"] += 1
                state["row"] += take
                consumed = min(group[-1][1] + 1 - state["buffer_start"],
                               len(state["buffer"]))
                if consumed > 0:
                    state["buffer"] = state["buffer"][consumed:]
                    state["buffer_start"] += consumed

        def read_more() -> None:
            chunk = rhandle.read_sequential(read_size)
            if not chunk:
                state["eof"] = True
                end_of_data = state["buffer_start"] + len(state["buffer"])
                if end_of_data > state["next_start"]:
                    state["newline_terminated"] = False
                    pending.append((state["next_start"], end_of_data))
            else:
                read_rec.newline_scan(len(chunk))
                chunk_base = state["buffer_start"] + len(state["buffer"])
                state["buffer"] += chunk
                for nl in (newline_offsets(chunk)
                           + chunk_base).tolist():
                    pending.append((state["next_start"], nl))
                    state["next_start"] = nl + 1
            ops = read_rec.take_ops()
            if ops:
                schedule.append(("r", ops))
            dispatch_groups()

        try:
            while True:
                while not state["eof"] and state["in_flight"] < depth:
                    read_more()
                if not schedule:
                    break
                kind, payload = schedule.popleft()
                if kind == "r":
                    self._apply_staged(payload, union_attrs, collector)
                    continue
                try:
                    ops, batch, error = payload.result()
                except CancelledError:
                    # CancelledError is a BaseException and would
                    # escape the scheduler's error containment,
                    # leaking the job's admission slot.
                    raise ExecutionError(
                        "scan worker pool was shut down while this "
                        "parallel scan was streaming (engine.close() "
                        "during a live query); re-run the query"
                    ) from None
                state["in_flight"] -= 1
                self._apply_staged(ops, union_attrs, collector)
                if error is not None:
                    raise error
                if batch is not None:
                    yield batch
        finally:
            # Abandoned scan (or an error above): drop the unmerged
            # tail — structures hold exactly the merged prefix, as
            # after an abandoned serial scan at the same boundary.
            for kind, payload in schedule:
                if kind == "g":
                    payload.cancel()

        if track:
            pm.set_file_length(
                file_size,
                newline_terminated=state["newline_terminated"])
        self.row_count = state["row"]
        self.table_info.row_count_hint = state["row"]

    @staticmethod
    def _group_slice(buffer: bytes, buffer_start: int,
                     group: list) -> bytes:
        """The byte window covering one group's lines; workers slice
        their private lines out of it by absolute offset."""
        return buffer[group[0][0] - buffer_start:
                      group[-1][1] - buffer_start]

    def _group_task(self, row0, spans, buffer, buffer_base, out_attrs,
                    where_attrs, union_attrs, predicate, collector):
        """One pool task: compute a streaming group against a
        recording model. Returns ``(ops, batch, error)``; never raises,
        so the merge can replay the charges recorded before a failure
        and re-raise in canonical order. Runs on worker threads:
        touches no shared engine state, only its private byte slice
        and the recorder."""
        recorder = RecordingModel()
        view = copy.copy(self)
        view.model = recorder
        try:
            batch = view._compute_stream_group(
                recorder.ops, row0, spans, buffer, buffer_base,
                out_attrs, where_attrs, union_attrs, predicate,
                collector)
            return recorder.ops, batch, None
        except JSONLFormatError as exc:
            if self.on_error == "fail":
                return recorder.ops, None, exc
            # Tolerant policy: discard the strict attempt's op log
            # entirely and recompute the group row by row (a pure
            # function of the byte slice — bit-identical at any
            # worker count).
            redo = RecordingModel()
            view = copy.copy(self)
            view.model = redo
            try:
                batch = view._compute_stream_group_tolerant(
                    redo.ops, row0, spans, buffer, buffer_base,
                    out_attrs, where_attrs, predicate)
                return redo.ops, batch, None
            except Exception as redo_exc:
                return redo.ops, None, redo_exc
        except Exception as exc:   # replayed + re-raised by the merge
            return recorder.ops, None, exc

    def _apply_staged(self, ops: list, union_attrs, collector) -> None:
        """Replay one op log against the real model and structures, in
        the exact order the serial path would have performed them — so
        the clock, PM, cache and statistics evolve identically."""
        model = self.model
        for op in ops:
            tag = op[0]
            if tag == "c":
                model.charge(op[1], op[2])
            elif tag == "lines":
                _, starts, row0, n = op
                known = self.pm.known_line_count
                if row0 + n > known:
                    self.pm.append_line_starts(
                        starts[max(0, known - row0):])
            elif tag == "collect":
                for row_values in op[1]:
                    collector.add_row(row_values)
            elif tag == "jpm":
                _, block, n, views, first_in_block = op
                existing = {}
                if self.pm is not None \
                        and self.config.enable_positional_map:
                    for attr in union_attrs:
                        column = self.pm.positions(block, attr)
                        if column is not None:
                            existing[attr] = column
                self._flush_positions(block, n, dict(enumerate(views)),
                                      union_attrs, existing,
                                      first_in_block=first_in_block)
            elif tag == "rej":
                # Quarantine decided inside a worker group: the sidecar
                # write happens here, in canonical merge order.
                self._quarantine_row(op[1], op[2], op[3])
            else:  # "jcache"
                _, attr, block, rows_in_block, entries, family = op
                self.cache.put(attr, block, rows_in_block, entries,
                               family)

    def _compute_stream_group(self, ops, row0, spans, buffer,
                              buffer_base, out_attrs, where_attrs,
                              union_attrs, predicate, collector):
        """Compute one group of freshly discovered lines — all within
        a single row block: full tokenization (positions staged for
        the map), predicate, selective conversion, staged cache/stat/
        PM contributions, one batch out. ``self`` is a worker view
        whose ``model`` is the charge recorder feeding ``ops``."""
        from repro.sql.batch import ColumnBatch

        model = self.model
        n = len(spans)
        block_size = self.config.row_block_size
        block = row0 // block_size
        first_in_block = row0 - block * block_size
        rows_in_block = first_in_block + n
        model.tuple_overhead(n)

        if self.pm is not None:
            starts = np.asarray([s for s, _e in spans], dtype=np.int64)
            ops.append(("lines", starts, row0, n))

        views = [
            _RowView(self, buffer[s - buffer_base:e - buffer_base])
            for s, e in spans
        ]
        columns: dict[int, np.ndarray] = {}
        cache_entries: dict[int, list] = {attr: []
                                          for attr in union_attrs}

        def materialize(attr: int, row_mask: np.ndarray) -> np.ndarray:
            values = np.empty(n, dtype=object)
            entries = cache_entries[attr]
            pairs = []
            for idx in np.flatnonzero(row_mask).tolist():
                view = views[idx]
                span = view.span(attr, None)
                token = (None if span is None
                         else view.line[span[0]:span[1]])
                pairs.append((idx, token))
            for idx, value in self._convert_many(attr, pairs):
                values[idx] = value
                entries.append((first_in_block + idx, value))
            return values

        every = np.ones(n, dtype=bool)
        for attr in where_attrs:
            columns[attr] = materialize(attr, every)
        if predicate is not None:
            qual = self._predicate_mask(predicate, where_attrs, columns,
                                        n)
        else:
            qual = every
        qual_idx = np.flatnonzero(qual)
        for attr in out_attrs:
            if attr not in columns:
                columns[attr] = materialize(attr, qual)
        model.tuple_form(len(out_attrs) * len(qual_idx))

        if collector is not None:
            staged_rows = []
            for i in range(n):
                row_values = {attr: columns[attr][i]
                              for attr in where_attrs}
                if qual[i]:
                    for attr in out_attrs:
                        row_values[attr] = columns[attr][i]
                staged_rows.append(row_values)
            ops.append(("collect", staged_rows))

        ops.append(("jpm", block, n, views, first_in_block))
        if self.cache is not None:
            for attr, entries in cache_entries.items():
                if entries:
                    ops.append(("jcache", attr, block, rows_in_block,
                                entries, self._families[attr]))
        out_columns = [columns[attr][qual_idx] for attr in out_attrs]
        return ColumnBatch(out_columns, len(qual_idx))

    def _compute_stream_group_tolerant(self, ops, row0, spans, buffer,
                                       buffer_base, out_attrs,
                                       where_attrs, predicate):
        """Row-at-a-time redo of a streaming group whose strict
        computation raised, under a tolerant error policy. Line starts
        are still staged (byte geometry is unaffected by malformed
        content); rejects are staged as ``("rej", ...)`` ops so the
        sidecar write happens at the merge, in canonical order. The
        group contributes nothing to the positional map, cache or
        statistics."""
        from repro.sql.batch import ColumnBatch

        model = self.model
        n = len(spans)
        model.tuple_overhead(n)
        if self.pm is not None:
            starts = np.asarray([s for s, _e in spans], dtype=np.int64)
            ops.append(("lines", starts, row0, n))
        rows: list[tuple] = []
        for i, (s, e) in enumerate(spans):
            line = buffer[s - buffer_base:e - buffer_base]
            qual, out_values, reason = self.tolerant_row(
                model, line, out_attrs, where_attrs, predicate)
            if reason is not None:
                ops.append(("rej", row0 + i, line, reason))
                model.rows_rejected(1)
                continue
            if qual:
                rows.append(tuple(out_values))
        return ColumnBatch.from_rows(rows, len(out_attrs))


# ---------------------------------------------------------------------------
# Adapter
# ---------------------------------------------------------------------------
class JsonlAdapter(FormatAdapter):
    """JSON Lines through the in-situ machinery (raw engines only)."""

    name = "jsonl"
    extensions = (".jsonl", ".ndjson")
    allowed_options = frozenset({"path", "on_error"})

    def validate_options(self, engine, options: dict) -> dict:
        options = super().validate_options(engine, options)
        validate_on_error(options)
        return options

    #: JSONL tokenization is string/escape/bracket aware — a state
    #: machine per byte, not a memchr-style delimiter scan — so it runs
    #: ~3x the engine's per-character tokenize rate.
    TOKENIZE_FACTOR = 3.0
    _PROFILE_TAG = "+jsonl"

    def cost_profile(self, engine):
        import dataclasses

        base = engine.model.profile
        if base.name.endswith(self._PROFILE_TAG):
            return base  # already calibrated for this format
        return dataclasses.replace(
            base, name=base.name + self._PROFILE_TAG,
            tokenize=base.tokenize * self.TOKENIZE_FACTOR)

    def build_access(self, engine, info, options: dict):
        if self._policy(engine, info.external) != "raw":
            raise CatalogError(
                "format 'jsonl' requires an in-situ raw engine "
                "(PostgresRaw)")
        model = self.scan_model(engine)
        positional_map, cache = self.build_raw_structures(engine, info,
                                                          model=model)
        return JsonlAccess(engine.vfs, info.path, info.schema,
                           model, engine.config, info,
                           positional_map, cache,
                           pool=getattr(engine, "scan_pool", None))


register_format(JsonlAdapter())
