"""The pluggable raw-format adapter registry.

NoDB declares schemas a priori and queries files in place (§3.1); *which
kinds of files* should not be a closed set. A :class:`FormatAdapter`
owns everything format-specific about a table: option validation,
schema inference (formats that carry their own header), schema/file
compatibility checks, access-method construction — including the wiring
of auxiliary structures (positional map, binary cache, statistics
participation) appropriate to the owning engine — and teardown at
``DROP TABLE``.

The catalog, planner and engines never branch on a format again: the
``CREATE TABLE ... USING <format>`` DDL path resolves the adapter here,
and the access method it builds is consumed through the duck-typed
:class:`~repro.sql.scanapi.AccessMethod` protocol. Registering a new
adapter (:func:`register_format`) is the entire integration surface —
see :mod:`repro.formats.jsonl` for a complete third-party-style example
that touches neither the planner nor the catalog.

Engine policy
-------------
Adapters consult two engine attributes instead of engine classes:

* ``engine.in_situ_policy`` — ``"raw"`` (PostgresRaw: full auxiliary
  structures per its config), ``"external"`` (the straw-man: full
  re-parse, no auxiliary state), or ``None`` (the engine does not scan
  raw files; e.g. a loaded DBMS, which uses the ``heap`` adapter's load
  path instead).
* ``engine.config`` — the :class:`~repro.core.config.PostgresRawConfig`
  of raw engines; absent elsewhere.

``CREATE EXTERNAL TABLE`` forces the ``"external"`` binding on an
engine whose policy allows raw scans at all — the paper's §5.1.4
comparison inside one engine, differing only in auxiliary structures.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.errors import CatalogError
from repro.formats.csvfmt import CsvDialect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.catalog import Schema, TableInfo


class FormatAdapter:
    """One raw format's integration contract.

    Subclasses set :attr:`name` (the ``USING <name>`` token),
    :attr:`extensions` (for ``USING``-less sniffing) and the option
    sets, then implement :meth:`build_access`. Everything else has
    sensible defaults.
    """

    #: the format name used in ``CREATE TABLE ... USING <name>``
    name: str = "?"
    #: file extensions claimed for sniffing when ``USING`` is omitted
    extensions: tuple[str, ...] = ()
    #: option keys that must be present / may be present
    required_options: frozenset[str] = frozenset({"path"})
    allowed_options: frozenset[str] = frozenset({"path"})

    # ------------------------------------------------------------------
    def validate_options(self, engine, options: dict) -> dict:
        """Check and normalize ``OPTIONS (...)``; raises
        :class:`CatalogError` on unknown keys, missing required keys or
        unusable values. The default checks key sets and that ``path``
        names an existing file."""
        unknown = set(options) - set(self.allowed_options)
        if unknown:
            raise CatalogError(
                f"format {self.name!r} does not accept option(s) "
                f"{sorted(unknown)}; allowed: "
                f"{sorted(self.allowed_options)}")
        missing = set(self.required_options) - set(options)
        if missing:
            raise CatalogError(
                f"format {self.name!r} requires option(s) "
                f"{sorted(missing)}")
        path = options.get("path")
        if path is not None:
            if not isinstance(path, str) or not path:
                raise CatalogError("option 'path' must be a file path")
            if not engine.vfs.exists(path):
                raise CatalogError(f"raw file does not exist: {path!r}")
        return dict(options)

    def infer_schema(self, engine, options: dict) -> "Schema | None":
        """The schema carried by the file itself (FITS headers), or
        None when the user must declare one (§3.1 — schema discovery
        is out of scope for text formats)."""
        return None

    def check_schema(self, engine, schema: "Schema",
                     options: dict) -> None:
        """Validate a declared schema against the file (e.g. arity
        checks). Raises :class:`CatalogError` on mismatch."""

    def build_access(self, engine, info: "TableInfo", options: dict):
        """Construct and return the access method serving ``info``,
        wiring whatever auxiliary structures the engine's policy and
        config call for."""
        raise NotImplementedError

    def cost_profile(self, engine) -> "object | None":
        """Per-format :class:`~repro.simcost.profiles.CostProfile`
        override, or None to bill at the engine's profile. A format
        whose raw-file CPU work is priced differently from the
        engine's calibration (e.g. JSONL tokenization is string/escape
        aware, ~3x a delimiter scan per byte) returns an adjusted
        profile here; :meth:`scan_model` applies it. Must be
        idempotent under re-derivation (it may be called with an
        engine whose model already carries the override)."""
        return None

    def scan_model(self, engine):
        """The cost model this format's access method should charge:
        the engine's own model when :meth:`cost_profile` returns None
        (or returns the profile already in force), otherwise a model
        sharing the engine's clock but priced at the format profile —
        one ledger, per-format rates."""
        from repro.simcost.model import CostModel

        model = engine.model
        profile = self.cost_profile(engine)
        if profile is None or profile == model.profile:
            return model
        return CostModel(model.clock, profile)

    def teardown(self, engine, info: "TableInfo") -> None:
        """Release per-table auxiliary state at ``DROP TABLE``: the
        default drops the positional map and cache (always safe, §4.2)
        and detaches a file-system-interface prewarmer if one is
        attached."""
        prewarmer = info.extra.pop("prewarmer", None)
        if prewarmer is not None:
            prewarmer.detach()
        access = info.access
        positional_map = getattr(access, "pm", None)
        if positional_map is not None:
            positional_map.drop()
        cache = getattr(access, "cache", None)
        if cache is not None:
            cache.clear()

    # ------------------------------------------------------------------
    def build_raw_structures(self, engine, info: "TableInfo",
                             model=None):
        """The standard auxiliary-structure wiring for an in-situ
        table under a ``"raw"`` policy: a :class:`~repro.core.
        positional_map.PositionalMap` (kept even in cache-only mode —
        the §5.1.2 "minimal map" of line ends; attribute chunks are
        gated inside scans) and a :class:`~repro.core.cache.
        BinaryCache`, both per the engine's config. Returns
        ``(positional_map_or_None, cache_or_None)`` — the shared
        helper raw adapters (CSV, JSONL, yours) call from
        :meth:`build_access`."""
        from repro.core.cache import BinaryCache
        from repro.core.positional_map import PositionalMap

        config = engine.config
        model = model if model is not None else engine.model
        positional_map = None
        if config.enable_positional_map or config.enable_cache:
            positional_map = PositionalMap(
                model, info.schema.arity,
                row_block_size=config.row_block_size,
                budget_bytes=config.pm_budget_bytes,
                spill_vfs=engine.vfs if config.pm_spill_enabled else None,
                spill_prefix=f"{config.pm_spill_path}/{info.name.lower()}",
            )
        cache = (BinaryCache(model, config.cache_budget_bytes)
                 if config.enable_cache else None)
        return positional_map, cache

    def _policy(self, engine, external: bool) -> str:
        """The binding policy for this table: the engine's in-situ
        policy, downgraded to ``"external"`` by CREATE EXTERNAL
        TABLE."""
        policy = getattr(engine, "in_situ_policy", None)
        if policy is None:
            raise CatalogError(
                f"engine {type(engine).__name__} does not scan raw "
                f"files in situ; format {self.name!r} is unavailable "
                "(loaded engines use USING heap)")
        return "external" if external else policy


#: the valid values of the per-table ``on_error`` option
ON_ERROR_POLICIES = ("fail", "skip", "null")


def validate_on_error(options: dict) -> None:
    """Normalize and validate the per-table ``on_error`` error policy
    (shared by every raw text adapter that supports tolerant scans):
    ``'fail'`` (default) propagates the first malformed row as a typed
    error; ``'skip'`` quarantines malformed rows to a ``__rejects__/``
    sidecar and counts them in ``rows_rejected``; ``'null'`` keeps the
    row, reading unparseable touched values as NULL."""
    policy = options.get("on_error")
    if policy is None:
        return
    if not isinstance(policy, str) or \
            policy.lower() not in ON_ERROR_POLICIES:
        raise CatalogError(
            f"option 'on_error' must be one of "
            f"{', '.join(repr(p) for p in ON_ERROR_POLICIES)}; got "
            f"{policy!r}")
    options["on_error"] = policy.lower()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, FormatAdapter] = {}


def register_format(adapter: FormatAdapter,
                    replace: bool = False) -> FormatAdapter:
    """Register ``adapter`` under its :attr:`~FormatAdapter.name` —
    the public extension point. With ``replace=False`` a name
    collision raises :class:`CatalogError`."""
    key = adapter.name.lower()
    if not replace and key in _REGISTRY:
        raise CatalogError(f"format already registered: {adapter.name!r}")
    _REGISTRY[key] = adapter
    return adapter


def get_format(name: str) -> FormatAdapter:
    """The adapter registered under ``name`` (case-insensitive);
    unknown names raise :class:`CatalogError` listing what exists."""
    adapter = _REGISTRY.get(name.lower())
    if adapter is None:
        raise CatalogError(
            f"unknown format {name!r} in USING clause; registered "
            f"formats: {', '.join(available_formats())}")
    return adapter


def has_format(name: str) -> bool:
    return name.lower() in _REGISTRY


def available_formats() -> list[str]:
    """Registered format names, sorted."""
    return sorted(_REGISTRY)


def sniff_format(path: str) -> FormatAdapter:
    """Resolve an adapter from a file extension when ``USING`` is
    omitted. Unknown extensions raise :class:`CatalogError`."""
    lowered = path.lower()
    for adapter in _REGISTRY.values():
        if any(lowered.endswith(ext) for ext in adapter.extensions):
            return adapter
    raise CatalogError(
        f"cannot infer a format for {path!r}; add USING <format> "
        f"(registered formats: {', '.join(available_formats())})")


# ---------------------------------------------------------------------------
# Built-in adapters
# ---------------------------------------------------------------------------
class CsvAdapter(FormatAdapter):
    """The paper's main case (§4): delimited text, schema declared a
    priori. Under a ``"raw"`` policy the access method is the adaptive
    in-situ scan (positional map + binary cache + statistics per the
    engine's config); under ``"external"`` it is the straw-man full
    re-parse with no auxiliary structures."""

    name = "csv"
    extensions = (".csv", ".tbl", ".tsv", ".txt")
    allowed_options = frozenset({"path", "delimiter", "on_error"})

    def validate_options(self, engine, options: dict) -> dict:
        options = super().validate_options(engine, options)
        delimiter = options.get("delimiter")
        if delimiter is not None:
            if not isinstance(delimiter, str) or \
                    len(delimiter.encode()) != 1 or delimiter == "\n":
                raise CatalogError(
                    f"option 'delimiter' must be a single byte, got "
                    f"{delimiter!r}")
        validate_on_error(options)
        return options

    def _dialect(self, engine, options: dict) -> CsvDialect:
        delimiter = options.get("delimiter")
        if delimiter is not None:
            return CsvDialect(delimiter.encode())
        config = getattr(engine, "config", None)
        return config.dialect if config is not None else CsvDialect()

    def check_schema(self, engine, schema, options: dict) -> None:
        """Declaring *more* attributes than the file's first line holds
        is a registration error (every scan would fail tokenizing);
        declaring fewer is fine — selective tokenizing never looks past
        the largest requested attribute."""
        # Inspect only the first line: find + slice, no whole-file
        # split copy, and no costed handle — declaration stays free on
        # the engine's clock.
        data = engine.vfs.read_bytes(options["path"])
        newline = data.find(b"\n")
        first_line = data[:newline] if newline >= 0 else data
        if not first_line:
            return  # empty file: zero rows of any arity
        fields = first_line.count(
            self._dialect(engine, options).delimiter) + 1
        if schema.arity > fields:
            raise CatalogError(
                f"schema declares {schema.arity} column(s) but "
                f"{options['path']!r} has {fields} field(s) on its "
                "first line")

    def build_access(self, engine, info, options: dict):
        from repro.engines.access import ExternalAccess

        dialect = self._dialect(engine, options)
        if self._policy(engine, info.external) == "external":
            return ExternalAccess(engine.vfs, info.path, info.schema,
                                  engine.model, dialect=dialect)

        from repro.core.scan import RawCsvAccess

        config = engine.config
        if dialect != config.dialect:
            config = dataclasses.replace(config, dialect=dialect)
        positional_map, cache = self.build_raw_structures(engine, info)
        return RawCsvAccess(engine.vfs, info.path, info.schema,
                            engine.model, config, info, positional_map,
                            cache, pool=getattr(engine, "scan_pool", None))


class FitsAdapter(FormatAdapter):
    """FITS binary tables (§5.3). The schema comes from the file's own
    header — no declaration needed; a declared one must match it."""

    name = "fits"
    extensions = (".fits", ".fit")

    def parse_table(self, vfs, path: str):
        """Parse the file's header into a
        :class:`~repro.formats.fits.FitsTableInfo` — shared with the
        CFITSIO comparator so format knowledge stays here."""
        from repro.formats.fits import parse_fits_from_vfs

        return parse_fits_from_vfs(vfs, path)

    def _parsed(self, engine, options: dict):
        """Parse once per CREATE: the options dict flows through
        infer_schema -> check_schema -> build_access, so it carries the
        parse (popped before the options land in the catalog entry)."""
        fits = options.get("_fits")
        if fits is None:
            fits = self.parse_table(engine.vfs, options["path"])
            options["_fits"] = fits
        return fits

    def infer_schema(self, engine, options: dict):
        return self._parsed(engine, options).schema

    def check_schema(self, engine, schema, options: dict) -> None:
        file_schema = self._parsed(engine, options).schema
        if [c.name.lower() for c in schema] != \
                [c.name.lower() for c in file_schema]:
            raise CatalogError(
                f"declared columns {[c.name for c in schema]} do not "
                f"match the FITS header of {options['path']!r} "
                f"({[c.name for c in file_schema]})")

    def build_access(self, engine, info, options: dict):
        fits = options.pop("_fits", None)
        if self._policy(engine, info.external) == "external":
            raise CatalogError(
                "format 'fits' has no external-files binding; use a "
                "raw (in-situ) engine")
        from repro.core.cache import BinaryCache
        from repro.core.fits_scan import RawFitsAccess

        config = engine.config
        if fits is None:
            fits = self.parse_table(engine.vfs, info.path)
        cache = (BinaryCache(engine.model, config.cache_budget_bytes)
                 if config.enable_cache else None)
        return RawFitsAccess(engine.vfs, info.path, fits, engine.model,
                             config, info, cache)


class HeapAdapter(FormatAdapter):
    """The conventional load-then-query path: ``CREATE TABLE ... USING
    heap OPTIONS (path '<csv>')`` bulk-loads the CSV into binary heap
    pages on the engine's clock and binds a buffer-pool scan. Only
    engines with a buffer pool (:class:`~repro.engines.loaded.
    LoadedDBMS`) support the CSV-load path.

    A second, hidden channel materializes *computed* tuples instead of
    a file: ``options['_rows']`` (a list of tuples, with an optional
    ``'_path'`` heap placement) is how CTAS and rollup builds store
    query results through this adapter on any engine — the serving
    pool comes from ``engine.materialization_pool()``."""

    name = "heap"

    def validate_options(self, engine, options: dict) -> dict:
        if "_rows" in options:
            # Materialization channel: no source path to check.
            unknown = set(options) - {"_rows", "_path"}
            if unknown:
                raise CatalogError(
                    f"format 'heap' row materialization does not "
                    f"accept option(s) {sorted(unknown)}")
            if not isinstance(options["_rows"], list):
                raise CatalogError(
                    "hidden option '_rows' must be a list of tuples")
            return dict(options)
        return super().validate_options(engine, options)

    def build_access(self, engine, info, options: dict):
        if info.external:
            raise CatalogError(
                "EXTERNAL makes no sense for loaded heap tables")

        from repro.engines.access import HeapAccess
        from repro.storage.heap import HeapFile
        from repro.storage.loader import BulkLoader, load_rows
        from repro.storage.record import RecordCodec
        from repro.storage.toast import ToastReader

        if "_rows" in options:
            result_rows = options.pop("_rows")
            heap_path = options.pop("_path", None) or \
                f"__heap__/{engine.name}/{info.name.lower()}.heap"
            pool = engine.materialization_pool()
            rows, stats = load_rows(engine.vfs, engine.model, heap_path,
                                    info.schema, result_rows)
            pool.invalidate(heap_path)
        else:
            pool = getattr(engine, "pool", None)
            if pool is None:
                raise CatalogError(
                    f"format 'heap' requires a loading engine with a "
                    f"buffer pool; {type(engine).__name__} has none")
            csv_path = options["path"]
            heap_path = f"__heap__/{engine.name}/{info.name.lower()}.heap"
            loader = BulkLoader(engine.vfs, engine.model)
            rows, stats = loader.load(csv_path, heap_path, info.schema)
            info.extra["source_path"] = csv_path
        heap = HeapFile(engine.vfs, heap_path)
        toast = (ToastReader(engine.vfs, heap_path + ".toast",
                             engine.model)
                 if engine.vfs.exists(heap_path + ".toast") else None)
        info.stats = stats
        info.row_count_hint = rows
        # The catalog entry points at the loaded heap, not the source.
        info.path = heap_path
        return HeapAccess(heap, pool, RecordCodec(info.schema),
                          info.schema, engine.model, row_count=rows,
                          toast=toast)


register_format(CsvAdapter())
register_format(FitsAdapter())
register_format(HeapAdapter())
