"""Columnar batches — the unit of the vectorized pull mode.

A :class:`ColumnBatch` carries one block of tuples column-wise: one
Python list per output column, all the same length. Operators that
understand batches (:class:`~repro.sql.operators.ScanOp` and friends)
exchange these instead of individual tuples, amortizing per-tuple
interpreter overhead over a whole block; everything else consumes the
:meth:`iter_rows` shim, so a batch-producing subtree composes with the
Volcano-style row operators unchanged.
"""

from __future__ import annotations

from typing import Iterator, Sequence


class ColumnBatch:
    """One block of tuples, stored column-wise.

    ``columns`` is a list of equal-length value lists, one per output
    column in plan order. A zero-column batch still knows its row count
    (``SELECT count(*)`` scans project no attributes but must emit one
    empty tuple per qualifying row).
    """

    __slots__ = ("columns", "nrows")

    def __init__(self, columns: Sequence[list], nrows: int):
        self.columns = list(columns)
        self.nrows = nrows

    def __len__(self) -> int:
        return self.nrows

    @property
    def width(self) -> int:
        return len(self.columns)

    def iter_rows(self) -> Iterator[tuple]:
        """Row-iterator shim: the batch as plain tuples, in order."""
        if not self.columns:
            empty = ()
            return (empty for _ in range(self.nrows))
        return zip(*self.columns)

    def column(self, index: int) -> list:
        return self.columns[index]

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "ColumnBatch":
        """Transpose materialized rows into a batch (the adapter used to
        lift a row-producing child into a batch-consuming parent)."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))


def batches_to_rows(batches) -> Iterator[tuple]:
    """Flatten an iterable of batches into a tuple iterator."""
    for batch in batches:
        yield from batch.iter_rows()
