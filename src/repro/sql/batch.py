"""Typed columnar batches — the unit of the vectorized pull mode.

A :class:`ColumnBatch` carries one block of tuples column-wise as
NumPy arrays. Each column is either *dtype-tagged* (``int64``,
``float64``, ``bool`` — and ``int32`` day numbers for dates served
from the typed cache) or an *object* array holding arbitrary Python
values (strings, ``datetime.date``, mixed NULLs). A parallel ``nulls``
list carries per-column validity: a boolean mask where the column has
NULLs, or ``None`` when it provably has none (typed columns cannot
represent NULL in-band, so their mask is always explicit or absent).

Operators that understand batches (:class:`~repro.sql.operators.ScanOp`
and friends) exchange these instead of individual tuples, amortizing
per-tuple interpreter overhead over a whole block *and* keeping data in
typed arrays end-to-end (vectorized predicate masks, grouped
aggregation, gather-based joins, argsort ordering). Everything else
consumes the :meth:`iter_rows` shim — which materializes plain Python
tuples — so a batch-producing subtree composes with the Volcano-style
row operators unchanged.

Batch streams follow the scan API's ordered delivery contract
(:mod:`repro.sql.scanapi`): file order, always — parallel chunk scans
merge their out-of-order worker results back into sequence before a
batch ever reaches an operator, so everything downstream of the scan is
oblivious to ``scan_workers``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np


def as_object_array(values: Sequence) -> np.ndarray:
    """A 1-D object ndarray over ``values`` (no dtype inference — large
    ints, dates and mixed NULLs survive untouched)."""
    if isinstance(values, np.ndarray):
        return values
    arr = np.empty(len(values), dtype=object)
    if len(values):
        arr[:] = values
    return arr


def object_nulls(column: np.ndarray) -> np.ndarray:
    """Boolean mask of the ``None`` entries of an object column."""
    out = np.fromiter((v is None for v in column.tolist()), dtype=bool,
                      count=len(column))
    return out


class ColumnBatch:
    """One block of tuples, stored column-wise as NumPy arrays.

    ``columns`` is a list of equal-length arrays, one per output column
    in plan order; plain Python lists are accepted and wrapped as
    object arrays. ``nulls`` (optional) aligns with ``columns``: a bool
    ndarray marking NULL rows, or ``None``. For typed columns ``None``
    means *no NULLs*; for object columns it means *not computed yet*
    (the ``None`` values live in the array itself) — use
    :meth:`null_mask` to resolve either way.

    A zero-column batch still knows its row count (``SELECT count(*)``
    scans project no attributes but must emit one empty tuple per
    qualifying row).
    """

    __slots__ = ("columns", "nulls", "nrows")

    def __init__(self, columns: Sequence, nrows: int,
                 nulls: Sequence[Optional[np.ndarray]] | None = None):
        self.columns = [as_object_array(col) for col in columns]
        self.nrows = nrows
        if nulls is None:
            self.nulls: list[Optional[np.ndarray]] = [None] * len(
                self.columns)
        else:
            self.nulls = list(nulls)

    def __len__(self) -> int:
        return self.nrows

    @property
    def width(self) -> int:
        return len(self.columns)

    def column(self, index: int) -> np.ndarray:
        return self.columns[index]

    def null_mask(self, index: int) -> Optional[np.ndarray]:
        """The NULL mask of one column, or ``None`` when it is typed
        with no NULLs. Computed on demand for object columns and cached
        either way (an all-False mask is kept so NULL-free object
        columns are scanned once, not once per predicate term)."""
        mask = self.nulls[index]
        if mask is not None:
            return mask
        column = self.columns[index]
        if column.dtype != object:
            return None
        mask = object_nulls(column)
        self.nulls[index] = mask
        return mask

    def column_values(self, index: int) -> list:
        """One column as a plain Python list (``None`` for NULLs)."""
        column = self.columns[index]
        values = column.tolist()
        mask = self.nulls[index]
        if mask is not None and column.dtype != object and mask.any():
            for row in np.flatnonzero(mask).tolist():
                values[row] = None
        return values

    def iter_rows(self) -> Iterator[tuple]:
        """Row-iterator shim: the batch as plain Python tuples, in
        order (typed values converted back to Python scalars)."""
        if not self.columns:
            empty = ()
            return (empty for _ in range(self.nrows))
        return zip(*(self.column_values(i)
                     for i in range(len(self.columns))))

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """A new batch holding ``indices``' rows (gather; typed columns
        stay typed)."""
        columns = [col[indices] for col in self.columns]
        nulls = [mask[indices] if mask is not None else None
                 for mask in self.nulls]
        return ColumnBatch(columns, len(indices), nulls)

    def head(self, count: int) -> "ColumnBatch":
        """The first ``count`` rows (LIMIT truncation)."""
        columns = [col[:count] for col in self.columns]
        nulls = [mask[:count] if mask is not None else None
                 for mask in self.nulls]
        return ColumnBatch(columns, count, nulls)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "ColumnBatch":
        """Transpose materialized rows into a batch (the adapter used to
        lift a row-producing child into a batch-consuming parent).
        Columns come out as object arrays — typed columns only ever
        originate at a batch-capable scan or a vectorized operator."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))


def batches_to_rows(batches) -> Iterator[tuple]:
    """Flatten an iterable of batches into a tuple iterator."""
    for batch in batches:
        yield from batch.iter_rows()
