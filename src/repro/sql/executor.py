"""Plan execution and query results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simcost.model import CostModel
from repro.sql.batch import batches_to_rows
from repro.sql.planner import PlannedQuery


@dataclass
class QueryResult:
    """The materialized result of one query.

    ``elapsed`` is virtual seconds of engine work for this query (parse
    + plan + execute under the cost model); ``counters`` is the delta of
    cost-event units it consumed; ``plan`` is the physical plan summary
    (useful to observe optimizer decisions, e.g. Figure 12).
    """

    columns: list[str]
    rows: list[tuple]
    elapsed: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    plan: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one result column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def execute(planned: PlannedQuery, model: CostModel,
            start: float | None = None,
            counters_before: dict | None = None) -> QueryResult:
    """Run a planned query to completion, timing it on the virtual
    clock. ``start``/``counters_before`` let the caller include
    parse/plan overhead in the reported elapsed time.

    Plans whose root produces real columnar batches (a batch-capable
    scan under filter/project operators — see ``PlanOp.supports_batches``)
    are pulled block-at-a-time and materialized from whole batches;
    everything else uses the classic row iterator."""
    if start is None:
        start = model.clock.checkpoint()
    if counters_before is None:
        counters_before = dict(model.clock.counters)
    root = planned.root
    if getattr(root, "supports_batches", False):
        rows = list(batches_to_rows(root.batches()))
    else:
        rows = list(root.rows())
    elapsed = model.clock.elapsed_since(start)
    counters_after = model.clock.counters
    delta = {
        event.value: counters_after[event] - counters_before.get(event, 0)
        for event in counters_after
        if counters_after[event] != counters_before.get(event, 0)
    }
    return QueryResult(columns=planned.names, rows=rows, elapsed=elapsed,
                       counters=delta, plan=planned.describe())
