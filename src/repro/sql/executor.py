"""Plan execution and query results.

Two consumption modes share one pipeline. :func:`execute_batches` is
the streaming core: it pulls :class:`~repro.sql.batch.ColumnBatch`
blocks from the plan root (real columnar blocks when the subtree
supports them, transposed rows otherwise) — cursors in
:mod:`repro.api` hold this iterator live and materialize only what
``fetchmany`` asks for. :func:`execute` is the eager convenience built
on top: it drains the stream into a :class:`QueryResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import UnknownColumnError
from repro.simcost.model import CostModel
from repro.sql.batch import ColumnBatch, batches_to_rows
from repro.sql.planner import PlannedQuery


def column_index(name: str, columns: list[str]) -> int:
    """Position of ``name`` in a result's column list; raises
    :class:`UnknownColumnError` naming the column and what is
    available. Shared by :meth:`QueryResult.column` and the cursor
    ``description`` path in :mod:`repro.api`."""
    try:
        return columns.index(name)
    except ValueError:
        raise UnknownColumnError(name, columns) from None


@dataclass
class QueryResult:
    """The materialized result of one query.

    ``elapsed`` is virtual seconds of engine work for this query (parse
    + plan + execute under the cost model); ``counters`` is the delta of
    cost-event units it consumed; ``plan`` is the physical plan summary
    (useful to observe optimizer decisions, e.g. Figure 12).
    """

    columns: list[str]
    rows: list[tuple]
    elapsed: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    plan: dict = field(default_factory=dict)
    #: per-row tuples materialized inside the operator tree (upstream
    #: of final result assembly) while producing this result — 0 for a
    #: fully columnar batch-mode plan. Kept separate from ``counters``
    #: (it is an observability metric, not a priced cost event).
    rows_materialized: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one result column."""
        index = column_index(name, self.columns)
        return [row[index] for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def execute_batches(planned: PlannedQuery) -> Iterator[ColumnBatch]:
    """The streaming execution core: pull the plan root block-at-a-time.

    Plans whose root produces real columnar batches (a batch-capable
    scan under filter/project operators — see ``PlanOp.supports_batches``)
    stream those blocks straight through; everything else streams the
    classic row iterator transposed into batches by the operator-level
    default. Either way nothing is materialized beyond the block in
    flight, so a cursor can fetch incrementally from an arbitrarily
    large scan."""
    return planned.root.batches()


def counters_delta(counters_after, counters_before: dict) -> dict:
    """Per-event difference of two counter snapshots (by event value),
    keeping only events that moved."""
    return {
        event.value: counters_after[event] - counters_before.get(event, 0)
        for event in counters_after
        if counters_after[event] != counters_before.get(event, 0)
    }


def execute(planned: PlannedQuery, model: CostModel,
            start: float | None = None,
            counters_before: dict | None = None) -> QueryResult:
    """Run a planned query to completion, timing it on the virtual
    clock. ``start``/``counters_before`` let the caller include
    parse/plan overhead in the reported elapsed time.

    This is the eager convenience over :func:`execute_batches`: the
    whole stream is drained into one materialized result."""
    if start is None:
        start = model.clock.checkpoint()
    if counters_before is None:
        counters_before = dict(model.clock.counters)
    materialized_before = model.rows_materialized
    rows = list(batches_to_rows(execute_batches(planned)))
    elapsed = model.clock.elapsed_since(start)
    delta = counters_delta(model.clock.counters, counters_before)
    return QueryResult(columns=planned.names, rows=rows, elapsed=elapsed,
                       counters=delta, plan=planned.describe(),
                       rows_materialized=(model.rows_materialized
                                          - materialized_before))


#: plan-dict keys holding child plans, in render order
_PLAN_CHILD_KEYS = ("input", "left", "right", "outer", "inner")


def render_plan(plan: dict) -> list[str]:
    """Flatten a ``describe()`` plan dict into indented text lines —
    the rows of an ``EXPLAIN`` result."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        attrs = ", ".join(f"{key}={value!r}" for key, value in node.items()
                          if key != "op" and key not in _PLAN_CHILD_KEYS)
        prefix = "  " * depth + ("-> " if depth else "")
        lines.append(f"{prefix}{node['op']}" + (f" ({attrs})" if attrs
                                                else ""))
        for key in _PLAN_CHILD_KEYS:
            child = node.get(key)
            if isinstance(child, dict):
                walk(child, depth + 1)

    walk(plan, 0)
    return lines


def explain_rows(plan: dict) -> tuple[list[str], list[tuple]]:
    """The result shape of ``EXPLAIN``: column names + one text row per
    plan node. Single source for both the legacy ``Database.query``
    path and the session/cursor path."""
    return ["QUERY PLAN"], [(line,) for line in render_plan(plan)]


def explain_result(planned: PlannedQuery, model: CostModel,
                   start: float | None = None,
                   counters_before: dict | None = None) -> QueryResult:
    """The result of ``EXPLAIN <select>``: one text row per plan node
    (the summary the executor normally records in ``QueryResult.plan``),
    with the plan dict itself still attached as ``plan``."""
    if start is None:
        start = model.clock.checkpoint()
    if counters_before is None:
        counters_before = dict(model.clock.counters)
    plan = planned.describe()
    elapsed = model.clock.elapsed_since(start)
    delta = counters_delta(model.clock.counters, counters_before)
    columns, rows = explain_rows(plan)
    return QueryResult(columns=columns, rows=rows, elapsed=elapsed,
                       counters=delta, plan=plan)
