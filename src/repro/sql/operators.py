"""Physical plan operators (Volcano-style generators + columnar pull).

Every operator charges the engine's cost model for the work it does, so
virtual query time reflects plan choices (hash vs sort aggregation, join
order) exactly the way the paper's Figure 12 depends on.

Rows are plain tuples. Each operator carries a *layout*: a dict mapping
the canonical key (:func:`repro.sql.expressions.expr_key`) of the
expression that produced a column to its index in the row.

Operators expose two pull modes. ``rows()`` is the classic Volcano
iterator every operator implements; it is retained unchanged as the
differential oracle for the columnar path. ``batches()`` pulls
:class:`~repro.sql.batch.ColumnBatch` blocks instead — and, since the
batch became a typed NumPy container, the whole operator tree stays
columnar end-to-end in batch mode:

* ``ScanOp`` feeds typed blocks straight from a batch-capable access
  method; ``FilterOp`` evaluates vectorized masks (falling back to the
  row closure for shapes the vectorizer does not cover);
* ``ProjectOp`` passes resolved columns through by reference;
* ``HashAggregateOp`` / ``SortAggregateOp`` extract group keys and
  aggregate arguments as arrays, factorize keys per block
  (``np.unique``-based) and accumulate SUM/COUNT/MIN/MAX/AVG with
  sequential array updates whose result is bit-identical to the scalar
  accumulators;
* ``HashJoinOp`` builds columnar key codes over the (concatenated)
  build side and probes with ``searchsorted`` + gather expansion;
* ``SortOp`` orders via repeated stable ``np.argsort`` passes over
  rank codes, replicating the scalar multi-key stable sort exactly.

Cost charging is pull-mode invariant: batch paths charge the same unit
totals per block that the row paths charge per row. Every place the
batch pipeline *does* transpose a block into Python tuples (the scan
shim, a row-closure filter/projection fallback) records the fact on the
``rows_materialized`` observability counter, so a fully columnar plan
is assertable as ``rows_materialized == 0``.

Every operator inherits a default ``batches()`` that transposes its
``rows()`` — so a batch-consuming parent composes with any subtree.
``supports_batches`` reports whether a subtree produces real (scan-fed)
columnar batches; the executor uses it to pick the pull mode per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.simcost.model import CostModel
from repro.sql.batch import ColumnBatch
from repro.sql.scanapi import AccessMethod, ScanPredicate

Layout = dict[str, int]

#: rows per batch when transposing a row iterator into batches
DEFAULT_BATCH_ROWS = 1024


def layout_resolver(layout: Layout):
    """A resolver (see expressions.compile_expr) over a row layout."""
    from repro.sql.expressions import expr_key

    def resolve(node):
        return layout.get(expr_key(node))
    return resolve


class _BatchNulls:
    """Lazy per-column NULL-mask view of one batch, with the mapping
    ``.get`` interface the vectorizer's mask/value functions expect."""

    __slots__ = ("batch",)

    def __init__(self, batch: ColumnBatch):
        self.batch = batch

    def get(self, index: int):
        return self.batch.null_mask(index)


def _concat_columns(parts: list[np.ndarray]) -> np.ndarray:
    """Concatenate column fragments, degrading to object dtype when the
    fragments disagree (e.g. a typed block followed by a NULL-bearing
    object block of the same logical column)."""
    if len(parts) == 1:
        return parts[0]
    dtypes = {part.dtype for part in parts}
    if len(dtypes) > 1 and any(dt == object for dt in dtypes):
        parts = [part if part.dtype == object else part.astype(object)
                 for part in parts]
    return np.concatenate(parts)


def _concat_nulls(masks: list, lengths: list[int]):
    """Concatenate per-fragment NULL masks (None = no NULLs)."""
    if all(mask is None for mask in masks):
        return None
    return np.concatenate([
        mask if mask is not None else np.zeros(length, dtype=bool)
        for mask, length in zip(masks, lengths)])


def _scalar_of(column: np.ndarray, row: int):
    """One column entry as a plain Python value."""
    value = column[row]
    return value.item() if isinstance(value, np.generic) else value


class PlanOp:
    """Base class: an iterator of tuples with a layout and a describe()."""

    def __init__(self, model: CostModel, layout: Layout):
        self.model = model
        self.layout = layout

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    @property
    def supports_batches(self) -> bool:
        """True when :meth:`batches` yields real columnar blocks (a
        batch-capable scan feeds this subtree and every operator on the
        way knows how to stay columnar) rather than transposed rows."""
        return False

    def batches(self) -> Iterator[ColumnBatch]:
        """Columnar pull with a row-transposing default, so any subtree
        can be consumed batch-wise."""
        width = len(self.layout)
        pending: list[tuple] = []
        for row in self.rows():
            pending.append(row)
            if len(pending) >= DEFAULT_BATCH_ROWS:
                yield ColumnBatch.from_rows(pending, width)
                pending = []
        if pending:
            yield ColumnBatch.from_rows(pending, width)

    def describe(self) -> dict:
        raise NotImplementedError


class ScanOp(PlanOp):
    """Plan leaf: delegates to an access method (raw/heap/external)."""

    def __init__(self, model: CostModel, layout: Layout,
                 access: AccessMethod, needed: Sequence[int],
                 predicate: ScanPredicate | None, table_name: str):
        super().__init__(model, layout)
        self.access = access
        self.needed = list(needed)
        self.predicate = predicate
        self.table_name = table_name
        # Plan-time PartitionSelection for partitioned tables (EXPLAIN).
        self.partitions = None
        # Compiled scan kernel (repro.kernels), attached by the session
        # when the plan is prepared; ``kernel_info`` is the EXPLAIN
        # string (``<sig> (hit|compiled)`` / ``none (<reason>)``).
        self.kernel = None
        self.kernel_info = None

    def rows(self) -> Iterator[tuple]:
        return self.access.scan(self.needed, self.predicate)

    @property
    def supports_batches(self) -> bool:
        return (getattr(self.access, "batch_enabled", False)
                and hasattr(self.access, "scan_batches"))

    def batches(self) -> Iterator[ColumnBatch]:
        if self.supports_batches:
            if self.kernel is not None:
                return self.access.scan_batches(self.needed,
                                                self.predicate,
                                                kernel=self.kernel)
            return self.access.scan_batches(self.needed, self.predicate)
        return super().batches()

    def describe(self) -> dict:
        out = {
            "op": "Scan",
            "table": self.table_name,
            "access": type(self.access).__name__,
            "columns": len(self.needed),
            "pushed_predicates": (self.predicate.n_terms
                                  if self.predicate else 0),
        }
        if self.partitions is not None:
            out["files"] = self.partitions.total
            out["files_scanned"] = self.partitions.scanned
            out["files_pruned"] = self.partitions.pruned
        on_error = getattr(self.access, "on_error", "fail")
        if on_error != "fail":
            # Non-default error policy changes what the scan can emit
            # (rows quarantined or NULL-filled), so it is part of the
            # plan summary — 'fail' stays silent to keep default
            # EXPLAIN output unchanged.
            out["on_error"] = on_error
        # ``kernel_info`` is deliberately NOT part of the plan summary:
        # it is session state (hit/compiled against *that* session's
        # kernel cache), so ``Database.explain()`` and a session's
        # EXPLAIN of the same SQL would otherwise describe the same
        # plan differently. The session renders it as extra EXPLAIN
        # rows instead.
        return out


class FilterOp(PlanOp):
    """Residual predicate evaluation (join predicates that could not be
    turned into hash keys, HAVING, multi-table conjuncts).

    When the planner could vectorize the predicate over the input
    layout (``vector_fn``), the batch path evaluates one mask per block
    and gathers survivors without touching a single tuple."""

    def __init__(self, model: CostModel, child: PlanOp,
                 predicate_fn: Callable, n_terms: int = 1,
                 label: str = "Filter", vector_fn: Callable | None = None):
        super().__init__(model, child.layout)
        self.child = child
        self.predicate_fn = predicate_fn
        self.n_terms = n_terms
        self.label = label
        self.vector_fn = vector_fn

    def rows(self) -> Iterator[tuple]:
        predicate = self.predicate_fn
        n_terms = self.n_terms
        model = self.model
        for row in self.child.rows():
            model.predicate(n_terms)
            if predicate(row) is True:
                yield row

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        predicate = self.predicate_fn
        vector_fn = self.vector_fn
        for batch in self.child.batches():
            if not batch.nrows:
                continue
            self.model.predicate(self.n_terms * batch.nrows)
            if vector_fn is not None:
                mask = vector_fn(batch.columns, _BatchNulls(batch),
                                 batch.nrows)
                yield batch.take(np.flatnonzero(mask))
                continue
            self.model.materialize_rows(batch.nrows)
            kept = [row for row in batch.iter_rows()
                    if predicate(row) is True]
            yield ColumnBatch.from_rows(kept, batch.width)

    def describe(self) -> dict:
        return {"op": self.label, "terms": self.n_terms,
                "vectorized": self.vector_fn is not None,
                "input": self.child.describe()}


class GateOp(PlanOp):
    """A row-independent predicate evaluated once per execution.

    Used for constant conjuncts whose value is only known at run time
    (``?`` placeholders): if the predicate is not TRUE the child is
    never pulled at all — the per-execution analogue of the planner's
    plan-time constant folding."""

    def __init__(self, model: CostModel, child: PlanOp,
                 predicate_fn: Callable, n_terms: int = 1):
        super().__init__(model, child.layout)
        self.child = child
        self.predicate_fn = predicate_fn
        self.n_terms = n_terms

    def _open(self) -> bool:
        self.model.predicate(self.n_terms)
        return self.predicate_fn(()) is True

    def rows(self) -> Iterator[tuple]:
        if self._open():
            yield from self.child.rows()

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        if self._open():
            yield from self.child.batches()

    def describe(self) -> dict:
        return {"op": "Gate", "terms": self.n_terms,
                "input": self.child.describe()}


class ProjectOp(PlanOp):
    """Computes output expressions; owns the result column names.

    ``col_indices`` (from the planner) marks output expressions that
    are plain input columns: the batch path forwards those arrays by
    reference and only materializes rows for genuinely computed
    expressions."""

    def __init__(self, model: CostModel, child: PlanOp,
                 fns: list[Callable], layout: Layout, names: list[str],
                 col_indices: list[int | None] | None = None):
        super().__init__(model, layout)
        self.child = child
        self.fns = fns
        self.names = names
        self.col_indices = col_indices

    def rows(self) -> Iterator[tuple]:
        fns = self.fns
        width = len(fns)
        model = self.model
        for row in self.child.rows():
            model.tuple_form(width)
            yield tuple(fn(row) for fn in fns)

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        fns = self.fns
        width = len(fns)
        indices = self.col_indices
        pure = indices is not None and all(i is not None for i in indices)
        for batch in self.child.batches():
            if batch.nrows:
                self.model.tuple_form(width * batch.nrows)
            if pure:
                yield ColumnBatch([batch.columns[i] for i in indices],
                                  batch.nrows,
                                  [batch.nulls[i] for i in indices])
                continue
            rows = list(batch.iter_rows())
            if rows:
                self.model.materialize_rows(len(rows))
            columns: list = []
            nulls: list = []
            for j, fn in enumerate(fns):
                if indices is not None and indices[j] is not None:
                    columns.append(batch.columns[indices[j]])
                    nulls.append(batch.nulls[indices[j]])
                else:
                    columns.append([fn(row) for row in rows])
                    nulls.append(None)
            yield ColumnBatch(columns, batch.nrows, nulls)

    def describe(self) -> dict:
        return {"op": "Project", "columns": self.names,
                "input": self.child.describe()}


# ---------------------------------------------------------------------------
# Hash join (columnar build/probe)
# ---------------------------------------------------------------------------
class _KeyEncoder:
    """Per-key-column code assignment over the build side, probe-able
    from the other side. Typed numeric columns use sorted-unique +
    ``searchsorted``; object columns (strings, dates, NULL-bearing
    blocks) use a Python dict over scalar values — never row tuples."""

    __slots__ = ("uniques", "mapping", "size", "_probe_mapping")

    def __init__(self, column: np.ndarray, valid: np.ndarray):
        self._probe_mapping: dict | None = None
        if column.dtype != object:
            self.uniques = np.unique(column[valid])
            self.mapping = None
            self.size = len(self.uniques)
        else:
            mapping: dict = {}
            for row in np.flatnonzero(valid).tolist():
                mapping.setdefault(column[row], len(mapping))
            self.uniques = None
            self.mapping = mapping
            self.size = len(mapping)

    def encode(self, column: np.ndarray, valid: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray]:
        """``(codes, known)`` — code per row (garbage where not known)
        and the mask of rows whose value exists in the build side."""
        n = len(column)
        codes = np.zeros(n, dtype=np.int64)
        known = np.zeros(n, dtype=bool)
        if self.mapping is not None:
            mapping = self.mapping
            for row in np.flatnonzero(valid).tolist():
                code = mapping.get(_scalar_of(column, row))
                if code is not None:
                    codes[row] = code
                    known[row] = True
            return codes, known
        if self.size == 0:
            return codes, known
        if column.dtype == object:
            # Probe side carries objects against a typed build side:
            # fall back to value hashing (mapping built once, cached —
            # probes arrive one batch at a time).
            if self._probe_mapping is None:
                self._probe_mapping = {_scalar_of(self.uniques, i): i
                                       for i in range(self.size)}
            mapping = self._probe_mapping
            for row in np.flatnonzero(valid).tolist():
                code = mapping.get(_scalar_of(column, row))
                if code is not None:
                    codes[row] = code
                    known[row] = True
            return codes, known
        pos = np.searchsorted(self.uniques, column)
        pos_c = np.minimum(pos, self.size - 1)
        hit = valid & (self.uniques[pos_c] == column)
        codes[hit] = pos_c[hit]
        known = hit
        return codes, known


class HashJoinOp(PlanOp):
    """Equi-join; builds a hash table on the right (smaller) input.

    With batch-capable children and resolved key columns
    (``left_key_idx`` / ``right_key_idx`` from the planner), the batch
    path concatenates the build side column-wise, encodes keys into a
    shared integer code space, and probes each left block with
    ``searchsorted`` + repeat/gather output assembly — no per-row
    tuples anywhere."""

    def __init__(self, model: CostModel, left: PlanOp, right: PlanOp,
                 left_key_fns: list[Callable], right_key_fns: list[Callable],
                 layout: Layout,
                 left_key_idx: list[int | None] | None = None,
                 right_key_idx: list[int | None] | None = None):
        super().__init__(model, layout)
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.left_key_idx = left_key_idx
        self.right_key_idx = right_key_idx

    def rows(self) -> Iterator[tuple]:
        model = self.model
        table: dict[tuple, list[tuple]] = {}
        for row in self.right.rows():
            key = tuple(fn(row) for fn in self.right_key_fns)
            if any(part is None for part in key):
                continue  # NULL never joins
            model.hash_probe(1)
            table.setdefault(key, []).append(row)
        for row in self.left.rows():
            key = tuple(fn(row) for fn in self.left_key_fns)
            model.hash_probe(1)
            if any(part is None for part in key):
                continue
            for match in table.get(key, ()):
                yield row + match

    @property
    def supports_batches(self) -> bool:
        return (self.left.supports_batches and self.right.supports_batches
                and self.left_key_idx is not None
                and self.right_key_idx is not None
                and all(i is not None for i in self.left_key_idx)
                and all(i is not None for i in self.right_key_idx))

    def batches(self) -> Iterator[ColumnBatch]:
        if not self.supports_batches:
            yield from super().batches()
            return
        model = self.model

        # ---- build: drain and concatenate the right side column-wise
        parts = [b for b in self.right.batches() if b.nrows]
        lengths = [b.nrows for b in parts]
        right_width = len(self.right.layout)
        if parts:
            r_columns = [_concat_columns([b.columns[c] for b in parts])
                         for c in range(right_width)]
            r_nulls = [_concat_nulls([b.null_mask(c) for b in parts],
                                     lengths) for c in range(right_width)]
            r_total = sum(lengths)
        else:
            r_columns = [np.empty(0, dtype=object)
                         for _ in range(right_width)]
            r_nulls = [None] * right_width
            r_total = 0

        r_valid = np.ones(r_total, dtype=bool)
        for idx in self.right_key_idx:
            mask = r_nulls[idx]
            if mask is not None:
                r_valid &= ~mask
        model.hash_probe(int(r_valid.sum()))

        # Staged pair-compaction: after every key the running code is
        # re-compacted via np.unique, so the intermediate product
        # ``code * (size + 1) + key_code`` stays bounded by roughly
        # n_r^2 and cannot overflow int64 for any key count or
        # cardinality. The per-stage sorted raw codes are kept so the
        # probe side maps into the same compacted space.
        encoders: list[_KeyEncoder] = []
        stage_uniques: list[np.ndarray] = []
        r_codes = np.zeros(r_total, dtype=np.int64)
        for idx in self.right_key_idx:
            encoder = _KeyEncoder(r_columns[idx], r_valid)
            encoders.append(encoder)
            codes, known = encoder.encode(r_columns[idx], r_valid)
            r_valid = r_valid & known  # every build value is known
            raw = r_codes * (encoder.size + 1) + codes
            uniq_raw, inverse = np.unique(raw, return_inverse=True)
            stage_uniques.append(uniq_raw)
            r_codes = inverse.astype(np.int64, copy=False)
        r_valid_idx = np.flatnonzero(r_valid)
        r_codes = r_codes[r_valid_idx]
        order = np.argsort(r_codes, kind="stable")
        sorted_codes = r_codes[order]
        uniq_codes, counts = np.unique(r_codes, return_counts=True)
        starts = np.searchsorted(sorted_codes, uniq_codes)

        # ---- probe: stream the left side block by block
        for batch in self.left.batches():
            n = batch.nrows
            if not n:
                continue
            model.hash_probe(n)
            if len(uniq_codes) == 0:
                continue
            l_valid = np.ones(n, dtype=bool)
            for idx in self.left_key_idx:
                mask = batch.null_mask(idx)
                if mask is not None:
                    l_valid &= ~mask
            l_codes = np.zeros(n, dtype=np.int64)
            for idx, encoder, uniq_raw in zip(self.left_key_idx, encoders,
                                              stage_uniques):
                codes, known = encoder.encode(batch.columns[idx], l_valid)
                l_valid = l_valid & known
                raw = l_codes * (encoder.size + 1) + codes
                stage_pos = np.searchsorted(uniq_raw, raw)
                stage_pos = np.minimum(stage_pos, len(uniq_raw) - 1)
                l_valid = l_valid & (uniq_raw[stage_pos] == raw)
                l_codes = stage_pos
            pos = np.searchsorted(uniq_codes, l_codes)
            pos_c = np.minimum(pos, len(uniq_codes) - 1)
            hit = l_valid & (uniq_codes[pos_c] == l_codes)
            hit_rows = np.flatnonzero(hit)
            if not len(hit_rows):
                continue
            group = pos_c[hit_rows]
            group_counts = counts[group]
            total = int(group_counts.sum())
            left_out = np.repeat(hit_rows, group_counts)
            base = np.repeat(np.cumsum(group_counts) - group_counts,
                             group_counts)
            within = np.arange(total) - base
            right_out = r_valid_idx[
                order[np.repeat(starts[group], group_counts) + within]]
            out_columns = ([col[left_out] for col in batch.columns]
                           + [col[right_out] for col in r_columns])
            out_nulls = ([mask[left_out] if mask is not None else None
                          for mask in batch.nulls]
                         + [mask[right_out] if mask is not None else None
                            for mask in r_nulls])
            yield ColumnBatch(out_columns, total, out_nulls)

    def describe(self) -> dict:
        return {"op": "HashJoin", "keys": len(self.left_key_fns),
                "left": self.left.describe(),
                "right": self.right.describe()}


class NestedLoopJoinOp(PlanOp):
    """Cross product with optional residual predicate (non-equi joins)."""

    def __init__(self, model: CostModel, left: PlanOp, right: PlanOp,
                 layout: Layout, predicate_fn: Callable | None = None,
                 n_terms: int = 0):
        super().__init__(model, layout)
        self.left = left
        self.right = right
        self.predicate_fn = predicate_fn
        self.n_terms = n_terms

    def rows(self) -> Iterator[tuple]:
        model = self.model
        right_rows = list(self.right.rows())
        predicate = self.predicate_fn
        for left_row in self.left.rows():
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate is not None:
                    model.predicate(max(self.n_terms, 1))
                    if predicate(combined) is not True:
                        continue
                yield combined

    def describe(self) -> dict:
        return {"op": "NestedLoopJoin", "terms": self.n_terms,
                "left": self.left.describe(),
                "right": self.right.describe()}


class HashSemiJoinOp(PlanOp):
    """EXISTS / NOT EXISTS with an equality correlation (TPC-H Q4)."""

    def __init__(self, model: CostModel, outer: PlanOp, inner: PlanOp,
                 outer_key_fns: list[Callable], inner_key_fns: list[Callable],
                 negated: bool = False):
        super().__init__(model, outer.layout)
        self.outer = outer
        self.inner = inner
        self.outer_key_fns = outer_key_fns
        self.inner_key_fns = inner_key_fns
        self.negated = negated

    def rows(self) -> Iterator[tuple]:
        model = self.model
        keys: set[tuple] = set()
        for row in self.inner.rows():
            key = tuple(fn(row) for fn in self.inner_key_fns)
            if any(part is None for part in key):
                continue
            model.hash_probe(1)
            keys.add(key)
        for row in self.outer.rows():
            key = tuple(fn(row) for fn in self.outer_key_fns)
            model.hash_probe(1)
            matched = (not any(part is None for part in key)) and key in keys
            if matched != self.negated:
                yield row

    def describe(self) -> dict:
        return {"op": "HashSemiJoin", "negated": self.negated,
                "outer": self.outer.describe(),
                "inner": self.inner.describe()}


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
@dataclass
class AggSpec:
    """One aggregate to compute: func, compiled argument, identity key."""

    func: str                       # sum | avg | min | max | count | count_star
    arg_fn: Optional[Callable]      # None for count(*)
    key: str                        # expr_key of the FuncCall node
    distinct: bool = False


class _Accumulator:
    __slots__ = ("func", "distinct", "total", "count", "extreme", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.total = None
        self.count = 0
        self.extreme = None
        self.seen = set() if distinct else None

    def update(self, value) -> None:
        func = self.func
        if func == "count_star":
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        if func == "count":
            self.count += 1
        elif func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
            self.count += 1
        elif func == "min":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif func == "max":
            if self.extreme is None or value > self.extreme:
                self.extreme = value
        else:
            raise ExecutionError(f"unknown aggregate {func!r}")

    def result(self):
        if self.func in ("count", "count_star"):
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


def _has_nan(column: np.ndarray) -> bool:
    if column.dtype == np.float64:
        return bool(np.isnan(column).any())
    if column.dtype == object:
        return any(isinstance(v, float) and v != v
                   for v in column.tolist())
    return False


def _group_codes(column: np.ndarray, null_mask: Optional[np.ndarray],
                 ) -> tuple[np.ndarray, int]:
    """Batch-local integer codes for one group-key column (NULL is its
    own group, coded last). Returns ``(codes, code_space)``.

    NaN rows each get their *own* code: the scalar path keys groups by
    a Python dict, where every freshly-parsed ``nan`` hashes alike but
    compares unequal — one group per NaN row — while ``np.unique``
    would collapse them."""
    n = len(column)
    if column.dtype != object:
        nan_mask = (np.isnan(column)
                    if column.dtype == np.float64 else None)
        if nan_mask is not None and not nan_mask.any():
            nan_mask = None
        if (null_mask is not None and null_mask.any()) or \
                nan_mask is not None:
            codes = np.zeros(n, dtype=np.int64)
            valid = np.ones(n, dtype=bool)
            if null_mask is not None:
                valid &= ~null_mask
            if nan_mask is not None:
                valid &= ~nan_mask
            uniques, inverse = np.unique(column[valid],
                                         return_inverse=True)
            codes[valid] = inverse
            space = len(uniques)
            if nan_mask is not None:
                nan_rows = np.flatnonzero(nan_mask)
                if null_mask is not None:
                    nan_rows = nan_rows[~null_mask[nan_rows]]
                codes[nan_rows] = space + np.arange(len(nan_rows))
                space += len(nan_rows)
            if null_mask is not None and null_mask.any():
                codes[null_mask] = space
                space += 1
            return codes, max(space, 1)
        _, inverse = np.unique(column, return_inverse=True)
        return inverse.astype(np.int64, copy=False), int(inverse.max(
            initial=-1)) + 2
    mapping: dict = {}
    codes = np.empty(n, dtype=np.int64)
    values = column.tolist()
    explicit = null_mask if null_mask is not None else None
    null_rows = []
    for i, value in enumerate(values):
        if value is None or (explicit is not None and explicit[i]):
            null_rows.append(i)
            codes[i] = -1
        else:
            codes[i] = mapping.setdefault(value, len(mapping))
    if null_rows:
        codes[null_rows] = len(mapping)
    return codes, len(mapping) + 1


#: typed dtypes the array accumulators handle natively; everything else
#: (strings, dates, NULL-holed object columns, bools) takes the scalar
#: per-value loop — still columnar input, never row tuples.
def _acc_kind(values) -> str:
    if isinstance(values, np.ndarray) and values.dtype != object:
        if np.issubdtype(values.dtype, np.integer):
            return "int"
        if np.issubdtype(values.dtype, np.floating):
            return "float"
    return "object"


class _VecAgg:
    """One aggregate's per-group state, fed column slices batch-wise.

    Updates are applied in input order (``np.add.at`` /
    ``np.minimum.at`` are sequential, unbuffered), so totals are
    bit-identical to the scalar accumulators — float summation order
    included. Sum identity is ``-0.0`` so a single ``-0.0`` input
    survives exactly."""

    __slots__ = ("func", "count", "data", "flags", "size", "_abs_bound")

    def __init__(self, func: str):
        self.func = func
        self.count = np.zeros(0, dtype=np.int64)
        self.data: np.ndarray | None = None
        self.flags = np.zeros(0, dtype=bool)
        self.size = 0
        #: upper bound on any int64 sum's magnitude (overflow guard)
        self._abs_bound = 0

    # -- growth --------------------------------------------------------
    def _identity(self, dtype) -> np.ndarray:
        if self.func in ("min", "max"):
            if dtype == np.int64:
                info = np.iinfo(np.int64)
                fill = info.max if self.func == "min" else info.min
                return np.full(1, fill, dtype=np.int64)
            if dtype == np.float64:
                fill = math.inf if self.func == "min" else -math.inf
                return np.full(1, fill, dtype=np.float64)
            return np.empty(1, dtype=object)
        if dtype == np.int64:
            return np.zeros(1, dtype=np.int64)
        if dtype == np.float64:
            return np.full(1, -0.0, dtype=np.float64)
        return np.empty(1, dtype=object)

    def ensure(self, size: int) -> None:
        if size <= self.size:
            return
        grow = size - self.size
        self.count = np.concatenate(
            [self.count, np.zeros(grow, dtype=np.int64)])
        self.flags = np.concatenate(
            [self.flags, np.zeros(grow, dtype=bool)])
        if self.data is not None:
            dtype = (self.data.dtype if self.data.dtype != object
                     else object)
            self.data = np.concatenate(
                [self.data, np.repeat(self._identity(dtype), grow)])
        self.size = size

    def _establish(self, kind: str) -> None:
        dtype = {"int": np.int64, "float": np.float64,
                 "object": object}[kind]
        self.data = np.repeat(self._identity(dtype), self.size)

    def _promote(self, kind: str) -> None:
        """Widen the accumulator storage to admit ``kind`` values,
        preserving exact totals (int64 -> float64 only when the scalar
        path would have mixed int and float anyway)."""
        current = _acc_kind(self.data)
        if current == kind or current == "object":
            return
        if current == "float" and kind == "int":
            return  # float storage admits ints directly
        if current == "int" and kind == "float":
            self.data = self.data.astype(np.float64)
            if self.func in ("min", "max"):
                # Restore exact float sentinels for untouched groups.
                fill = math.inf if self.func == "min" else -math.inf
                self.data[~self.flags] = fill
            return
        promoted = np.repeat(self._identity(object), self.size)
        seen = self.flags if self.func in ("min", "max") else self.count > 0
        rows = np.flatnonzero(seen)
        if len(rows):
            promoted[rows] = [self.data[r].item() for r in rows.tolist()]
        self.data = promoted

    # -- updates -------------------------------------------------------
    def update(self, slots: np.ndarray, values, null_mask) -> None:
        func = self.func
        n = len(slots)
        if func == "count_star":
            np.add.at(self.count, slots, 1)
            return
        if isinstance(values, np.ndarray):
            pass
        else:  # broadcast constant (e.g. sum(1))
            const = np.empty(n, dtype=object)
            const[:] = values
            values = const
        if null_mask is not None and null_mask.any():
            keep = np.flatnonzero(~null_mask)
            slots = slots[keep]
            values = values[keep]
        if values.dtype == object:
            drop = np.fromiter((v is None for v in values.tolist()),
                               dtype=bool, count=len(values))
            if drop.any():
                keep = np.flatnonzero(~drop)
                slots = slots[keep]
                values = values[keep]
        if not len(slots):
            return
        if func == "count":
            np.add.at(self.count, slots, 1)
            return
        kind = _acc_kind(values)
        if self.data is None:
            self._establish(kind)
        else:
            self._promote(kind)
        if _acc_kind(self.data) == "object":
            self._update_object(slots, values)
            return
        if func in ("sum", "avg"):
            if self.data.dtype == np.int64:
                # int64 wraps where the scalar oracle sums exact Python
                # ints: bound the total magnitude and promote to object
                # (arbitrary precision) before overflow is possible.
                peak = int(np.abs(values).max(initial=0))
                if peak < 0:  # abs(int64 min) overflows back negative
                    peak = 1 << 63
                self._abs_bound += peak * len(values)
                if self._abs_bound >= (1 << 62):
                    self._promote("object")
                    self._update_object(slots, values)
                    return
            np.add.at(self.data, slots, values)
            np.add.at(self.count, slots, 1)
            return
        if values.dtype == np.float64 and bool(np.isnan(values).any()):
            # np.minimum/maximum propagate NaN; the scalar accumulator's
            # `<`/`>` comparisons keep the incumbent. Take the scalar
            # loop for the exact first-value-wins NaN semantics.
            self._update_object(slots, values)
            return
        if func == "min":
            np.minimum.at(self.data, slots, values)
            self.flags[slots] = True
        else:
            np.maximum.at(self.data, slots, values)
            self.flags[slots] = True

    def _update_object(self, slots: np.ndarray, values: np.ndarray) -> None:
        func = self.func
        data = self.data
        flags = self.flags
        count = self.count
        for slot, value in zip(slots.tolist(), values.tolist()):
            if func in ("sum", "avg"):
                data[slot] = (value if not count[slot]
                              else data[slot] + value)
                count[slot] += 1
            elif func == "min":
                if not flags[slot] or value < data[slot]:
                    data[slot] = value
                    flags[slot] = True
            else:
                if not flags[slot] or value > data[slot]:
                    data[slot] = value
                    flags[slot] = True

    # -- results -------------------------------------------------------
    def result_column(self, size: int) -> np.ndarray:
        """Per-group results as an array sized ``size`` (object dtype
        whenever any group is NULL)."""
        self.ensure(size)
        func = self.func
        if func in ("count", "count_star"):
            return self.count[:size].copy()
        if self.data is None:
            return np.empty(size, dtype=object)  # all NULL
        if func in ("sum", "avg"):
            seen = self.count[:size] > 0
        else:
            seen = self.flags[:size]
        if func == "avg":
            out = np.empty(size, dtype=object)
            for slot in np.flatnonzero(seen).tolist():
                total = self.data[slot]
                if isinstance(total, np.generic):
                    total = total.item()
                out[slot] = total / int(self.count[slot])
            if bool(seen.all()) and size:
                try:
                    return out.astype(np.float64)
                except (ValueError, TypeError):
                    return out
            return out
        if bool(seen.all()) and self.data.dtype != object:
            return self.data[:size].copy()
        out = np.empty(size, dtype=object)
        for slot in np.flatnonzero(seen).tolist():
            value = self.data[slot]
            out[slot] = value.item() if isinstance(value, np.generic) \
                else value
        return out


class HashAggregateOp(PlanOp):
    """Hash-based grouping (chosen when statistics predict few groups).

    With a batch-capable child and vectorizable group keys / aggregate
    arguments (``group_value_fns`` / ``agg_value_fns`` from the
    planner), the batch path factorizes keys per block, maps them into
    a global group table, and feeds whole column slices to array
    accumulators — per-row tuples are never formed."""

    strategy = "hash"

    def __init__(self, model: CostModel, child: PlanOp,
                 group_fns: list[Callable], aggs: list[AggSpec],
                 layout: Layout,
                 group_value_fns: list | None = None,
                 agg_value_fns: list | None = None):
        super().__init__(model, layout)
        self.child = child
        self.group_fns = group_fns
        self.aggs = aggs
        self.group_value_fns = group_value_fns
        self.agg_value_fns = agg_value_fns

    def _consume(self, ordered_rows: Iterator[tuple] | None = None):
        model = self.model
        rows = ordered_rows if ordered_rows is not None else self.child.rows()
        groups: dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
        n_aggs = len(self.aggs)
        for row in rows:
            key = tuple(fn(row) for fn in self.group_fns)
            model.hash_probe(1)
            entry = groups.get(key)
            if entry is None:
                entry = (key, [_Accumulator(a.func, a.distinct)
                               for a in self.aggs])
                groups[key] = entry
            accumulators = entry[1]
            if n_aggs:
                model.aggregate(n_aggs)
                for spec, acc in zip(self.aggs, accumulators):
                    acc.update(spec.arg_fn(row) if spec.arg_fn else None)
        return groups

    def rows(self) -> Iterator[tuple]:
        groups = self._consume()
        if not groups and not self.group_fns:
            # Global aggregate over empty input: one all-identity row.
            empty = [_Accumulator(a.func, a.distinct) for a in self.aggs]
            yield tuple(acc.result() for acc in empty)
            return
        for key, accumulators in groups.values():
            yield key + tuple(acc.result() for acc in accumulators)

    # -- columnar pull -------------------------------------------------
    @property
    def _vector_ready(self) -> bool:
        if not self.child.supports_batches:
            return False
        if self.group_value_fns is None or self.agg_value_fns is None:
            return False
        if any(fn is None for fn in self.group_value_fns):
            return False
        for spec, fn in zip(self.aggs, self.agg_value_fns):
            if spec.distinct:
                return False
            if spec.func != "count_star" and fn is None:
                return False
        return True

    @property
    def supports_batches(self) -> bool:
        return self._vector_ready

    def batches(self) -> Iterator[ColumnBatch]:
        if not self._vector_ready:
            yield from super().batches()
            return
        yield self._consume_vectorized()

    def _consume_vectorized(self) -> ColumnBatch:
        model = self.model
        n_aggs = len(self.aggs)
        n_keys = len(self.group_value_fns)
        table: dict[tuple, int] = {}
        key_rows: list[tuple] = []
        accs = [_VecAgg(spec.func) for spec in self.aggs]
        total_rows = 0
        for batch in self.child.batches():
            n = batch.nrows
            if not n:
                continue
            total_rows += n
            model.hash_probe(n)
            if n_aggs:
                model.aggregate(n_aggs * n)
            columns = batch.columns
            nulls = _BatchNulls(batch)
            if n_keys:
                slots = self._group_slots(columns, nulls, n, table,
                                          key_rows)
            else:
                if not key_rows:
                    table[()] = 0
                    key_rows.append(())
                slots = np.zeros(n, dtype=np.int64)
            for acc in accs:
                acc.ensure(len(key_rows))
            for spec, fn, acc in zip(self.aggs, self.agg_value_fns, accs):
                if spec.func == "count_star":
                    acc.update(slots, None, None)
                else:
                    values, null_mask = fn(columns, nulls, n)
                    acc.update(slots, values, null_mask)
        return self._emit(key_rows, accs, total_rows)

    def _group_slots(self, columns, nulls, n: int, table: dict,
                     key_rows: list) -> np.ndarray:
        key_cols: list[np.ndarray] = []
        key_nulls: list = []
        combined = np.zeros(n, dtype=np.int64)
        for fn in self.group_value_fns:
            values, null_mask = fn(columns, nulls, n)
            if not isinstance(values, np.ndarray):
                broadcast = np.empty(n, dtype=object)
                broadcast[:] = values
                values = broadcast
            key_cols.append(values)
            key_nulls.append(null_mask)
            codes, space = _group_codes(values, null_mask)
            combined = combined * space + codes
            # Re-compact so the running code space never overflows.
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
        uniques, first_idx, inverse = np.unique(
            combined, return_index=True, return_inverse=True)
        order = np.argsort(first_idx, kind="stable")
        rank = np.empty(len(uniques), dtype=np.int64)
        rank[order] = np.arange(len(uniques))
        local = rank[inverse]
        local_to_global = np.empty(len(uniques), dtype=np.int64)
        for local_id, row in enumerate(first_idx[order].tolist()):
            key = tuple(self._key_value(col, mask, row)
                        for col, mask in zip(key_cols, key_nulls))
            slot = table.get(key)
            if slot is None:
                slot = len(key_rows)
                table[key] = slot
                key_rows.append(key)
            local_to_global[local_id] = slot
        return local_to_global[local]

    @staticmethod
    def _key_value(column: np.ndarray, null_mask, row: int):
        if null_mask is not None and null_mask[row]:
            return None
        return _scalar_of(column, row)

    def _group_order(self, key_rows: list, total_rows: int) -> list[int]:
        """Emission order of the group slots (hash: first-seen)."""
        return list(range(len(key_rows)))

    def _emit(self, key_rows: list, accs: list[_VecAgg],
              total_rows: int) -> ColumnBatch:
        n_keys = len(self.group_value_fns)
        size = len(key_rows)
        if size == 0 and n_keys == 0:
            # Global aggregate over empty input: one all-identity row.
            columns = []
            for spec in self.aggs:
                if spec.func in ("count", "count_star"):
                    columns.append(np.zeros(1, dtype=np.int64))
                else:
                    columns.append(np.empty(1, dtype=object))
            return ColumnBatch(columns, 1)
        order = self._group_order(key_rows, total_rows)
        gather = np.asarray(order, dtype=np.int64)
        columns = []
        for k in range(n_keys):
            col = np.empty(len(order), dtype=object)
            if len(order):
                col[:] = [key_rows[slot][k] for slot in order]
            columns.append(col)
        for acc in accs:
            result = acc.result_column(size)
            columns.append(result[gather] if len(order) else result)
        return ColumnBatch(columns, len(order))

    def describe(self) -> dict:
        return {"op": "Aggregate", "strategy": self.strategy,
                "groups": len(self.group_fns), "aggs": len(self.aggs),
                "vectorized": self._vector_ready,
                "input": self.child.describe()}


class SortAggregateOp(HashAggregateOp):
    """Sort-then-group aggregation — the plan PostgreSQL falls back to
    without statistics (the mechanism behind Figure 12's 3x gap).

    The columnar path reuses the hash machinery (a stable sort by group
    key preserves input order within each group, so accumulation
    sequences — and float totals — are identical), charges the scalar
    path's sort comparisons, and emits groups in sorted key order."""

    strategy = "sort"

    def rows(self) -> Iterator[tuple]:
        materialized = list(self.child.rows())
        n = len(materialized)
        if n > 1:
            self.model.sort_compare(n * max(1.0, math.log2(n)))
            group_fns = self.group_fns
            materialized.sort(key=lambda row: tuple(
                _null_safe(fn(row)) for fn in group_fns))
        groups = self._consume(iter(materialized))
        if not groups and not self.group_fns:
            empty = [_Accumulator(a.func, a.distinct) for a in self.aggs]
            yield tuple(acc.result() for acc in empty)
            return
        for key, accumulators in groups.values():
            yield key + tuple(acc.result() for acc in accumulators)

    def _group_order(self, key_rows: list, total_rows: int) -> list[int]:
        if total_rows > 1:
            self.model.sort_compare(total_rows * max(
                1.0, math.log2(total_rows)))
        return sorted(range(len(key_rows)),
                      key=lambda slot: tuple(_null_safe(value)
                                             for value in key_rows[slot]))


def _null_safe(value):
    """A sort key that tolerates NULLs (None sorts last)."""
    return (value is None, 0 if value is None else value)


class SortOp(PlanOp):
    """ORDER BY: stable multi-key sort with per-key direction.

    The columnar path ranks each key column (``np.unique`` codes, NULL
    ranked last) and applies the same least-significant-key-first
    sequence of stable argsorts the row path applies — ties, NULL
    placement and per-key direction come out identical."""

    def __init__(self, model: CostModel, child: PlanOp,
                 key_fns: list[Callable], descending: list[bool],
                 key_idx: list[int | None] | None = None):
        super().__init__(model, child.layout)
        self.child = child
        self.key_fns = key_fns
        self.descending = descending
        self.key_idx = key_idx

    def rows(self) -> Iterator[tuple]:
        materialized = list(self.child.rows())
        n = len(materialized)
        if n > 1:
            self.model.sort_compare(
                n * max(1.0, math.log2(n)) * len(self.key_fns))
            # Stable sorts applied from the least-significant key backward.
            for fn, desc in reversed(list(zip(self.key_fns,
                                              self.descending))):
                materialized.sort(
                    key=lambda row, fn=fn: _null_safe(fn(row)),
                    reverse=desc)
        yield from materialized

    @property
    def supports_batches(self) -> bool:
        return (self.child.supports_batches and self.key_idx is not None
                and all(i is not None for i in self.key_idx))

    def batches(self) -> Iterator[ColumnBatch]:
        if not self.supports_batches:
            yield from super().batches()
            return
        parts = [b for b in self.child.batches() if b.nrows]
        if not parts:
            return
        lengths = [b.nrows for b in parts]
        width = parts[0].width
        columns = [_concat_columns([b.columns[c] for b in parts])
                   for c in range(width)]
        nulls = [_concat_nulls([b.null_mask(c) for b in parts], lengths)
                 for c in range(width)]
        n = sum(lengths)
        if any(_has_nan(columns[idx]) for idx in self.key_idx):
            # NaN is comparison-undefined: the scalar path's Python
            # sort leaves NaN-adjacent rows wherever timsort's partial
            # comparisons put them. Rank codes cannot replicate that —
            # replay the row path's exact sort over the same sequence.
            yield self._scalar_order(columns, nulls, n, width)
            return
        if n > 1:
            self.model.sort_compare(
                n * max(1.0, math.log2(n)) * len(self.key_fns))
            order = np.arange(n)
            for idx, desc in reversed(list(zip(self.key_idx,
                                               self.descending))):
                codes = _order_codes(columns[idx], nulls[idx])
                keys = codes[order]
                if desc:
                    keys = -keys
                order = order[np.argsort(keys, kind="stable")]
            columns = [col[order] for col in columns]
            nulls = [mask[order] if mask is not None else None
                     for mask in nulls]
        yield ColumnBatch(columns, n, nulls)

    def _scalar_order(self, columns, nulls, n: int,
                      width: int) -> ColumnBatch:
        """The row path's sort, verbatim, over the gathered input —
        the NaN fallback (counted as materialization, because it is)."""
        materialized = list(ColumnBatch(columns, n, nulls).iter_rows())
        self.model.materialize_rows(n)
        if n > 1:
            self.model.sort_compare(
                n * max(1.0, math.log2(n)) * len(self.key_fns))
            for idx, desc in reversed(list(zip(self.key_idx,
                                               self.descending))):
                materialized.sort(
                    key=lambda row, i=idx: _null_safe(row[i]),
                    reverse=desc)
        return ColumnBatch.from_rows(materialized, width)

    def describe(self) -> dict:
        return {"op": "Sort", "keys": len(self.key_fns),
                "input": self.child.describe()}


def _order_codes(column: np.ndarray, null_mask) -> np.ndarray:
    """Ascending rank codes of one sort-key column; NULL ranks after
    every value (matching ``_null_safe``); negation flips direction
    exactly (codes are ints)."""
    n = len(column)
    if column.dtype != object and null_mask is None:
        _, inverse = np.unique(column, return_inverse=True)
        return inverse.astype(np.int64, copy=False)
    codes = np.zeros(n, dtype=np.int64)
    if null_mask is None:
        null_mask = np.fromiter((v is None for v in column.tolist()),
                                dtype=bool, count=n)
    valid = ~null_mask
    if valid.any():
        _, inverse = np.unique(column[valid], return_inverse=True)
        codes[valid] = inverse
        codes[null_mask] = int(inverse.max(initial=-1)) + 1
    return codes


class LimitOp(PlanOp):
    def __init__(self, model: CostModel, child: PlanOp, limit: int):
        super().__init__(model, child.layout)
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[tuple]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.rows():
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        if not self.child.supports_batches:
            # A transposing child would pull whole blocks past the
            # limit; the row path stops the moment the quota is met.
            yield from super().batches()
            return
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.batches():
            if batch.nrows <= remaining:
                yield batch
                remaining -= batch.nrows
            else:
                yield batch.head(remaining)
                remaining = 0
            if remaining == 0:
                return

    def describe(self) -> dict:
        return {"op": "Limit", "n": self.limit,
                "input": self.child.describe()}
