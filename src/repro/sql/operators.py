"""Physical plan operators (Volcano-style generators + columnar pull).

Every operator charges the engine's cost model for the work it does, so
virtual query time reflects plan choices (hash vs sort aggregation, join
order) exactly the way the paper's Figure 12 depends on.

Rows are plain tuples. Each operator carries a *layout*: a dict mapping
the canonical key (:func:`repro.sql.expressions.expr_key`) of the
expression that produced a column to its index in the row.

Operators expose two pull modes. ``rows()`` is the classic Volcano
iterator every operator implements. ``batches()`` pulls
:class:`~repro.sql.batch.ColumnBatch` blocks instead; ``ScanOp`` feeds
it straight from a batch-capable access method, ``FilterOp``/
``ProjectOp``/``LimitOp`` propagate it (amortizing their cost-model
charges over whole blocks), and every other operator inherits a default
that transposes its ``rows()`` — so a batch-consuming parent composes
with any subtree. ``supports_batches`` reports whether a subtree
produces real (scan-fed) batches; the executor uses it to pick the pull
mode per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.simcost.model import CostModel
from repro.sql.batch import ColumnBatch
from repro.sql.scanapi import AccessMethod, ScanPredicate

Layout = dict[str, int]

#: rows per batch when transposing a row iterator into batches
DEFAULT_BATCH_ROWS = 1024


def layout_resolver(layout: Layout):
    """A resolver (see expressions.compile_expr) over a row layout."""
    from repro.sql.expressions import expr_key

    def resolve(node):
        return layout.get(expr_key(node))
    return resolve


class PlanOp:
    """Base class: an iterator of tuples with a layout and a describe()."""

    def __init__(self, model: CostModel, layout: Layout):
        self.model = model
        self.layout = layout

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    @property
    def supports_batches(self) -> bool:
        """True when :meth:`batches` yields real columnar blocks (a
        batch-capable scan feeds this subtree) rather than transposed
        rows."""
        return False

    def batches(self) -> Iterator[ColumnBatch]:
        """Columnar pull with a row-transposing default, so any subtree
        can be consumed batch-wise."""
        width = len(self.layout)
        pending: list[tuple] = []
        for row in self.rows():
            pending.append(row)
            if len(pending) >= DEFAULT_BATCH_ROWS:
                yield ColumnBatch.from_rows(pending, width)
                pending = []
        if pending:
            yield ColumnBatch.from_rows(pending, width)

    def describe(self) -> dict:
        raise NotImplementedError


class ScanOp(PlanOp):
    """Plan leaf: delegates to an access method (raw/heap/external)."""

    def __init__(self, model: CostModel, layout: Layout,
                 access: AccessMethod, needed: Sequence[int],
                 predicate: ScanPredicate | None, table_name: str):
        super().__init__(model, layout)
        self.access = access
        self.needed = list(needed)
        self.predicate = predicate
        self.table_name = table_name

    def rows(self) -> Iterator[tuple]:
        return self.access.scan(self.needed, self.predicate)

    @property
    def supports_batches(self) -> bool:
        return (getattr(self.access, "batch_enabled", False)
                and hasattr(self.access, "scan_batches"))

    def batches(self) -> Iterator[ColumnBatch]:
        if self.supports_batches:
            return self.access.scan_batches(self.needed, self.predicate)
        return super().batches()

    def describe(self) -> dict:
        return {
            "op": "Scan",
            "table": self.table_name,
            "access": type(self.access).__name__,
            "columns": len(self.needed),
            "pushed_predicates": (self.predicate.n_terms
                                  if self.predicate else 0),
        }


class FilterOp(PlanOp):
    """Residual predicate evaluation (join predicates that could not be
    turned into hash keys, HAVING, multi-table conjuncts)."""

    def __init__(self, model: CostModel, child: PlanOp,
                 predicate_fn: Callable, n_terms: int = 1,
                 label: str = "Filter"):
        super().__init__(model, child.layout)
        self.child = child
        self.predicate_fn = predicate_fn
        self.n_terms = n_terms
        self.label = label

    def rows(self) -> Iterator[tuple]:
        predicate = self.predicate_fn
        n_terms = self.n_terms
        model = self.model
        for row in self.child.rows():
            model.predicate(n_terms)
            if predicate(row) is True:
                yield row

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        predicate = self.predicate_fn
        for batch in self.child.batches():
            if not batch.nrows:
                continue
            self.model.predicate(self.n_terms * batch.nrows)
            kept = [row for row in batch.iter_rows()
                    if predicate(row) is True]
            yield ColumnBatch.from_rows(kept, batch.width)

    def describe(self) -> dict:
        return {"op": self.label, "terms": self.n_terms,
                "input": self.child.describe()}


class GateOp(PlanOp):
    """A row-independent predicate evaluated once per execution.

    Used for constant conjuncts whose value is only known at run time
    (``?`` placeholders): if the predicate is not TRUE the child is
    never pulled at all — the per-execution analogue of the planner's
    plan-time constant folding."""

    def __init__(self, model: CostModel, child: PlanOp,
                 predicate_fn: Callable, n_terms: int = 1):
        super().__init__(model, child.layout)
        self.child = child
        self.predicate_fn = predicate_fn
        self.n_terms = n_terms

    def _open(self) -> bool:
        self.model.predicate(self.n_terms)
        return self.predicate_fn(()) is True

    def rows(self) -> Iterator[tuple]:
        if self._open():
            yield from self.child.rows()

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        if self._open():
            yield from self.child.batches()

    def describe(self) -> dict:
        return {"op": "Gate", "terms": self.n_terms,
                "input": self.child.describe()}


class ProjectOp(PlanOp):
    """Computes output expressions; owns the result column names."""

    def __init__(self, model: CostModel, child: PlanOp,
                 fns: list[Callable], layout: Layout, names: list[str]):
        super().__init__(model, layout)
        self.child = child
        self.fns = fns
        self.names = names

    def rows(self) -> Iterator[tuple]:
        fns = self.fns
        width = len(fns)
        model = self.model
        for row in self.child.rows():
            model.tuple_form(width)
            yield tuple(fn(row) for fn in fns)

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        fns = self.fns
        width = len(fns)
        for batch in self.child.batches():
            if batch.nrows:
                self.model.tuple_form(width * batch.nrows)
            columns = [[fn(row) for row in batch.iter_rows()]
                       for fn in fns]
            yield ColumnBatch(columns, batch.nrows)

    def describe(self) -> dict:
        return {"op": "Project", "columns": self.names,
                "input": self.child.describe()}


class HashJoinOp(PlanOp):
    """Equi-join; builds a hash table on the right (smaller) input."""

    def __init__(self, model: CostModel, left: PlanOp, right: PlanOp,
                 left_key_fns: list[Callable], right_key_fns: list[Callable],
                 layout: Layout):
        super().__init__(model, layout)
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns

    def rows(self) -> Iterator[tuple]:
        model = self.model
        table: dict[tuple, list[tuple]] = {}
        for row in self.right.rows():
            key = tuple(fn(row) for fn in self.right_key_fns)
            if any(part is None for part in key):
                continue  # NULL never joins
            model.hash_probe(1)
            table.setdefault(key, []).append(row)
        for row in self.left.rows():
            key = tuple(fn(row) for fn in self.left_key_fns)
            model.hash_probe(1)
            if any(part is None for part in key):
                continue
            for match in table.get(key, ()):
                yield row + match

    def describe(self) -> dict:
        return {"op": "HashJoin", "keys": len(self.left_key_fns),
                "left": self.left.describe(),
                "right": self.right.describe()}


class NestedLoopJoinOp(PlanOp):
    """Cross product with optional residual predicate (non-equi joins)."""

    def __init__(self, model: CostModel, left: PlanOp, right: PlanOp,
                 layout: Layout, predicate_fn: Callable | None = None,
                 n_terms: int = 0):
        super().__init__(model, layout)
        self.left = left
        self.right = right
        self.predicate_fn = predicate_fn
        self.n_terms = n_terms

    def rows(self) -> Iterator[tuple]:
        model = self.model
        right_rows = list(self.right.rows())
        predicate = self.predicate_fn
        for left_row in self.left.rows():
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate is not None:
                    model.predicate(max(self.n_terms, 1))
                    if predicate(combined) is not True:
                        continue
                yield combined

    def describe(self) -> dict:
        return {"op": "NestedLoopJoin", "terms": self.n_terms,
                "left": self.left.describe(),
                "right": self.right.describe()}


class HashSemiJoinOp(PlanOp):
    """EXISTS / NOT EXISTS with an equality correlation (TPC-H Q4)."""

    def __init__(self, model: CostModel, outer: PlanOp, inner: PlanOp,
                 outer_key_fns: list[Callable], inner_key_fns: list[Callable],
                 negated: bool = False):
        super().__init__(model, outer.layout)
        self.outer = outer
        self.inner = inner
        self.outer_key_fns = outer_key_fns
        self.inner_key_fns = inner_key_fns
        self.negated = negated

    def rows(self) -> Iterator[tuple]:
        model = self.model
        keys: set[tuple] = set()
        for row in self.inner.rows():
            key = tuple(fn(row) for fn in self.inner_key_fns)
            if any(part is None for part in key):
                continue
            model.hash_probe(1)
            keys.add(key)
        for row in self.outer.rows():
            key = tuple(fn(row) for fn in self.outer_key_fns)
            model.hash_probe(1)
            matched = (not any(part is None for part in key)) and key in keys
            if matched != self.negated:
                yield row

    def describe(self) -> dict:
        return {"op": "HashSemiJoin", "negated": self.negated,
                "outer": self.outer.describe(),
                "inner": self.inner.describe()}


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
@dataclass
class AggSpec:
    """One aggregate to compute: func, compiled argument, identity key."""

    func: str                       # sum | avg | min | max | count | count_star
    arg_fn: Optional[Callable]      # None for count(*)
    key: str                        # expr_key of the FuncCall node
    distinct: bool = False


class _Accumulator:
    __slots__ = ("func", "distinct", "total", "count", "extreme", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.total = None
        self.count = 0
        self.extreme = None
        self.seen = set() if distinct else None

    def update(self, value) -> None:
        func = self.func
        if func == "count_star":
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        if func == "count":
            self.count += 1
        elif func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
            self.count += 1
        elif func == "min":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif func == "max":
            if self.extreme is None or value > self.extreme:
                self.extreme = value
        else:
            raise ExecutionError(f"unknown aggregate {func!r}")

    def result(self):
        if self.func in ("count", "count_star"):
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


class HashAggregateOp(PlanOp):
    """Hash-based grouping (chosen when statistics predict few groups)."""

    strategy = "hash"

    def __init__(self, model: CostModel, child: PlanOp,
                 group_fns: list[Callable], aggs: list[AggSpec],
                 layout: Layout):
        super().__init__(model, layout)
        self.child = child
        self.group_fns = group_fns
        self.aggs = aggs

    def _consume(self, ordered_rows: Iterator[tuple] | None = None):
        model = self.model
        rows = ordered_rows if ordered_rows is not None else self.child.rows()
        groups: dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
        n_aggs = len(self.aggs)
        for row in rows:
            key = tuple(fn(row) for fn in self.group_fns)
            model.hash_probe(1)
            entry = groups.get(key)
            if entry is None:
                entry = (key, [_Accumulator(a.func, a.distinct)
                               for a in self.aggs])
                groups[key] = entry
            accumulators = entry[1]
            if n_aggs:
                model.aggregate(n_aggs)
                for spec, acc in zip(self.aggs, accumulators):
                    acc.update(spec.arg_fn(row) if spec.arg_fn else None)
        return groups

    def rows(self) -> Iterator[tuple]:
        groups = self._consume()
        if not groups and not self.group_fns:
            # Global aggregate over empty input: one all-identity row.
            empty = [_Accumulator(a.func, a.distinct) for a in self.aggs]
            yield tuple(acc.result() for acc in empty)
            return
        for key, accumulators in groups.values():
            yield key + tuple(acc.result() for acc in accumulators)

    def describe(self) -> dict:
        return {"op": "Aggregate", "strategy": self.strategy,
                "groups": len(self.group_fns), "aggs": len(self.aggs),
                "input": self.child.describe()}


class SortAggregateOp(HashAggregateOp):
    """Sort-then-group aggregation — the plan PostgreSQL falls back to
    without statistics (the mechanism behind Figure 12's 3x gap)."""

    strategy = "sort"

    def rows(self) -> Iterator[tuple]:
        materialized = list(self.child.rows())
        n = len(materialized)
        if n > 1:
            self.model.sort_compare(n * max(1.0, math.log2(n)))
            group_fns = self.group_fns
            materialized.sort(key=lambda row: tuple(
                _null_safe(fn(row)) for fn in group_fns))
        groups = self._consume(iter(materialized))
        if not groups and not self.group_fns:
            empty = [_Accumulator(a.func, a.distinct) for a in self.aggs]
            yield tuple(acc.result() for acc in empty)
            return
        for key, accumulators in groups.values():
            yield key + tuple(acc.result() for acc in accumulators)


def _null_safe(value):
    """A sort key that tolerates NULLs (None sorts last)."""
    return (value is None, 0 if value is None else value)


class SortOp(PlanOp):
    """ORDER BY: stable multi-key sort with per-key direction."""

    def __init__(self, model: CostModel, child: PlanOp,
                 key_fns: list[Callable], descending: list[bool]):
        super().__init__(model, child.layout)
        self.child = child
        self.key_fns = key_fns
        self.descending = descending

    def rows(self) -> Iterator[tuple]:
        materialized = list(self.child.rows())
        n = len(materialized)
        if n > 1:
            self.model.sort_compare(
                n * max(1.0, math.log2(n)) * len(self.key_fns))
            # Stable sorts applied from the least-significant key backward.
            for fn, desc in reversed(list(zip(self.key_fns,
                                              self.descending))):
                materialized.sort(
                    key=lambda row, fn=fn: _null_safe(fn(row)),
                    reverse=desc)
        yield from materialized

    def describe(self) -> dict:
        return {"op": "Sort", "keys": len(self.key_fns),
                "input": self.child.describe()}


class LimitOp(PlanOp):
    def __init__(self, model: CostModel, child: PlanOp, limit: int):
        super().__init__(model, child.layout)
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[tuple]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.rows():
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    @property
    def supports_batches(self) -> bool:
        return self.child.supports_batches

    def batches(self) -> Iterator[ColumnBatch]:
        if not self.child.supports_batches:
            # A transposing child would pull whole blocks past the
            # limit; the row path stops the moment the quota is met.
            yield from super().batches()
            return
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.batches():
            if batch.nrows <= remaining:
                yield batch
                remaining -= batch.nrows
            else:
                yield ColumnBatch([column[:remaining]
                                   for column in batch.columns],
                                  remaining)
                remaining = 0
            if remaining == 0:
                return

    def describe(self) -> dict:
        return {"op": "Limit", "n": self.limit,
                "input": self.child.describe()}
