"""Optimizer statistics.

The same structures serve both worlds the paper compares: loaded engines
build them at load time (ANALYZE), PostgresRaw builds them adaptively
during scans (§4.4) — only for attributes queries have actually touched.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

_DEFAULT_EQ_SELECTIVITY = 0.005
_DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
_MCV_KEEP = 10
_HISTOGRAM_BUCKETS = 10


def _is_orderable(value) -> bool:
    return isinstance(value, (int, float, datetime.date, str)) and not isinstance(
        value, bool)


@dataclass
class ColumnStats:
    """Statistics for one column, built from a sample.

    ``n_distinct`` uses the Haas–Stokes "duj1" estimator PostgreSQL also
    uses: d = n*D / (n - f1 + f1*n/N), where D = sample distincts, f1 =
    values seen exactly once, n = sample size, N = row count.
    """

    name: str
    null_frac: float = 0.0
    n_distinct: float = 1.0
    min_value: object | None = None
    max_value: object | None = None
    #: most common values: list of (value, fraction-of-rows)
    mcv: list[tuple[object, float]] = field(default_factory=list)
    #: equi-depth histogram bounds (ascending), len = buckets + 1
    histogram: list = field(default_factory=list)
    #: Exact zone-map bounds (§4.4 at file granularity): unlike
    #: ``min_value``/``max_value`` — sample extremes, fine for
    #: selectivity, unsound for pruning — these are tracked over
    #: *every* value the collecting scan observed. ``observed_rows``
    #: counts how many rows fed the tracker (incl. nulls) so a caller
    #: can tell whether the bounds cover the whole relation;
    #: ``observed_min``/``observed_max`` stay None when every observed
    #: value was NULL or the values were not orderable.
    observed_min: object | None = None
    observed_max: object | None = None
    observed_rows: int = 0
    observed_nulls: int = 0

    # -- selectivity estimation --------------------------------------------
    def selectivity_eq(self, value) -> float:
        for mcv_value, frac in self.mcv:
            if mcv_value == value:
                return frac
        mcv_total = sum(frac for _, frac in self.mcv)
        rest_distinct = max(self.n_distinct - len(self.mcv), 1.0)
        return max(0.0, (1.0 - mcv_total - self.null_frac)) / rest_distinct

    def selectivity_range(self, op: str, value) -> float:
        """Selectivity of ``col <op> value`` for ``op`` in <,<=,>,>=."""
        if (self.min_value is None or self.max_value is None
                or not _is_orderable(value)):
            return _DEFAULT_RANGE_SELECTIVITY
        lo, hi = self.min_value, self.max_value
        try:
            if op in ("<", "<="):
                if value <= lo:
                    return 0.0
                if value >= hi:
                    return 1.0
            else:
                if value >= hi:
                    return 0.0
                if value <= lo:
                    return 1.0
            frac_below = self._fraction_below(value)
        except TypeError:
            return _DEFAULT_RANGE_SELECTIVITY
        if op in ("<", "<="):
            return min(1.0, max(0.0, frac_below))
        return min(1.0, max(0.0, 1.0 - frac_below))

    def _fraction_below(self, value) -> float:
        if self.histogram and len(self.histogram) >= 2:
            bounds = self.histogram
            buckets = len(bounds) - 1
            if value <= bounds[0]:
                return 0.0
            if value >= bounds[-1]:
                return 1.0
            for i in range(buckets):
                if bounds[i] <= value <= bounds[i + 1]:
                    width = _numeric_gap(bounds[i], bounds[i + 1])
                    into = _numeric_gap(bounds[i], value)
                    frac_in_bucket = into / width if width > 0 else 0.5
                    return (i + frac_in_bucket) / buckets
            return 1.0
        width = _numeric_gap(self.min_value, self.max_value)
        if width <= 0:
            return 0.5
        return _numeric_gap(self.min_value, value) / width

    def merge_sample(self, sample: list, row_count: int,
                     null_count: int, seen_count: int) -> None:
        """Recompute this column's stats from a fresh sample.

        ``seen_count`` is how many values (incl. nulls) the sample was
        drawn from; ``row_count`` the table's total rows.
        """
        self.null_frac = null_count / seen_count if seen_count else 0.0
        non_null = [v for v in sample if v is not None]
        if not non_null:
            self.n_distinct = 0.0
            return
        orderable = all(_is_orderable(v) for v in non_null)
        if orderable:
            ordered = sorted(non_null)
            self.min_value = ordered[0]
            self.max_value = ordered[-1]
        else:
            ordered = non_null
        counts: dict = {}
        for v in non_null:
            counts[v] = counts.get(v, 0) + 1
        sample_distinct = len(counts)
        f1 = sum(1 for c in counts.values() if c == 1)
        n = len(non_null)
        total = max(row_count, n)
        if f1 == n:
            # Every sampled value unique: assume the column scales with N.
            self.n_distinct = float(total)
        else:
            denom = n - f1 + f1 * n / total
            self.n_distinct = min(float(total),
                                  max(1.0, n * sample_distinct / denom))
        common = sorted(counts.items(), key=lambda kv: -kv[1])[:_MCV_KEEP]
        self.mcv = [(v, c / n) for v, c in common if c > 1]
        if orderable and sample_distinct > _HISTOGRAM_BUCKETS:
            self.histogram = [
                ordered[min(len(ordered) - 1,
                            round(i * (len(ordered) - 1) / _HISTOGRAM_BUCKETS))]
                for i in range(_HISTOGRAM_BUCKETS + 1)
            ]
        else:
            self.histogram = []


def _numeric_gap(lo, hi) -> float:
    """Distance between two orderable values, for interpolation."""
    if isinstance(lo, datetime.date) and isinstance(hi, datetime.date):
        return float((hi - lo).days)
    if isinstance(lo, str) or isinstance(hi, str):
        # Compare on the first few bytes, like PostgreSQL's convert_string.
        return float(_string_rank(hi) - _string_rank(lo))
    return float(hi) - float(lo)


def _string_rank(s: str) -> float:
    rank = 0.0
    for i, ch in enumerate(s[:6]):
        rank += ord(ch) / (256.0 ** (i + 1))
    return rank


@dataclass
class TableStats:
    """Statistics for one table: row count + per-column stats.

    For PostgresRaw, ``columns`` only contains attributes some query has
    requested so far — "statistics are incrementally augmented to
    represent bigger subsets of the data" (§4.4).

    ``version`` counts mutations (column stats installed or row count
    learned). Because PostgresRaw collects statistics *during* scans —
    i.e. after a prepared statement froze its plan — the catalog
    aggregates these versions into a stats epoch that prepared
    statements watch to know when a cached plan went stale.
    """

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    version: int = 0

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())

    def set_column(self, stats: ColumnStats) -> None:
        self.columns[stats.name.lower()] = stats
        self.version += 1

    def set_row_count(self, row_count: int) -> None:
        """Install the (possibly newly learned) row count, bumping the
        version only when it actually changed."""
        if row_count != self.row_count:
            self.row_count = row_count
            self.version += 1

    def has_column(self, name: str) -> bool:
        return name.lower() in self.columns
