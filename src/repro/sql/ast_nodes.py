"""AST node definitions for the SQL subset.

The subset covers everything the paper's workloads need: select-project-
aggregate queries with multi-table (comma or JOIN ... ON) joins, WHERE
with AND/OR/NOT, comparisons, BETWEEN, IN, LIKE, IS NULL, correlated
EXISTS; GROUP BY, HAVING, ORDER BY, LIMIT; CASE WHEN; arithmetic; DATE
and INTERVAL literals with date arithmetic (TPC-H Q1..Q19 subset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

Expr = Union[
    "Literal", "ColumnRef", "Star", "BinaryOp", "UnaryOp", "FuncCall",
    "CaseExpr", "LikeExpr", "InList", "Between", "IsNull", "Exists",
    "IntervalLiteral", "Parameter",
]

AGGREGATE_FUNCTIONS = {"sum", "avg", "min", "max", "count"}


@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | datetime.date | bool | None


class ParamBinding:
    """The mutable parameter slots of one parsed statement.

    Every ``?`` placeholder in a statement shares the statement's single
    binding; :class:`Parameter` nodes compile to closures that read
    their slot at evaluation time, so a cached physical plan re-binds by
    mutating this object — no re-parse, no re-plan.
    """

    __slots__ = ("values",)

    def __init__(self):
        self.values: tuple | None = None  # None = not bound yet

    def bind(self, values) -> None:
        self.values = tuple(values)

    def __repr__(self) -> str:  # stable: feeds expr_key via Select repr
        return "ParamBinding()"


@dataclass(frozen=True)
class Parameter:
    """A ``?`` placeholder; ``index`` is its 0-based position in the
    statement. The binding is identity-only state (excluded from
    equality/repr) linking the node to its statement's slots."""

    index: int
    binding: ParamBinding = field(compare=False, repr=False, hash=False,
                                  default=None)


@dataclass(frozen=True)
class IntervalLiteral:
    amount: int
    unit: str  # 'day' | 'month' | 'year'


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star:
    """``*`` — only valid inside COUNT(*) or as the lone select item."""


@dataclass(frozen=True)
class BinaryOp:
    op: str  # + - * / = <> < <= > >= AND OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp:
    op: str  # NOT, -
    operand: Expr


@dataclass(frozen=True)
class FuncCall:
    name: str  # lower-cased
    args: tuple
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS


@dataclass(frozen=True)
class CaseExpr:
    whens: tuple  # tuple[(condition, result), ...]
    else_result: Optional[Expr] = None


@dataclass(frozen=True)
class LikeExpr:
    operand: Expr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: Expr
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Exists:
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select:
    items: list[SelectItem] = field(default_factory=list)
    tables: list[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    #: number of ``?`` placeholders and the binding they share (set by
    #: the parser on the statement's top-level Select).
    param_count: int = 0
    binding: Optional[ParamBinding] = None


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN <select>``: plan the query, emit the plan, run nothing."""

    select: "Select"

    @property
    def param_count(self) -> int:
        return self.select.param_count

    @property
    def binding(self) -> Optional[ParamBinding]:
        return self.select.binding


# ---------------------------------------------------------------------------
# DDL statements (CREATE/DROP/SHOW/DESCRIBE) — executed against the
# catalog through the format-adapter registry, never planned.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnDef:
    """One declared column of ``CREATE TABLE``: the parser resolves the
    SQL type name (with args) to a :class:`~repro.sql.datatypes.
    DataType` eagerly so bad types fail with a token position."""

    name: str
    dtype: object  # DataType
    nullable: bool = True


@dataclass
class CreateTable:
    """``CREATE [EXTERNAL] TABLE t (cols...) USING fmt OPTIONS (...)``.

    ``format`` is None when ``USING`` was omitted (the registry sniffs
    it from the path's extension). ``schema`` is the programmatic
    channel used by the deprecated ``register_*`` shims — a prebuilt
    :class:`~repro.sql.catalog.Schema` that bypasses ``columns``.
    """

    name: str
    columns: tuple = ()
    format: Optional[str] = None
    options: dict = field(default_factory=dict)
    external: bool = False
    schema: object | None = None
    #: ``IF NOT EXISTS``: an existing name is a no-op, not an error
    if_not_exists: bool = False
    #: ``CREATE TABLE t AS SELECT ...`` — the materializing query; when
    #: set, ``columns``/``format``/``options`` stay empty and the table
    #: is loaded through the heap adapter from the query's result.
    as_select: Optional["Select"] = None


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE t``: unregister + tear down auxiliary structures."""

    name: str
    #: ``IF EXISTS``: a missing name is a no-op, not an error
    if_exists: bool = False


@dataclass(frozen=True)
class AlterTableRename:
    """``ALTER TABLE t RENAME TO u``: re-key the catalog entry."""

    name: str
    new_name: str
    #: ``IF EXISTS``: a missing name is a no-op, not an error
    if_exists: bool = False


@dataclass(frozen=True)
class CreateRollup:
    """``CREATE ROLLUP r ON t (dims...) AGG (aggs...)``.

    ``dims`` are column names; ``aggs`` are the parsed aggregate
    :class:`FuncCall` expressions (``sum(x)``, ``count(*)``, ...)."""

    name: str
    table: str
    dims: tuple  # tuple[str, ...]
    aggs: tuple  # tuple[FuncCall, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropRollup:
    """``DROP ROLLUP r``: unregister + drop the materialized heap."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class ShowTables:
    """``SHOW TABLES``: one row per registered table."""


@dataclass(frozen=True)
class DescribeTable:
    """``DESCRIBE t``: one row per column of the table's schema."""

    name: str


#: every DDL statement kind the dispatcher recognizes
DDL_NODES = (CreateTable, DropTable, ShowTables, DescribeTable,
             AlterTableRename, CreateRollup, DropRollup)

Statement = Union["Select", "Explain", CreateTable, DropTable,
                  ShowTables, DescribeTable, AlterTableRename,
                  CreateRollup, DropRollup]


def is_ddl(statement) -> bool:
    """True for catalog statements (everything but SELECT/EXPLAIN)."""
    return isinstance(statement, DDL_NODES)
