"""AST node definitions for the SQL subset.

The subset covers everything the paper's workloads need: select-project-
aggregate queries with multi-table (comma or JOIN ... ON) joins, WHERE
with AND/OR/NOT, comparisons, BETWEEN, IN, LIKE, IS NULL, correlated
EXISTS; GROUP BY, HAVING, ORDER BY, LIMIT; CASE WHEN; arithmetic; DATE
and INTERVAL literals with date arithmetic (TPC-H Q1..Q19 subset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

Expr = Union[
    "Literal", "ColumnRef", "Star", "BinaryOp", "UnaryOp", "FuncCall",
    "CaseExpr", "LikeExpr", "InList", "Between", "IsNull", "Exists",
    "IntervalLiteral",
]

AGGREGATE_FUNCTIONS = {"sum", "avg", "min", "max", "count"}


@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | datetime.date | bool | None


@dataclass(frozen=True)
class IntervalLiteral:
    amount: int
    unit: str  # 'day' | 'month' | 'year'


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star:
    """``*`` — only valid inside COUNT(*) or as the lone select item."""


@dataclass(frozen=True)
class BinaryOp:
    op: str  # + - * / = <> < <= > >= AND OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp:
    op: str  # NOT, -
    operand: Expr


@dataclass(frozen=True)
class FuncCall:
    name: str  # lower-cased
    args: tuple
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS


@dataclass(frozen=True)
class CaseExpr:
    whens: tuple  # tuple[(condition, result), ...]
    else_result: Optional[Expr] = None


@dataclass(frozen=True)
class LikeExpr:
    operand: Expr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: Expr
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Exists:
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select:
    items: list[SelectItem] = field(default_factory=list)
    tables: list[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
