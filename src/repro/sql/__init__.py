"""SQL substrate: lexer, parser, catalog, planner, optimizer, executor.

This package is the "rest of PostgreSQL" the paper keeps unchanged: a
declarative front end and a Volcano-style executor. Engines differ only
in the access method bound at plan leaves (raw scan, heap scan, external
scan), exactly as PostgresRaw overrides PostgreSQL's scan operator.
"""

from repro.sql.catalog import Catalog, Column, Schema, TableInfo, TableKind
from repro.sql.datatypes import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    DataType,
    Interval,
    char,
    decimal,
    type_from_sql,
    varchar,
)
from repro.sql.executor import QueryResult

__all__ = [
    "Catalog",
    "Schema",
    "Column",
    "TableInfo",
    "TableKind",
    "DataType",
    "Interval",
    "INTEGER",
    "FLOAT",
    "DATE",
    "BOOLEAN",
    "varchar",
    "char",
    "decimal",
    "type_from_sql",
    "QueryResult",
]
