"""SQL data types and conversion.

Types carry three responsibilities:

* ``parse`` — string -> Python value (the expensive conversion the paper's
  *selective parsing* avoids; the scan charges ``convert_<family>`` for it),
* ``format`` — Python value -> string (CSV generation, result display),
* ``family`` — the cost/type family used by the cost model and the record
  codec (``int``, ``float``, ``str``, ``date``, ``bool``).

Dates are stored as :class:`datetime.date`; DECIMAL maps to float (ample
for the paper's workloads — TPC-H aggregates are compared by shape, and
differential tests compare engines against each other, not against exact
decimal arithmetic).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.errors import TypeError_

_EPOCH = datetime.date(1970, 1, 1)


@dataclass(frozen=True)
class Interval:
    """A SQL interval (``INTERVAL '3' MONTH``), for date arithmetic."""

    days: int = 0
    months: int = 0
    years: int = 0

    def add_to(self, value: datetime.date) -> datetime.date:
        year, month = value.year + self.years, value.month + self.months
        year += (month - 1) // 12
        month = (month - 1) % 12 + 1
        day = min(value.day, _days_in_month(year, month))
        return datetime.date(year, month, day) + datetime.timedelta(self.days)

    def subtract_from(self, value: datetime.date) -> datetime.date:
        inverse = Interval(-self.days, -self.months, -self.years)
        return inverse.add_to(value)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (datetime.date(year, month + 1, 1) - datetime.timedelta(1)).day


class DataType:
    """Base class; concrete types below. Types are value objects."""

    name: str = "?"
    family: str = "?"

    #: bytes used by the record codec (None => variable length)
    fixed_width: int | None = None

    def parse(self, text: str):
        """Convert raw text to a Python value (NULL handled by callers)."""
        raise NotImplementedError

    def format(self, value) -> str:
        """Render a Python value as raw text."""
        return str(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, DataType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


class IntegerType(DataType):
    name = "INTEGER"
    family = "int"
    fixed_width = 8

    def parse(self, text: str) -> int:
        try:
            return int(text)
        except ValueError as exc:
            raise TypeError_(f"invalid integer literal: {text!r}") from exc


class BigIntType(IntegerType):
    name = "BIGINT"


class FloatType(DataType):
    name = "FLOAT"
    family = "float"
    fixed_width = 8

    def parse(self, text: str) -> float:
        try:
            return float(text)
        except ValueError as exc:
            raise TypeError_(f"invalid float literal: {text!r}") from exc

    def format(self, value) -> str:
        return repr(float(value))


class DecimalType(FloatType):
    """DECIMAL(precision, scale); stored as float (see module docstring)."""

    def __init__(self, precision: int = 15, scale: int = 2):
        self.precision = precision
        self.scale = scale

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"DECIMAL({self.precision},{self.scale})"

    def format(self, value) -> str:
        return f"{float(value):.{self.scale}f}"


class VarcharType(DataType):
    family = "str"
    fixed_width = None

    def __init__(self, width: int | None = None):
        self.width = width

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"VARCHAR({self.width})" if self.width else "VARCHAR"

    def parse(self, text: str) -> str:
        return text


class CharType(VarcharType):
    def __init__(self, width: int = 1):
        super().__init__(width)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"CHAR({self.width})"

    def parse(self, text: str) -> str:
        # SQL CHAR comparison semantics ignore trailing pad spaces.
        return text.rstrip(" ")


class DateType(DataType):
    name = "DATE"
    family = "date"
    fixed_width = 4

    def parse(self, text: str) -> datetime.date:
        try:
            year, month, day = text.strip().split("-")
            return datetime.date(int(year), int(month), int(day))
        except (ValueError, AttributeError) as exc:
            raise TypeError_(f"invalid date literal: {text!r}") from exc

    def format(self, value) -> str:
        return value.isoformat()


class BooleanType(DataType):
    name = "BOOLEAN"
    family = "bool"
    fixed_width = 1

    _TRUE = {"t", "true", "1", "yes"}
    _FALSE = {"f", "false", "0", "no"}

    def parse(self, text: str) -> bool:
        lowered = text.strip().lower()
        if lowered in self._TRUE:
            return True
        if lowered in self._FALSE:
            return False
        raise TypeError_(f"invalid boolean literal: {text!r}")

    def format(self, value) -> str:
        return "true" if value else "false"


#: Singleton instances for the parameterless types.
INTEGER = IntegerType()
BIGINT = BigIntType()
FLOAT = FloatType()
DATE = DateType()
BOOLEAN = BooleanType()


def varchar(width: int | None = None) -> VarcharType:
    """A VARCHAR type of the given width (None = unbounded)."""
    return VarcharType(width)


def char(width: int = 1) -> CharType:
    """A blank-padded CHAR type of the given width."""
    return CharType(width)


def decimal(precision: int = 15, scale: int = 2) -> DecimalType:
    """A DECIMAL type (stored as float; see module docstring)."""
    return DecimalType(precision, scale)


_SIMPLE_TYPES = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": BIGINT,
    "FLOAT": FLOAT,
    "DOUBLE": FLOAT,
    "REAL": FLOAT,
    "DATE": DATE,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "TEXT": VarcharType(None),
}


def type_from_sql(name: str, args: tuple[int, ...] = ()) -> DataType:
    """Resolve a SQL type name (+ optional args) to a :class:`DataType`.

    >>> type_from_sql("DECIMAL", (15, 2)).name
    'DECIMAL(15,2)'
    """
    upper = name.upper()
    if upper in _SIMPLE_TYPES:
        return _SIMPLE_TYPES[upper]
    if upper == "VARCHAR":
        return varchar(args[0] if args else None)
    if upper == "CHAR":
        return char(args[0] if args else 1)
    if upper in ("DECIMAL", "NUMERIC"):
        if len(args) >= 2:
            return decimal(args[0], args[1])
        if len(args) == 1:
            return decimal(args[0], 0)
        return decimal()
    raise TypeError_(f"unknown SQL type: {name!r}")
