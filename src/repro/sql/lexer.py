"""SQL lexer: source text -> token stream."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "having", "limit",
    "and", "or", "not", "as", "asc", "desc", "between", "in", "like",
    "is", "null", "exists", "case", "when", "then", "else", "end",
    "date", "interval", "day", "month", "year", "true", "false",
    "join", "inner", "on", "distinct", "explain",
    # DDL statements (CREATE/DROP/SHOW/DESCRIBE/ALTER)
    "create", "external", "table", "using", "options", "drop", "show",
    "tables", "describe", "if", "alter", "rename", "to",
    # rollup DDL (CREATE ROLLUP ... ON t (dims) AGG (...))
    "rollup", "agg",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "||")
_PUNCT = "(),.;?"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`LexerError` on bad characters."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = i + 1
            parts: list[str] = []
            while True:
                nxt = sql.find("'", end)
                if nxt < 0:
                    raise LexerError("unterminated string literal", i)
                if nxt + 1 < n and sql[nxt + 1] == "'":
                    parts.append(sql[end:nxt] + "'")
                    end = nxt + 2
                    continue
                parts.append(sql[end:nxt])
                break
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = nxt + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                        sql[i + 1].isdigit() or sql[i + 1] in "+-"):
                    seen_exp = True
                    i += 2
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                canonical = "<>" if op == "!=" else op
                tokens.append(Token(TokenType.OPERATOR, canonical, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
