"""Expression analysis and compilation.

Expressions compile to plain Python closures over a row tuple. The
*resolver* protocol makes one mechanism serve every operator: a resolver
maps an AST node to the index where its value already sits in the input
row (plain columns below a scan; grouping keys and aggregate results
above an aggregation). Anything the resolver does not resolve is
computed structurally.

SQL three-valued logic: comparisons/arithmetic with NULL yield None;
AND/OR use Kleene logic; WHERE keeps a row only when the predicate is
exactly True.
"""

from __future__ import annotations

import datetime
import re
from typing import Callable, Iterable, Optional

from repro.errors import BindError, ExecutionError, PlanningError
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InList,
    IntervalLiteral,
    IsNull,
    LikeExpr,
    Literal,
    Parameter,
    Star,
    UnaryOp,
)
from repro.sql.datatypes import Interval

Resolver = Callable[[Expr], Optional[int]]


def expr_key(expr: Expr) -> str:
    """A canonical hashable key identifying structurally equal
    expressions (used to match SELECT items to GROUP BY keys and to
    deduplicate aggregates)."""
    return repr(expr)


def collect_column_refs(expr: Expr | None) -> list[ColumnRef]:
    """Every ColumnRef in ``expr``, depth-first, deduplicated, in order.

    Columns referenced only inside EXISTS subqueries are *not* included:
    the subquery plan resolves its own names (correlation is handled by
    the planner separately).
    """
    out: list[ColumnRef] = []
    seen: set[str] = set()

    def walk(node) -> None:
        if isinstance(node, ColumnRef):
            key = expr_key(node)
            if key not in seen:
                seen.add(key)
                out.append(node)
            return
        for child in _children(node):
            walk(child)

    if expr is not None:
        walk(expr)
    return out


def collect_aggregates(expr: Expr | None) -> list[FuncCall]:
    """Aggregate calls in ``expr`` (deduplicated by structure)."""
    out: list[FuncCall] = []
    seen: set[str] = set()

    def walk(node) -> None:
        if isinstance(node, FuncCall) and node.is_aggregate:
            key = expr_key(node)
            if key not in seen:
                seen.add(key)
                out.append(node)
            return  # no nested aggregates
        for child in _children(node):
            walk(child)

    if expr is not None:
        walk(expr)
    return out


def contains_aggregate(expr: Expr | None) -> bool:
    return bool(collect_aggregates(expr))


def contains_parameter(expr: Expr | None) -> bool:
    """Whether ``expr`` holds any ``?`` placeholder (its value is only
    known at execution time, never at plan time)."""
    def walk(node) -> bool:
        if isinstance(node, Parameter):
            return True
        return any(walk(child) for child in _children(node))

    return expr is not None and walk(expr)


def _children(node) -> Iterable:
    if isinstance(node, BinaryOp):
        return (node.left, node.right)
    if isinstance(node, UnaryOp):
        return (node.operand,)
    if isinstance(node, FuncCall):
        return tuple(a for a in node.args if not isinstance(a, Star))
    if isinstance(node, CaseExpr):
        children = []
        for condition, result in node.whens:
            children.extend((condition, result))
        if node.else_result is not None:
            children.append(node.else_result)
        return children
    if isinstance(node, LikeExpr):
        return (node.operand,)
    if isinstance(node, InList):
        return (node.operand, *node.items)
    if isinstance(node, Between):
        return (node.operand, node.low, node.high)
    if isinstance(node, IsNull):
        return (node.operand,)
    if isinstance(node, Exists):
        return ()  # subquery columns are resolved by the subplan
    return ()


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild a predicate from conjuncts (inverse of split_conjuncts)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("and", result,
                                                          conjunct)
    return result


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_to_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _interval_value(node: IntervalLiteral) -> Interval:
    if node.unit == "day":
        return Interval(days=node.amount)
    if node.unit == "month":
        return Interval(months=node.amount)
    return Interval(years=node.amount)


def _arith(op: str, left, right):
    if left is None or right is None:
        return None
    if isinstance(left, datetime.date) and isinstance(right, Interval):
        return right.add_to(left) if op == "+" else right.subtract_from(left)
    if isinstance(right, datetime.date) and isinstance(left, Interval):
        if op == "+":
            return left.add_to(right)
        raise ExecutionError("cannot subtract a date from an interval")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left, right):
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def compile_expr(expr: Expr, resolver: Resolver) -> Callable:
    """Compile ``expr`` into ``fn(row) -> value``.

    Raises :class:`PlanningError` for column references the resolver
    cannot place and for aggregates that were not pre-computed.
    """
    resolved = resolver(expr)
    if resolved is not None:
        index = resolved
        return lambda row: row[index]

    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Parameter):
        binding = expr.binding
        index = expr.index

        def _param(row):
            values = binding.values if binding is not None else None
            if values is None or index >= len(values):
                raise BindError(
                    f"parameter {index + 1} is not bound (execute the "
                    "statement with a parameter sequence)")
            return values[index]
        return _param
    if isinstance(expr, IntervalLiteral):
        interval = _interval_value(expr)
        return lambda row: interval
    if isinstance(expr, ColumnRef):
        raise PlanningError(f"unresolved column: {expr.display}")
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        raise PlanningError(
            f"aggregate {expr.name}() used outside an aggregation context")

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, resolver)
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, resolver)
        if expr.op == "not":
            def _not(row):
                value = operand(row)
                return None if value is None else (not value)
            return _not
        return lambda row: None if operand(row) is None else -operand(row)
    if isinstance(expr, CaseExpr):
        compiled_whens = [(compile_expr(c, resolver), compile_expr(r, resolver))
                          for c, r in expr.whens]
        compiled_else = (compile_expr(expr.else_result, resolver)
                         if expr.else_result is not None else None)

        def _case(row):
            for condition, result in compiled_whens:
                if condition(row) is True:
                    return result(row)
            return compiled_else(row) if compiled_else else None
        return _case
    if isinstance(expr, LikeExpr):
        operand = compile_expr(expr.operand, resolver)
        regex = like_to_regex(expr.pattern)
        negated = expr.negated

        def _like(row):
            value = operand(row)
            if value is None:
                return None
            matched = bool(regex.match(value))
            return (not matched) if negated else matched
        return _like
    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, resolver)
        items = [compile_expr(item, resolver) for item in expr.items]
        negated = expr.negated

        def _in(row):
            value = operand(row)
            if value is None:
                return None
            contained = any(item(row) == value for item in items)
            return (not contained) if negated else contained
        return _in
    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, resolver)
        low = compile_expr(expr.low, resolver)
        high = compile_expr(expr.high, resolver)
        negated = expr.negated

        def _between(row):
            value = operand(row)
            lo = low(row)
            hi = high(row)
            if value is None or lo is None or hi is None:
                return None
            inside = lo <= value <= hi
            return (not inside) if negated else inside
        return _between
    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, resolver)
        negated = expr.negated

        def _is_null(row):
            result = operand(row) is None
            return (not result) if negated else result
        return _is_null
    if isinstance(expr, FuncCall):
        raise PlanningError(f"unknown function: {expr.name!r}")
    if isinstance(expr, Exists):
        raise PlanningError(
            "EXISTS must be planned as a semi-join, not compiled directly")
    if isinstance(expr, Star):
        raise PlanningError("'*' is only valid in COUNT(*)")
    raise PlanningError(f"cannot compile expression node: {expr!r}")


def _compile_binary(expr: BinaryOp, resolver: Resolver) -> Callable:
    left = compile_expr(expr.left, resolver)
    right = compile_expr(expr.right, resolver)
    op = expr.op
    if op == "and":
        def _and(row):
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return _and
    if op == "or":
        def _or(row):
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return _or
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return lambda row: _compare(op, left(row), right(row))
    return lambda row: _arith(op, left(row), right(row))
