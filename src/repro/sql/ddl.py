"""DDL execution: catalog statements through the format registry.

``CREATE [EXTERNAL] TABLE`` is the paper's §3.1 "declare the schema and
mark the table as in situ" step as real SQL: the format adapter
resolved from ``USING <format>`` (or sniffed from the path) validates
the options, supplies or checks the schema, and constructs the access
method — including auxiliary-structure wiring. Engines contribute no
format knowledge; they differ only in the policy attributes the
adapters consult (see :mod:`repro.formats.registry`), which is exactly
the paper's experimental control.

Every statement returns ``(columns, rows)`` so DDL and SELECT flow
through one result shape in both :meth:`repro.engines.base.Database.
query` and the session/cursor path.
"""

from __future__ import annotations

from repro.errors import CatalogError, ExecutionError
from repro.formats.partitioned import maybe_wrap_partitioned
from repro.formats.registry import get_format, sniff_format
from repro.sql.ast_nodes import (
    CreateTable,
    DescribeTable,
    DropTable,
    ShowTables,
)
from repro.sql.catalog import Column, Schema, TableInfo

Result = tuple[list[str], list[tuple]]


def execute_ddl(engine, statement) -> Result:
    """Run one DDL statement against ``engine``'s catalog."""
    if isinstance(statement, CreateTable):
        return _create_table(engine, statement)
    if isinstance(statement, DropTable):
        return _drop_table(engine, statement)
    if isinstance(statement, ShowTables):
        return _show_tables(engine)
    if isinstance(statement, DescribeTable):
        return _describe(engine, statement)
    raise ExecutionError(
        f"not a DDL statement: {type(statement).__name__}")


def _create_table(engine, statement: CreateTable) -> Result:
    if engine.catalog.has(statement.name):
        if statement.if_not_exists:
            return ["status"], [
                (f"CREATE TABLE {statement.name} skipped (exists)",)]
        # Fail before any auxiliary structure is built or file loaded.
        raise CatalogError(
            f"table already registered: {statement.name!r}")
    path = statement.options.get("path", "")
    if statement.format is not None:
        adapter = get_format(statement.format)
    else:
        adapter = sniff_format(path if isinstance(path, str) else "")
    # A glob path (or partition_by) turns any raw format into a
    # partitioned table: the wrapper binds one child access per file
    # through the adapter resolved above.
    adapter = maybe_wrap_partitioned(adapter, statement.options)
    options = adapter.validate_options(engine, dict(statement.options))

    if statement.schema is not None:  # register_* shim channel
        schema = statement.schema
    elif statement.columns:
        schema = Schema([Column(col.name, col.dtype, col.nullable)
                         for col in statement.columns])
    else:
        schema = adapter.infer_schema(engine, options)
        if schema is None:
            raise CatalogError(
                f"format {adapter.name!r} cannot infer a schema from "
                f"{options.get('path')!r}; declare the columns in "
                "CREATE TABLE (§3.1: the schema is a priori knowledge)")
    if statement.columns or statement.schema is not None:
        adapter.check_schema(engine, schema, options)

    info = TableInfo(name=statement.name, schema=schema,
                     path=options.get("path", ""), format=adapter.name,
                     options=options, external=statement.external)
    info.access = adapter.build_access(engine, info, options)
    engine.catalog.register(info)
    return ["status"], [(f"CREATE TABLE {statement.name}",)]


def _drop_table(engine, statement: DropTable) -> Result:
    """Unregister + tear down. Like unlinking an open file, DROP does
    not wait for in-flight queries: a live scan that was reading the
    raw file directly (cold) streams its remaining rows; one that was
    navigating the positional map fails cleanly on its next fetch
    (``ExecutionError``/``OperationalError`` advising a re-run). Drop
    when the table is quiescent to avoid either."""
    if statement.if_exists and not engine.catalog.has(statement.name):
        return ["status"], [
            (f"DROP TABLE {statement.name} skipped (absent)",)]
    info = engine.catalog.get(statement.name)
    try:
        adapter = get_format(info.format) if info.format else None
    except CatalogError:
        adapter = None
    if adapter is not None:
        adapter.teardown(engine, info)
    else:  # tables registered outside the registry: generic teardown
        positional_map = getattr(info.access, "pm", None)
        if positional_map is not None:
            positional_map.drop()
        cache = getattr(info.access, "cache", None)
        if cache is not None:
            cache.clear()
    # Unbind so any still-cached plan node holding this TableInfo fails
    # loudly instead of silently scanning a torn-down access method.
    info.access = None
    engine.catalog.drop(statement.name)
    return ["status"], [(f"DROP TABLE {statement.name}",)]


def _show_tables(engine) -> Result:
    rows = [(info.name, info.format or "?", info.schema.arity, info.path)
            for info in sorted(engine.catalog.tables(),
                               key=lambda info: info.name.lower())]
    return ["table", "format", "columns", "path"], rows


def _describe(engine, statement: DescribeTable) -> Result:
    info = engine.catalog.get(statement.name)
    rows = [(column.name, column.dtype.name,
             "YES" if column.nullable else "NO")
            for column in info.schema]
    return ["column", "type", "nullable"], rows
