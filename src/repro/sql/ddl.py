"""DDL execution: catalog statements through the format registry.

``CREATE [EXTERNAL] TABLE`` is the paper's §3.1 "declare the schema and
mark the table as in situ" step as real SQL: the format adapter
resolved from ``USING <format>`` (or sniffed from the path) validates
the options, supplies or checks the schema, and constructs the access
method — including auxiliary-structure wiring. Engines contribute no
format knowledge; they differ only in the policy attributes the
adapters consult (see :mod:`repro.formats.registry`), which is exactly
the paper's experimental control.

``CREATE TABLE ... AS SELECT`` runs the query through the normal
planner (it may itself be routed to a rollup) and materializes the
result through the ``heap`` adapter's row channel — an instant
materialized view of raw files. ``CREATE ROLLUP`` builds a
dimension/aggregate summary the query router can probe; ``DROP TABLE``
cascades to the table's rollups.

Every statement returns ``(columns, rows)`` so DDL and SELECT flow
through one result shape in both :meth:`repro.engines.base.Database.
query` and the session/cursor path.
"""

from __future__ import annotations

import datetime

from repro.errors import CatalogError, ExecutionError
from repro.formats.partitioned import maybe_wrap_partitioned
from repro.formats.registry import get_format, sniff_format
from repro.sql.ast_nodes import (
    AlterTableRename,
    ColumnRef,
    CreateRollup,
    CreateTable,
    DescribeTable,
    DropRollup,
    DropTable,
    FuncCall,
    Literal,
    ShowTables,
)
from repro.sql.catalog import Column, Schema, TableInfo
from repro.sql.datatypes import BIGINT, BOOLEAN, DATE, FLOAT, varchar

Result = tuple[list[str], list[tuple]]


def execute_ddl(engine, statement) -> Result:
    """Run one DDL statement against ``engine``'s catalog."""
    if isinstance(statement, CreateTable):
        if statement.as_select is not None:
            return _create_as_select(engine, statement)
        return _create_table(engine, statement)
    if isinstance(statement, DropTable):
        return _drop_table(engine, statement)
    if isinstance(statement, AlterTableRename):
        return _alter_rename(engine, statement)
    if isinstance(statement, CreateRollup):
        return _create_rollup(engine, statement)
    if isinstance(statement, DropRollup):
        return _drop_rollup(engine, statement)
    if isinstance(statement, ShowTables):
        return _show_tables(engine)
    if isinstance(statement, DescribeTable):
        return _describe(engine, statement)
    raise ExecutionError(
        f"not a DDL statement: {type(statement).__name__}")


def _create_table(engine, statement: CreateTable) -> Result:
    if engine.catalog.has(statement.name):
        if statement.if_not_exists:
            return ["status"], [
                (f"CREATE TABLE {statement.name} skipped (exists)",)]
        # Fail before any auxiliary structure is built or file loaded.
        raise CatalogError(
            f"table already registered: {statement.name!r}")
    path = statement.options.get("path", "")
    if statement.format is not None:
        adapter = get_format(statement.format)
    else:
        adapter = sniff_format(path if isinstance(path, str) else "")
    # A glob path (or partition_by) turns any raw format into a
    # partitioned table: the wrapper binds one child access per file
    # through the adapter resolved above.
    adapter = maybe_wrap_partitioned(adapter, statement.options)
    options = adapter.validate_options(engine, dict(statement.options))

    if statement.schema is not None:  # register_* shim channel
        schema = statement.schema
    elif statement.columns:
        schema = Schema([Column(col.name, col.dtype, col.nullable)
                         for col in statement.columns])
    else:
        schema = adapter.infer_schema(engine, options)
        if schema is None:
            raise CatalogError(
                f"format {adapter.name!r} cannot infer a schema from "
                f"{options.get('path')!r}; declare the columns in "
                "CREATE TABLE (§3.1: the schema is a priori knowledge)")
    if statement.columns or statement.schema is not None:
        adapter.check_schema(engine, schema, options)

    info = TableInfo(name=statement.name, schema=schema,
                     path=options.get("path", ""), format=adapter.name,
                     options=options, external=statement.external)
    info.access = adapter.build_access(engine, info, options)
    engine.catalog.register(info)
    return ["status"], [(f"CREATE TABLE {statement.name}",)]


# ---------------------------------------------------------------------------
# CREATE TABLE ... AS SELECT
# ---------------------------------------------------------------------------
def _create_as_select(engine, statement: CreateTable) -> Result:
    if engine.catalog.has(statement.name):
        if statement.if_not_exists:
            return ["status"], [
                (f"CREATE TABLE {statement.name} skipped (exists)",)]
        raise CatalogError(
            f"table already registered: {statement.name!r}")
    from repro.sql.batch import batches_to_rows
    from repro.sql.executor import execute_batches

    select = statement.as_select
    # Let access methods notice external file updates (§4.5), then plan
    # through the normal path — the materializing query may itself be
    # routed to a rollup.
    engine.refresh_for(select)
    planned = engine.plan_select(select)
    rows = list(batches_to_rows(execute_batches(planned)))
    schema = _result_schema(engine, planned.names, rows, select)
    synthetic = CreateTable(name=statement.name, format="heap",
                            options={"_rows": rows}, schema=schema)
    _create_table(engine, synthetic)
    return ["status"], [
        (f"CREATE TABLE {statement.name} AS SELECT ({len(rows)} rows)",)]


def _result_schema(engine, names, rows, select) -> Schema:
    columns = []
    for index, name in enumerate(names):
        values = [row[index] for row in rows]
        dtype = _dtype_of_values(values)
        if dtype is None:
            dtype = _dtype_of_expr(engine, select, index)
        columns.append(Column(name, dtype))
    try:
        return Schema(columns)
    except CatalogError as exc:
        raise CatalogError(
            f"CTAS result columns must have distinct names "
            f"({names}); add aliases — {exc}") from exc


def _dtype_of_values(values):
    """Value-based CTAS column typing; None when no non-NULL value
    exists to look at (fall back to the expression)."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    if all(isinstance(v, bool) for v in present):
        return BOOLEAN
    if all(isinstance(v, int) and not isinstance(v, bool)
           for v in present):
        return BIGINT
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in present):
        return FLOAT
    if all(isinstance(v, datetime.date) for v in present):
        return DATE
    if all(isinstance(v, str) for v in present):
        return varchar()
    raise CatalogError(
        "CTAS cannot infer a single column type from mixed values; "
        "cast or restructure the query")


def _dtype_of_expr(engine, select, index):
    """Expression-based fallback for all-NULL/empty CTAS columns."""
    if index < len(select.items):
        expr = select.items[index].expr
        if isinstance(expr, FuncCall) and expr.name == "count":
            return BIGINT
        if isinstance(expr, FuncCall) and expr.name == "avg":
            return FLOAT
        target = expr
        if isinstance(expr, FuncCall) and \
                expr.name in ("sum", "min", "max") and expr.args and \
                isinstance(expr.args[0], ColumnRef):
            target = expr.args[0]
        if isinstance(target, ColumnRef):
            name = target.name.lower()
            for ref in select.tables:
                if engine.catalog.has(ref.name):
                    schema = engine.catalog.get(ref.name).schema
                    if schema.has_column(name):
                        dtype = schema.column(name).dtype
                        if isinstance(expr, FuncCall) and \
                                expr.name == "sum":
                            return (BIGINT if dtype.family == "int"
                                    else FLOAT)
                        return dtype
        if isinstance(target, Literal):
            dtype = _dtype_of_values([target.value])
            if dtype is not None:
                return dtype
    return varchar()


def _drop_table(engine, statement: DropTable) -> Result:
    """Unregister + tear down. Like unlinking an open file, DROP does
    not wait for in-flight queries: a live scan that was reading the
    raw file directly (cold) streams its remaining rows; one that was
    navigating the positional map fails cleanly on its next fetch
    (``ExecutionError``/``OperationalError`` advising a re-run). Drop
    when the table is quiescent to avoid either."""
    if statement.if_exists and not engine.catalog.has(statement.name):
        return ["status"], [
            (f"DROP TABLE {statement.name} skipped (absent)",)]
    info = engine.catalog.get(statement.name)
    try:
        adapter = get_format(info.format) if info.format else None
    except CatalogError:
        adapter = None
    if adapter is not None:
        adapter.teardown(engine, info)
    else:  # tables registered outside the registry: generic teardown
        positional_map = getattr(info.access, "pm", None)
        if positional_map is not None:
            positional_map.drop()
        cache = getattr(info.access, "cache", None)
        if cache is not None:
            cache.clear()
    # Dropping the source invalidates its rollups for good (a future
    # table under the same name is a different table): cascade.
    rollups = getattr(engine, "rollups", None)
    if rollups is not None:
        from repro.rollup.builder import drop_storage

        for rollup in rollups.drop_for_source(info):
            drop_storage(engine, rollup)
    # Unbind so any still-cached plan node holding this TableInfo fails
    # loudly instead of silently scanning a torn-down access method.
    info.access = None
    engine.catalog.drop(statement.name)
    return ["status"], [(f"DROP TABLE {statement.name}",)]


def _alter_rename(engine, statement: AlterTableRename) -> Result:
    if statement.if_exists and not engine.catalog.has(statement.name):
        return ["status"], [
            (f"ALTER TABLE {statement.name} skipped (absent)",)]
    engine.catalog.rename(statement.name, statement.new_name)
    return ["status"], [
        (f"ALTER TABLE {statement.name} RENAME TO "
         f"{statement.new_name}",)]


# ---------------------------------------------------------------------------
# CREATE/DROP ROLLUP
# ---------------------------------------------------------------------------
def _create_rollup(engine, statement: CreateRollup) -> Result:
    if engine.rollups.has(statement.name):
        if statement.if_not_exists:
            return ["status"], [
                (f"CREATE ROLLUP {statement.name} skipped (exists)",)]
        raise CatalogError(
            f"rollup already registered: {statement.name!r}")
    from repro.rollup.builder import build_rollup

    source = engine.catalog.get(statement.table)
    rollup = build_rollup(engine, statement.name, source,
                          statement.dims, statement.aggs)
    engine.rollups.register(rollup)
    # Cached aggregate plans must get a chance to re-route.
    engine.catalog.bump_epoch()
    return ["status"], [
        (f"CREATE ROLLUP {statement.name} ON {source.name} "
         f"({rollup.row_count} rows)",)]


def _drop_rollup(engine, statement: DropRollup) -> Result:
    if statement.if_exists and not engine.rollups.has(statement.name):
        return ["status"], [
            (f"DROP ROLLUP {statement.name} skipped (absent)",)]
    from repro.rollup.builder import drop_storage

    rollup = engine.rollups.drop(statement.name)
    drop_storage(engine, rollup)
    engine.catalog.bump_epoch()
    return ["status"], [(f"DROP ROLLUP {statement.name}",)]


def _show_tables(engine) -> Result:
    rows = [(info.name, info.format or "?", info.schema.arity, info.path)
            for info in sorted(engine.catalog.tables(),
                               key=lambda info: info.name.lower())]
    return ["table", "format", "columns", "path"], rows


def _describe(engine, statement: DescribeTable) -> Result:
    info = engine.catalog.get(statement.name)
    rows = [(column.name, column.dtype.name,
             "YES" if column.nullable else "NO")
            for column in info.schema]
    return ["column", "type", "nullable"], rows
