"""The contract between plan leaves and access methods.

The planner pushes (a) the list of file-attribute indexes a query needs
and (b) the single-table part of the WHERE clause down to the access
method. PostgresRaw's raw scan exploits both: selective tokenizing stops
at the largest needed attribute, and selective parsing converts SELECT
attributes only for tuples that pass the predicate (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, Sequence


@dataclass
class ScanPredicate:
    """A compiled single-table predicate.

    ``fn`` receives a dict mapping file-attribute index -> converted
    value (only ``attrs`` are present) and returns SQL-boolean
    (True/False/None). ``n_terms`` is the number of conjuncts, used for
    cost charging. ``conjuncts`` keeps the original ASTs so the
    optimizer can estimate selectivity.

    ``vector_fn``, when the planner could vectorize every conjunct, is
    the batch-scan fast path: ``vector_fn(columns, nulls, nrows)``
    returns a boolean qualifying mask over typed NumPy columns (see
    :mod:`repro.sql.vectorize`). It is always semantically equivalent
    to mapping ``fn`` over the rows; scans that cannot materialize
    typed columns simply ignore it.
    """

    attrs: list[int]
    fn: Callable[[dict[int, object]], Optional[bool]]
    n_terms: int = 1
    conjuncts: list = field(default_factory=list)
    vector_fn: Optional[Callable] = None

    def passes(self, values: dict[int, object]) -> bool:
        return self.fn(values) is True


class AccessMethod(Protocol):
    """How a plan leaf obtains tuples of one table.

    Implementations: RawCsvAccess (in-situ, §4), HeapAccess (loaded
    binary pages), ExternalAccess (external-files straw-man),
    RawFitsAccess (§5.3).

    Batch-capable access methods additionally expose ``scan_batches``
    (duck-typed — see ``ScanOp.supports_batches``) with the **ordered
    delivery contract**: batches arrive in file order, carrying rows in
    file order, regardless of how the scan is executed internally. In
    particular PostgresRaw's parallel chunk scans compute row-block
    groups out of order on a worker pool, but the merge yields them —
    and applies their positional-map/cache/statistics effects — in
    canonical group order, so the operator tree above never observes
    the fan-out.
    """

    def scan(self, needed: Sequence[int],
             predicate: ScanPredicate | None) -> Iterator[tuple]:
        """Yield tuples of the values of ``needed`` attributes (in that
        order) for every row passing ``predicate``."""
        ...

    def scan_batches(self, needed: Sequence[int],
                     predicate: ScanPredicate | None):
        """Yield :class:`~repro.sql.batch.ColumnBatch` blocks under the
        ordered delivery contract (optional — row-only access methods
        simply omit it and the plan leaf falls back to ``scan``)."""
        ...

    def estimated_rows(self) -> int | None:
        """Best-effort row count for the optimizer (None if unknown)."""
        ...
