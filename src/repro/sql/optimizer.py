"""Statistics-driven plan choices (join order, aggregation strategy).

With statistics (loaded engines after ANALYZE; PostgresRaw after its
on-the-fly collection, §4.4) the optimizer estimates scan cardinalities
and orders joins greedily. Without statistics it falls back to defaults
— and, like PostgreSQL, to pessimistic sort-based aggregation, which is
the plan difference behind Figure 12.
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    UnaryOp,
)
from repro.sql.catalog import TableInfo
from repro.sql.expressions import compile_expr
from repro.sql.stats import ColumnStats, TableStats

DEFAULT_ROWS = 1000.0
DEFAULT_EQ_SEL = 0.005
DEFAULT_RANGE_SEL = 1.0 / 3.0
DEFAULT_LIKE_SEL = 0.1
DEFAULT_JOIN_SEL = 0.01
HASH_AGG_MAX_GROUPS = 100_000


def _constant_value(expr):
    """Evaluate a constant expression (literals, date arithmetic); None
    when the expression is not constant."""
    try:
        fn = compile_expr(expr, lambda node: None)
        return fn(())
    except Exception:
        return None


def normalize_comparison(comparison: BinaryOp):
    """Return (column_ref, constant_value, op) with the column on the
    left, or (None, None, op) when not a col-vs-const comparison."""
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "<>": "<>"}
    left, right, op = comparison.left, comparison.right, comparison.op
    if isinstance(left, ColumnRef) and not isinstance(right, ColumnRef):
        return left, _constant_value(right), op
    if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
        return right, _constant_value(left), flip[op]
    return None, None, op


# ---------------------------------------------------------------------------
# Zone-map pruning (partitioned tables)
# ---------------------------------------------------------------------------
# ``bounds_of(column_name)`` describes one file's zone for a column:
#   None          -> nothing complete is known: the file may match anything
#   (lo, hi)      -> exact min/max over every non-null value in the file
#                    (the file may additionally hold NULLs)
#   (None, None)  -> complete knowledge that every value is NULL
#
# ``zone_may_match`` is three-valued-logic sound: a conjunct excludes a
# file only when no row can evaluate to TRUE under it — NULL comparisons
# are UNKNOWN, and UNKNOWN rows are filtered, so bounds over non-null
# values suffice. Anything the analysis does not understand answers
# "may match" (never prunes a file it should scan).

def zone_may_match(conjunct, bounds_of) -> bool:
    """False only when provably no row of the zone satisfies
    ``conjunct``."""
    if isinstance(conjunct, UnaryOp) and conjunct.op == "not":
        # NOT P is TRUE only where P is FALSE (not where P is UNKNOWN).
        return zone_may_fail(conjunct.operand, bounds_of)
    if isinstance(conjunct, BinaryOp):
        if conjunct.op == "and":
            return (zone_may_match(conjunct.left, bounds_of)
                    and zone_may_match(conjunct.right, bounds_of))
        if conjunct.op == "or":
            return (zone_may_match(conjunct.left, bounds_of)
                    or zone_may_match(conjunct.right, bounds_of))
        if conjunct.op in ("=", "<>", "<", "<=", ">", ">="):
            ref, value, op = normalize_comparison(conjunct)
            if ref is None or value is None:
                return True
            return _zone_comparison(ref, value, op, bounds_of,
                                    negate=False)
    if isinstance(conjunct, Between):
        return _zone_between(conjunct, bounds_of)
    if isinstance(conjunct, InList):
        return _zone_in_list(conjunct, bounds_of)
    return True


def zone_may_fail(conjunct, bounds_of) -> bool:
    """False only when provably no row makes ``conjunct`` FALSE (rows
    where it is UNKNOWN do not count — ``NOT UNKNOWN`` is UNKNOWN and
    still filtered)."""
    if isinstance(conjunct, UnaryOp) and conjunct.op == "not":
        return zone_may_match(conjunct.operand, bounds_of)
    if isinstance(conjunct, BinaryOp):
        if conjunct.op == "and":
            return (zone_may_fail(conjunct.left, bounds_of)
                    or zone_may_fail(conjunct.right, bounds_of))
        if conjunct.op == "or":
            return (zone_may_fail(conjunct.left, bounds_of)
                    and zone_may_fail(conjunct.right, bounds_of))
        if conjunct.op in ("=", "<>", "<", "<=", ">", ">="):
            ref, value, op = normalize_comparison(conjunct)
            if ref is None or value is None:
                return True
            return _zone_comparison(ref, value, op, bounds_of,
                                    negate=True)
    return True


def _zone_comparison(ref, value, op, bounds_of, negate: bool) -> bool:
    bounds = bounds_of(ref.name)
    if bounds is None:
        return True
    lo, hi = bounds
    if lo is None or hi is None:
        # Every value NULL: the comparison is never TRUE and never
        # FALSE — only UNKNOWN.
        return False
    try:
        if not negate:
            if op == "=":
                return lo <= value <= hi
            if op == "<>":
                return not (lo == hi == value)
            if op == "<":
                return lo < value
            if op == "<=":
                return lo <= value
            if op == ">":
                return hi > value
            return hi >= value  # ">="
        # May some non-null row make the comparison FALSE?
        if op == "=":
            return not (lo == hi == value)
        if op == "<>":
            return lo <= value <= hi
        if op == "<":
            return hi >= value
        if op == "<=":
            return hi > value
        if op == ">":
            return lo <= value
        return lo < value  # ">="
    except TypeError:
        return True


def _zone_between(between: Between, bounds_of) -> bool:
    if not isinstance(between.operand, ColumnRef):
        return True
    bounds = bounds_of(between.operand.name)
    if bounds is None:
        return True
    lo, hi = bounds
    if lo is None or hi is None:
        return False  # all NULL: BETWEEN (negated or not) never TRUE
    low = _constant_value(between.low)
    high = _constant_value(between.high)
    if low is None or high is None:
        return True
    try:
        if between.negated:
            return lo < low or hi > high
        return hi >= low and lo <= high
    except TypeError:
        return True


def _zone_in_list(in_list: InList, bounds_of) -> bool:
    if not isinstance(in_list.operand, ColumnRef):
        return True
    bounds = bounds_of(in_list.operand.name)
    if bounds is None:
        return True
    lo, hi = bounds
    if lo is None or hi is None:
        return False  # all NULL: IN / NOT IN never TRUE
    values = [_constant_value(item) for item in in_list.items]
    if any(value is None for value in values):
        return True
    try:
        if in_list.negated:
            # Excludable only when every row equals one listed constant.
            return not (lo == hi and any(v == lo for v in values))
        return any(lo <= v <= hi for v in values)
    except TypeError:
        return True


class Optimizer:
    """Cardinality estimation + plan-shape decisions for one query."""

    def __init__(self, use_stats: bool = True):
        self.use_stats = use_stats

    # -- cardinalities ---------------------------------------------------
    def base_rows(self, info: TableInfo) -> float:
        if self.use_stats and info.stats is not None and info.stats.row_count:
            return float(info.stats.row_count)
        if info.row_count_hint:
            return float(info.row_count_hint)
        return DEFAULT_ROWS

    def scan_rows(self, info: TableInfo, pushed_conjuncts: list,
                  base_rows: float | None = None) -> float:
        """Estimated scan output. ``base_rows`` overrides the stats/
        hint-derived input cardinality — the planner passes the summed
        row counts of surviving partitions for zone-pruned scans."""
        rows = base_rows if base_rows is not None else self.base_rows(info)
        for conjunct in pushed_conjuncts:
            rows *= self.conjunct_selectivity(info, conjunct)
        return max(rows, 1.0)

    def _column_stats(self, info: TableInfo, name: str) -> ColumnStats | None:
        if not self.use_stats or info.stats is None:
            return None
        return info.stats.column(name)

    def conjunct_selectivity(self, info: TableInfo, conjunct) -> float:
        """Estimated fraction of rows passing one conjunct."""
        if isinstance(conjunct, UnaryOp) and conjunct.op == "not":
            return max(0.0, 1.0 - self.conjunct_selectivity(
                info, conjunct.operand))
        if isinstance(conjunct, BinaryOp):
            if conjunct.op == "or":
                lhs = self.conjunct_selectivity(info, conjunct.left)
                rhs = self.conjunct_selectivity(info, conjunct.right)
                return min(1.0, lhs + rhs - lhs * rhs)
            if conjunct.op == "and":
                return (self.conjunct_selectivity(info, conjunct.left)
                        * self.conjunct_selectivity(info, conjunct.right))
            if conjunct.op in ("=", "<>", "<", "<=", ">", ">="):
                return self._comparison_selectivity(info, conjunct)
        if isinstance(conjunct, Between):
            return self._between_selectivity(info, conjunct)
        if isinstance(conjunct, InList):
            ref = conjunct.operand
            total = 0.0
            for item in conjunct.items:
                value = _constant_value(item)
                total += self._eq_selectivity(info, ref, value)
            total = min(1.0, total)
            return 1.0 - total if conjunct.negated else total
        if isinstance(conjunct, LikeExpr):
            sel = DEFAULT_LIKE_SEL
            return 1.0 - sel if conjunct.negated else sel
        if isinstance(conjunct, IsNull):
            stats = (self._column_stats(info, conjunct.operand.name)
                     if isinstance(conjunct.operand, ColumnRef) else None)
            null_frac = stats.null_frac if stats else 0.01
            return 1.0 - null_frac if conjunct.negated else null_frac
        return DEFAULT_RANGE_SEL

    def _comparison_selectivity(self, info: TableInfo,
                                comparison: BinaryOp) -> float:
        ref, value, op = self._normalize_comparison(comparison)
        if ref is None:
            return DEFAULT_RANGE_SEL
        if op == "=":
            return self._eq_selectivity(info, ref, value)
        if op == "<>":
            return 1.0 - self._eq_selectivity(info, ref, value)
        stats = self._column_stats(info, ref.name)
        if stats is None or value is None:
            return DEFAULT_RANGE_SEL
        return stats.selectivity_range(op, value)

    def _normalize_comparison(self, comparison: BinaryOp):
        return normalize_comparison(comparison)

    def _eq_selectivity(self, info: TableInfo, ref, value) -> float:
        if not isinstance(ref, ColumnRef):
            return DEFAULT_EQ_SEL
        stats = self._column_stats(info, ref.name)
        if stats is None:
            return DEFAULT_EQ_SEL
        if value is None:
            return 1.0 / max(stats.n_distinct, 1.0)
        return stats.selectivity_eq(value)

    def _between_selectivity(self, info: TableInfo,
                             between: Between) -> float:
        if not isinstance(between.operand, ColumnRef):
            return DEFAULT_RANGE_SEL
        stats = self._column_stats(info, between.operand.name)
        low = _constant_value(between.low)
        high = _constant_value(between.high)
        if stats is None or low is None or high is None:
            sel = 0.1
        else:
            below_high = stats.selectivity_range("<=", high)
            below_low = stats.selectivity_range("<", low)
            sel = max(0.0005, below_high - below_low)
        return max(0.0, 1.0 - sel) if between.negated else sel

    # -- join ordering ------------------------------------------------------
    def join_output_rows(self, left_rows: float, right_rows: float,
                         edges: int) -> float:
        """Estimated output of joining two inputs over ``edges`` equality
        predicates (each contributes the default join selectivity; with
        column ndistinct this could be refined, but shapes do not hinge
        on it)."""
        selectivity = DEFAULT_JOIN_SEL ** max(edges, 0) if edges else 1.0
        return max(1.0, left_rows * right_rows * selectivity)

    def order_bindings(self, names: list[str], est_rows: dict[str, float],
                       edges: set[tuple[str, str]]) -> list[str]:
        """Greedy left-deep join order: start with the smallest relation,
        repeatedly join the connected relation that minimizes the
        estimated intermediate size (unconnected relations last)."""
        if len(names) <= 1:
            return list(names)
        remaining = set(names)
        start = min(remaining, key=lambda n: est_rows[n])
        order = [start]
        remaining.discard(start)
        current_rows = est_rows[start]
        bound = {start}
        while remaining:
            best = None
            best_rows = None
            for candidate in sorted(remaining):
                edge_count = sum(
                    1 for a, b in edges
                    if (a in bound and b == candidate)
                    or (b in bound and a == candidate))
                if edge_count == 0:
                    continue
                out = self.join_output_rows(current_rows,
                                            est_rows[candidate], edge_count)
                if best_rows is None or out < best_rows:
                    best, best_rows = candidate, out
            if best is None:  # disconnected: take the smallest remaining
                best = min(remaining, key=lambda n: est_rows[n])
                best_rows = current_rows * est_rows[best]
            order.append(best)
            bound.add(best)
            remaining.discard(best)
            current_rows = best_rows
        return order

    # -- aggregation strategy ----------------------------------------------
    def agg_strategy(self, info_for_group_cols: list[tuple[TableInfo, str]],
                     input_rows: float, has_group_by: bool) -> str:
        """'hash' when statistics can bound the number of groups (or when
        there is no GROUP BY at all); otherwise 'sort' — PostgreSQL's
        pessimistic fallback when it cannot estimate group counts."""
        if not has_group_by:
            return "hash"
        if not self.use_stats:
            return "sort"
        est_groups = 1.0
        for info, column_name in info_for_group_cols:
            stats = self._column_stats(info, column_name)
            if stats is None:
                return "sort"
            est_groups *= max(stats.n_distinct, 1.0)
        est_groups = min(est_groups, input_rows)
        return "hash" if est_groups <= HASH_AGG_MAX_GROUPS else "sort"
