"""Catalog: schemas, table registration, table kinds.

The paper keeps PostgreSQL's catalog but marks tables as *in situ*: the
schema is declared a priori (§3.1 — schema discovery is out of scope),
and the table's kind decides which access method the planner binds at
the plan leaf.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import CatalogError, PlanningError
from repro.sql.datatypes import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.stats import TableStats


class TableKind(enum.Enum):
    """How the engine reaches a table's tuples."""

    RAW_CSV = "raw_csv"          # PostgresRaw in-situ CSV scan (PM + cache)
    RAW_FITS = "raw_fits"        # PostgresRaw in-situ FITS scan
    HEAP = "heap"                # loaded binary pages (conventional DBMS)
    EXTERNAL_CSV = "external"    # external-files straw-man: full re-parse


@dataclass(frozen=True)
class Column:
    """One attribute of a table."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name} {self.dtype.name}"


class Schema:
    """An ordered list of columns with by-name lookup."""

    def __init__(self, columns: list[Column] | list[tuple[str, DataType]]):
        normalized: list[Column] = []
        for col in columns:
            if isinstance(col, Column):
                normalized.append(col)
            else:
                name, dtype = col
                normalized.append(Column(name, dtype))
        self.columns = normalized
        self._index = {c.name.lower(): i for i, c in enumerate(normalized)}
        if len(self._index) != len(normalized):
            raise CatalogError("duplicate column names in schema")

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def types(self) -> list[DataType]:
        return [c.dtype for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def index_of(self, name: str) -> int:
        """Position of column ``name`` (case-insensitive)."""
        idx = self._index.get(name.lower())
        if idx is None:
            raise PlanningError(f"unknown column: {name!r}")
        return idx

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({', '.join(map(repr, self.columns))})"


@dataclass
class TableInfo:
    """Everything the engine knows about one table.

    ``path`` is the VFS path of the raw file (RAW/EXTERNAL kinds) or of
    the heap file (HEAP kind). ``access`` is set by the owning engine to
    the access-method object serving this table's scans. ``stats`` holds
    optimizer statistics — for PostgresRaw these appear adaptively
    (§4.4); for loaded engines they are built at load time.
    """

    name: str
    schema: Schema
    kind: TableKind
    path: str
    access: object | None = None
    stats: "TableStats | None" = None
    row_count_hint: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def stats_epoch(self) -> int:
        """Version of this table's statistics (0 = none yet). Moves
        whenever a scan's §4.4 collection — or a loaded engine's
        ANALYZE — installs or augments stats."""
        return self.stats.version if self.stats is not None else 0


class Catalog:
    """Case-insensitive table namespace for one engine."""

    def __init__(self):
        self._tables: dict[str, TableInfo] = {}
        self._retired_stats_epoch = 0

    def register(self, info: TableInfo) -> TableInfo:
        key = info.name.lower()
        if key in self._tables:
            raise CatalogError(f"table already registered: {info.name!r}")
        self._tables[key] = info
        return info

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table: {name!r}")
        # Retire the dropped table's stats version so the catalog epoch
        # stays monotone — otherwise later arrivals on other tables
        # could sum back to a previously seen epoch and a stale
        # prepared plan would miss its re-plan.
        self._retired_stats_epoch += self._tables[key].stats_epoch
        del self._tables[key]

    def get(self, name: str) -> TableInfo:
        info = self._tables.get(name.lower())
        if info is None:
            raise CatalogError(f"unknown table: {name!r}")
        return info

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[TableInfo]:
        return list(self._tables.values())

    @property
    def stats_epoch(self) -> int:
        """Catalog-wide statistics epoch: changes whenever any table's
        statistics change (PostgresRaw collects them adaptively during
        scans, §4.4 — i.e. *after* plans may already be cached).
        Prepared statements snapshot this at plan time and re-plan when
        it moves, so optimizer decisions frozen before statistics
        existed are revisited once they arrive. Monotone: dropped
        tables' versions are retired into a floor, never subtracted."""
        return self._retired_stats_epoch + sum(
            info.stats_epoch for info in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has(name)

    def __len__(self) -> int:
        return len(self._tables)
