"""Catalog: schemas and the table namespace.

The paper keeps PostgreSQL's catalog but marks tables as *in situ*: the
schema is declared a priori (§3.1 — schema discovery is out of scope).
*How* a table's tuples are reached is not catalog knowledge anymore:
``CREATE TABLE ... USING <format>`` resolves a
:class:`~repro.formats.registry.FormatAdapter` that builds the access
method bound at the plan leaf; the catalog only records the format name
for introspection (``SHOW TABLES``) and teardown (``DROP TABLE``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import CatalogError, PlanningError
from repro.sql.datatypes import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.stats import TableStats


class TableKind(enum.Enum):
    """Deprecated pre-registry enum of access paths. Kept only so old
    callers constructing :class:`TableInfo` with ``kind=...`` keep
    working; nothing in the engine branches on it — format dispatch
    lives in :mod:`repro.formats.registry`."""

    RAW_CSV = "raw_csv"
    RAW_FITS = "raw_fits"
    HEAP = "heap"
    EXTERNAL_CSV = "external"


@dataclass(frozen=True)
class Column:
    """One attribute of a table."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name} {self.dtype.name}"


class Schema:
    """An ordered list of columns with by-name lookup."""

    def __init__(self, columns: list[Column] | list[tuple[str, DataType]]):
        normalized: list[Column] = []
        for col in columns:
            if isinstance(col, Column):
                normalized.append(col)
            else:
                name, dtype = col
                normalized.append(Column(name, dtype))
        self.columns = normalized
        self._index = {c.name.lower(): i for i, c in enumerate(normalized)}
        if len(self._index) != len(normalized):
            raise CatalogError("duplicate column names in schema")

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def types(self) -> list[DataType]:
        return [c.dtype for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def index_of(self, name: str) -> int:
        """Position of column ``name`` (case-insensitive)."""
        idx = self._index.get(name.lower())
        if idx is None:
            raise PlanningError(f"unknown column: {name!r}")
        return idx

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({', '.join(map(repr, self.columns))})"


@dataclass
class TableInfo:
    """Everything the engine knows about one table.

    ``path`` is the VFS path of the raw file (in-situ/external tables)
    or of the heap file (loaded tables). ``format`` names the
    :class:`~repro.formats.registry.FormatAdapter` that built — and at
    DROP tears down — the table; ``options`` are its validated CREATE
    options and ``external`` records a ``CREATE EXTERNAL TABLE``
    binding. ``access`` is the access-method object serving this
    table's scans. ``stats`` holds optimizer statistics — for
    PostgresRaw these appear adaptively (§4.4); for loaded engines they
    are built at load time. ``kind`` is the deprecated pre-registry
    enum, accepted and stored but never consulted.
    """

    name: str
    schema: Schema
    kind: TableKind | None = None
    path: str = ""
    format: str = ""
    options: dict = field(default_factory=dict)
    external: bool = False
    access: object | None = None
    stats: "TableStats | None" = None
    row_count_hint: int | None = None
    extra: dict = field(default_factory=dict)
    #: Bumped when the *data* under the table visibly changed (a raw
    #: file was rewritten or appended to, a partition invalidated).
    #: Statistics versions only move when stats are (re)installed, which
    #: happens lazily at the next scan — too late for plan-time folds
    #: (zone-map aggregates, rollup routing) that must be invalidated
    #: the moment the change is detected by ``refresh()``.
    data_version: int = 0

    @property
    def stats_epoch(self) -> int:
        """Version of this table's statistics (0 = none yet). Moves
        whenever a scan's §4.4 collection — or a loaded engine's
        ANALYZE — installs or augments stats, and whenever a refresh
        detects the underlying data changed (``data_version``)."""
        stats_version = self.stats.version if self.stats is not None else 0
        return stats_version + self.data_version


class Catalog:
    """Case-insensitive table namespace for one engine."""

    def __init__(self):
        self._tables: dict[str, TableInfo] = {}
        self._retired_stats_epoch = 0

    def register(self, info: TableInfo) -> TableInfo:
        key = info.name.lower()
        if key in self._tables:
            raise CatalogError(f"table already registered: {info.name!r}")
        self._tables[key] = info
        return info

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table: {name!r}")
        # Retire the dropped table's stats version *plus one* so the
        # catalog epoch strictly advances: plans cached before the drop
        # must re-plan on their next execution — binding the new access
        # method after a drop + re-register, or failing cleanly when
        # the table is simply gone — and later stats arrivals on other
        # tables can never sum back to a previously seen epoch.
        self._retired_stats_epoch += self._tables[key].stats_epoch + 1
        del self._tables[key]

    def rename(self, name: str, new_name: str) -> TableInfo:
        """``ALTER TABLE name RENAME TO new_name``: re-key the entry in
        place. The :class:`TableInfo` object (access method, stats,
        auxiliary structures) survives untouched — derived objects that
        hold it by identity (rollups) stay valid — but the catalog
        epoch is bumped so plans cached under the old name re-plan and
        fail cleanly instead of reading a phantom binding."""
        info = self.get(name)
        key = name.lower()
        new_key = new_name.lower()
        if new_key != key and new_key in self._tables:
            raise CatalogError(
                f"table already registered: {new_name!r}")
        del self._tables[key]
        info.name = new_name
        self._tables[new_key] = info
        self.bump_epoch()
        return info

    def bump_epoch(self) -> None:
        """Strictly advance :attr:`stats_epoch` without touching any
        table's own statistics: renames and derived-object changes
        (CREATE/DROP ROLLUP) invalidate cached plans this way."""
        self._retired_stats_epoch += 1

    def get(self, name: str) -> TableInfo:
        info = self._tables.get(name.lower())
        if info is None:
            raise CatalogError(f"unknown table: {name!r}")
        return info

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[TableInfo]:
        return list(self._tables.values())

    @property
    def stats_epoch(self) -> int:
        """Catalog-wide statistics epoch: changes whenever any table's
        statistics change (PostgresRaw collects them adaptively during
        scans, §4.4 — i.e. *after* plans may already be cached).
        Prepared statements snapshot this at plan time and re-plan when
        it moves, so optimizer decisions frozen before statistics
        existed are revisited once they arrive. Monotone: dropped
        tables' versions are retired into a floor, never subtracted."""
        return self._retired_stats_epoch + sum(
            info.stats_epoch for info in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has(name)

    def __len__(self) -> int:
        return len(self._tables)
