"""Vectorized predicate compilation for the batch scan.

The planner compiles pushed-down WHERE conjuncts twice: once into the
row closure every engine path understands (``ScanPredicate.fn``), and —
when every conjunct has a vectorizable shape — into a mask function
over NumPy columns (``ScanPredicate.vector_fn``). The batch scan uses
the mask function when the referenced columns materialized as typed
arrays; otherwise it falls back to the row closure, so vectorization is
purely an optimization and never changes results.

Supported shapes (everything else falls back): comparisons between a
column and a numeric literal (either side), numeric BETWEEN, and AND
of such terms. SQL three-valued logic is preserved by masking NULL
rows out of every term's result — a comparison with NULL is not TRUE,
which is all a WHERE clause observes.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sql.ast_nodes import Between, BinaryOp, ColumnRef, Literal

#: columns -> (nrows,) bool mask; columns maps attr index -> np.ndarray,
#: nulls maps attr index -> bool ndarray (True where the value is NULL).
VectorFn = Callable[[dict, dict, int], np.ndarray]

_COMPARES = {
    "=": lambda col, lit: col == lit,
    "<>": lambda col, lit: col != lit,
    "<": lambda col, lit: col < lit,
    "<=": lambda col, lit: col <= lit,
    ">": lambda col, lit: col > lit,
    ">=": lambda col, lit: col >= lit,
}

_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _numeric_literal(node) -> Optional[float | int]:
    if isinstance(node, Literal) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _vectorize_conjunct(conjunct, resolver) -> Optional[tuple[int, Callable]]:
    """``(attr, term_fn)`` for one conjunct, or None if unsupported.
    ``term_fn(column) -> bool mask`` ignores NULL handling (the caller
    masks NULL rows out)."""
    if isinstance(conjunct, BinaryOp) and conjunct.op in _COMPARES:
        left_attr = resolver(conjunct.left)
        right_attr = resolver(conjunct.right)
        if left_attr is not None and right_attr is None:
            literal = _numeric_literal(conjunct.right)
            if literal is None:
                return None
            op = _COMPARES[conjunct.op]
            return left_attr, (lambda col, _op=op, _l=literal: _op(col, _l))
        if right_attr is not None and left_attr is None:
            literal = _numeric_literal(conjunct.left)
            if literal is None:
                return None
            op = _COMPARES[_FLIPPED[conjunct.op]]
            return right_attr, (lambda col, _op=op, _l=literal: _op(col, _l))
        return None
    if isinstance(conjunct, Between) and not conjunct.negated:
        attr = resolver(conjunct.operand)
        if attr is None:
            return None
        low = _numeric_literal(conjunct.low)
        high = _numeric_literal(conjunct.high)
        if low is None or high is None:
            return None
        return attr, (lambda col, _lo=low, _hi=high:
                      (col >= _lo) & (col <= _hi))
    return None


def build_vector_predicate(conjuncts, resolver) -> Optional[VectorFn]:
    """A mask function equivalent to ``AND`` of ``conjuncts``, or None
    when any conjunct has a shape the vectorizer does not cover.

    ``resolver`` maps a :class:`ColumnRef` AST node to a file-attribute
    index (or None) — the same resolver the row compiler uses.
    """
    terms: list[tuple[int, Callable]] = []
    for conjunct in conjuncts:
        def _resolve(node):
            return resolver(node) if isinstance(node, ColumnRef) else None
        term = _vectorize_conjunct(conjunct, _resolve)
        if term is None:
            return None
        terms.append(term)

    def evaluate(columns: dict, nulls: dict, nrows: int) -> np.ndarray:
        mask = np.ones(nrows, dtype=bool)
        for attr, term_fn in terms:
            column = columns.get(attr)
            if column is None:
                raise KeyError(attr)
            mask &= term_fn(column)
            null_mask = nulls.get(attr)
            if null_mask is not None:
                mask &= ~null_mask
        return mask

    return evaluate
