"""Vectorized predicate and value compilation for columnar execution.

Two compilers live here:

* :func:`build_vector_predicate` turns a conjunct list into a *mask
  function* over NumPy columns. The planner compiles pushed-down WHERE
  conjuncts twice: once into the row closure every engine path
  understands (``ScanPredicate.fn``) and — when every conjunct has a
  vectorizable shape — into this mask builder
  (``ScanPredicate.vector_fn``). The same builder serves the
  operator-level :class:`~repro.sql.operators.FilterOp` (residual and
  HAVING predicates) with a layout-based resolver.
* :func:`build_vector_value` turns a *value* expression (aggregate
  argument, GROUP BY key) into a column function — plain columns,
  numeric literals, and arithmetic over them — so grouped aggregation
  can run without materializing rows.

Supported predicate shapes: comparisons between a column and a
constant expression (either side; parameters included — see below),
BETWEEN / NOT BETWEEN, IN / NOT IN lists, IS [NOT] NULL, and arbitrary
AND/OR trees of such terms. Constants may be any parameter-free,
column-free expression (``DATE '1998-12-01' - INTERVAL '90' DAY``
folds at evaluation time) **or contain ``?`` placeholders**: parameter
slots are read when the mask is built, so a prepared statement re-binds
and stays on the batch path — the mask is simply rebuilt per
execution, which is once per scanned block.

Columns arrive as either dtype-tagged arrays (int64/float64/bool,
int32/int64 day numbers for dates) or object arrays of Python values;
every term handles both, computing over the non-NULL subset for object
columns. SQL three-valued logic is preserved in *is-TRUE* form: each
term's mask is True exactly where the row predicate would return
``True`` — which is all a WHERE clause observes — so AND/OR compose as
``&``/``|`` without tracking unknowns separately.
"""

from __future__ import annotations

import datetime
from typing import Callable, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    InList,
    IntervalLiteral,
    IsNull,
    UnaryOp,
)
from repro.sql.batch import object_nulls
from repro.sql.expressions import (
    _children,
    collect_column_refs,
    compile_expr,
)

#: (columns, nulls, nrows) -> (nrows,) bool is-TRUE mask. ``columns``
#: maps a column slot (file-attribute index at scan level, batch column
#: index at operator level) to an ndarray via ``[]``; ``nulls`` maps a
#: slot to a bool NULL mask (or None) via ``.get``.
VectorFn = Callable[[dict, dict, int], np.ndarray]

#: (columns, nulls, nrows) -> (values ndarray | scalar, null mask | None)
ValueFn = Callable[[dict, dict, int], tuple]

_COMPARES = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
}


def _const_fn(node) -> Optional[Callable[[], object]]:
    """A zero-argument closure evaluating a column-free expression —
    literals, constant arithmetic, and ``?`` parameter slots (read at
    call time, so re-binding a prepared statement re-evaluates). None
    when the expression references columns or cannot compile."""
    if collect_column_refs(node):
        return None
    try:
        fn = compile_expr(node, lambda _n: None)
    except Exception:
        return None
    return lambda _fn=fn: _fn(())


def _null_of(column: np.ndarray, mask: Optional[np.ndarray],
             ) -> Optional[np.ndarray]:
    """Resolve a column's NULL mask: trust the explicit mask; derive
    one for object columns; typed columns without a mask have none."""
    if mask is not None:
        return mask
    if column.dtype == object:
        computed = object_nulls(column)
        return computed if computed.any() else None
    return None


def _mask_compare(column: np.ndarray, null_mask: Optional[np.ndarray],
                  op: str, value, nrows: int) -> np.ndarray:
    """is-TRUE mask of ``column <op> value`` (NULL rows are False)."""
    if value is None:
        return np.zeros(nrows, dtype=bool)
    if column.dtype == object:
        out = np.zeros(nrows, dtype=bool)
        if null_mask is not None and null_mask.any():
            valid = np.flatnonzero(~null_mask)
            if len(valid):
                out[valid] = np.asarray(
                    _COMPARES[op](column[valid], value), dtype=bool)
        else:
            out[:] = np.asarray(_COMPARES[op](column, value), dtype=bool)
        return out
    if isinstance(value, datetime.date):
        if np.issubdtype(column.dtype, np.integer):
            value = value.toordinal()  # int-day date columns
        else:
            value = None
    if value is None or not isinstance(value, (int, float, np.integer,
                                               np.floating)):
        # Type-mismatched equality mirrors Python: never equal.
        if op == "=":
            out = np.zeros(nrows, dtype=bool)
        elif op == "<>":
            out = np.ones(nrows, dtype=bool)
        else:
            raise TypeError(
                f"cannot order-compare typed column with {value!r}")
    else:
        out = _COMPARES[op](column, value)
    if null_mask is not None:
        out = out & ~null_mask
    return out


def _valid_mask(column: np.ndarray, null_mask: Optional[np.ndarray],
                nrows: int) -> np.ndarray:
    if null_mask is None:
        return np.ones(nrows, dtype=bool)
    return ~null_mask


def _vectorize(node, resolver) -> Optional[VectorFn]:
    """An is-TRUE mask function for one predicate subtree, or None."""
    if isinstance(node, BinaryOp) and node.op in ("and", "or"):
        left = _vectorize(node.left, resolver)
        right = _vectorize(node.right, resolver)
        if left is None or right is None:
            return None
        if node.op == "and":
            return lambda c, u, n: left(c, u, n) & right(c, u, n)
        return lambda c, u, n: left(c, u, n) | right(c, u, n)

    if isinstance(node, BinaryOp) and node.op in _COMPARES:
        left_slot = resolver(node.left)
        right_slot = resolver(node.right)
        if left_slot is not None and right_slot is None:
            slot, op, const = left_slot, node.op, _const_fn(node.right)
        elif right_slot is not None and left_slot is None:
            slot, op, const = (right_slot, _FLIPPED[node.op],
                               _const_fn(node.left))
        else:
            return None
        if const is None:
            return None

        def _compare(columns, nulls, nrows, _s=slot, _op=op, _c=const):
            column = columns[_s]
            return _mask_compare(column, _null_of(column, nulls.get(_s)),
                                 _op, _c(), nrows)
        return _compare

    if isinstance(node, Between):
        slot = resolver(node.operand)
        if slot is None:
            return None
        low = _const_fn(node.low)
        high = _const_fn(node.high)
        if low is None or high is None:
            return None
        negated = node.negated

        def _between(columns, nulls, nrows, _s=slot, _lo=low, _hi=high,
                     _neg=negated):
            column = columns[_s]
            null_mask = _null_of(column, nulls.get(_s))
            lo, hi = _lo(), _hi()
            if lo is None or hi is None:
                return np.zeros(nrows, dtype=bool)
            inside = (_mask_compare(column, null_mask, ">=", lo, nrows)
                      & _mask_compare(column, null_mask, "<=", hi, nrows))
            if not _neg:
                return inside
            return _valid_mask(column, null_mask, nrows) & ~inside
        return _between

    if isinstance(node, InList):
        slot = resolver(node.operand)
        if slot is None:
            return None
        items = [_const_fn(item) for item in node.items]
        if any(item is None for item in items):
            return None
        negated = node.negated

        def _in(columns, nulls, nrows, _s=slot, _items=items,
                _neg=negated):
            column = columns[_s]
            null_mask = _null_of(column, nulls.get(_s))
            contained = np.zeros(nrows, dtype=bool)
            for item in _items:
                contained |= _mask_compare(column, null_mask, "=",
                                           item(), nrows)
            if not _neg:
                return contained
            return _valid_mask(column, null_mask, nrows) & ~contained
        return _in

    if isinstance(node, IsNull):
        slot = resolver(node.operand)
        if slot is None:
            return None
        negated = node.negated

        def _is_null(columns, nulls, nrows, _s=slot, _neg=negated):
            column = columns[_s]
            null_mask = _null_of(column, nulls.get(_s))
            if null_mask is None:
                null_mask = np.zeros(nrows, dtype=bool)
            return ~null_mask if _neg else null_mask.copy()
        return _is_null

    return None


def build_vector_predicate(conjuncts, resolver) -> Optional[VectorFn]:
    """A mask function equivalent to ``AND`` of ``conjuncts`` (in
    is-TRUE terms), or None when any conjunct has a shape the
    vectorizer does not cover.

    ``resolver`` maps an AST node to a column slot (or None). At scan
    level that is the file-attribute resolver the row compiler uses
    (hits only :class:`ColumnRef`); at operator level it is a batch
    layout lookup, which also resolves pre-computed aggregates.
    """
    terms: list[VectorFn] = []
    for conjunct in conjuncts:
        def _resolve(n):
            try:
                return resolver(n)
            except Exception:
                return None
        term = _vectorize(conjunct, _resolve)
        if term is None:
            return None
        terms.append(term)

    def evaluate(columns: dict, nulls: dict, nrows: int) -> np.ndarray:
        mask = np.ones(nrows, dtype=bool)
        for term in terms:
            mask &= term(columns, nulls, nrows)
        return mask

    return evaluate


# ---------------------------------------------------------------------------
# Value vectorization (aggregate arguments, GROUP BY keys)
# ---------------------------------------------------------------------------
def _combine_nulls(left: Optional[np.ndarray],
                   right: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if left is None:
        return right
    if right is None:
        return left
    return left | right


def _contains_interval(expr) -> bool:
    """INTERVAL arithmetic needs the row path's ``_arith`` special
    cases (``Interval`` defines no ``__radd__``); the vectorizer
    refuses such expressions so the operator falls back to rows."""
    if isinstance(expr, IntervalLiteral):
        return True
    return any(_contains_interval(child) for child in _children(expr))


def _guard_division(divisor) -> None:
    """Mirror the row path's explicit zero check (ExecutionError, not a
    silent inf/nan under a NumPy warning)."""
    if isinstance(divisor, np.ndarray):
        zero = np.any(divisor == 0)
    else:
        zero = divisor == 0
    if zero:
        raise ExecutionError("division by zero")


def build_vector_value(expr, resolver) -> Optional[ValueFn]:
    """Compile a value expression to ``fn(columns, nulls, nrows) ->
    (values, null_mask)``. ``values`` is a column-shaped ndarray (or a
    plain scalar for constants, to be broadcast by the consumer);
    ``null_mask`` is a bool ndarray or None. Covers resolved columns,
    constant subexpressions, unary minus, and ``+ - * /`` arithmetic —
    enough for TPC-H Q1-style ``sum(price * (1 - discount))`` shapes.
    Returns None for anything else (the operator falls back to rows).
    """
    slot = None
    try:
        slot = resolver(expr)
    except Exception:
        slot = None
    if slot is not None:
        def _column(columns, nulls, nrows, _s=slot):
            column = columns[_s]
            return column, _null_of(column, nulls.get(_s))
        return _column

    const = _const_fn(expr)
    if const is not None:
        def _const(columns, nulls, nrows, _c=const):
            return _c(), None
        return _const

    if isinstance(expr, BinaryOp) and expr.op in _ARITH:
        if _contains_interval(expr):
            return None
        left = build_vector_value(expr.left, resolver)
        right = build_vector_value(expr.right, resolver)
        if left is None or right is None:
            return None
        ufunc = _ARITH[expr.op]
        is_division = expr.op == "/"

        def _arith(columns, nulls, nrows, _l=left, _r=right, _u=ufunc,
                   _div=is_division):
            lv, ln = _l(columns, nulls, nrows)
            rv, rn = _r(columns, nulls, nrows)
            null_mask = _combine_nulls(ln, rn)
            if null_mask is not None and null_mask.any():
                out = np.empty(nrows, dtype=object)
                valid = np.flatnonzero(~null_mask)
                lv_sub = lv[valid] if isinstance(lv, np.ndarray) else lv
                rv_sub = rv[valid] if isinstance(rv, np.ndarray) else rv
                if _div:
                    _guard_division(rv_sub)
                out[valid] = _u(lv_sub, rv_sub)
                return out, null_mask
            if _div:
                _guard_division(rv)
            return _u(lv, rv), null_mask
        return _arith

    if isinstance(expr, UnaryOp) and expr.op == "-":
        operand = build_vector_value(expr.operand, resolver)
        if operand is None:
            return None

        def _neg(columns, nulls, nrows, _o=operand):
            value, null_mask = _o(columns, nulls, nrows)
            if null_mask is not None and null_mask.any():
                out = np.empty(nrows, dtype=object)
                valid = np.flatnonzero(~null_mask)
                out[valid] = np.negative(value[valid])
                return out, null_mask
            return np.negative(value), null_mask
        return _neg

    return None
