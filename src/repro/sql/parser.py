"""Recursive-descent SQL parser producing :mod:`repro.sql.ast_nodes`."""

from __future__ import annotations

from repro.errors import ParseError, TypeError_
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    AlterTableRename,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnDef,
    ColumnRef,
    CreateRollup,
    CreateTable,
    DescribeTable,
    DropRollup,
    DropTable,
    Exists,
    Explain,
    Expr,
    FuncCall,
    InList,
    IntervalLiteral,
    IsNull,
    LikeExpr,
    Literal,
    OrderItem,
    ParamBinding,
    Parameter,
    Select,
    SelectItem,
    ShowTables,
    Star,
    Statement,
    TableRef,
    UnaryOp,
)
from repro.sql.datatypes import DATE, type_from_sql
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
_INTERVAL_UNITS = {"day", "month", "year"}


def parse(sql: str) -> Statement:
    """Parse one statement (trailing ``;`` allowed): ``SELECT ...``,
    ``EXPLAIN SELECT ...``, or DDL — ``CREATE [EXTERNAL] TABLE``,
    ``DROP TABLE``, ``SHOW TABLES``, ``DESCRIBE``. ``?`` placeholders
    in queries become :class:`~repro.sql.ast_nodes.Parameter` nodes
    sharing the statement's
    :class:`~repro.sql.ast_nodes.ParamBinding`."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar/boolean expression (used by tests)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._binding = ParamBinding()
        self._param_count = 0

    # -- token plumbing -----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *names: str) -> Token | None:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.advance()
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected {'/'.join(names).upper()}, got {token.value!r}",
                token)
        return token

    def accept_punct(self, value: str) -> bool:
        if self.peek().type == TokenType.PUNCT and self.peek().value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        token = self.advance()
        if token.type != TokenType.PUNCT or token.value != value:
            raise ParseError(f"expected {value!r}, got {token.value!r}", token)

    def accept_operator(self, *values: str) -> Token | None:
        token = self.peek()
        if token.type == TokenType.OPERATOR and token.value in values:
            return self.advance()
        return None

    def expect_eof(self) -> None:
        self.accept_punct(";")
        token = self.peek()
        if token.type != TokenType.EOF:
            raise ParseError(f"unexpected trailing input: {token.value!r}",
                             token)

    # -- statement ---------------------------------------------------------
    def parse_statement(self) -> Statement:
        head = self.peek()
        if head.is_keyword("create"):
            return self._parse_create()
        if head.is_keyword("drop"):
            return self._parse_drop()
        if head.is_keyword("show"):
            self.advance()
            self.expect_keyword("tables")
            self.expect_eof()
            return ShowTables()
        if head.is_keyword("describe"):
            self.advance()
            name = self._expect_table_name()
            self.expect_eof()
            return DescribeTable(name)
        if head.is_keyword("alter"):
            return self._parse_alter()
        explain = bool(self.accept_keyword("explain"))
        select = self.parse_select()
        self.expect_eof()
        select.param_count = self._param_count
        select.binding = self._binding
        return Explain(select) if explain else select

    # -- DDL ---------------------------------------------------------------
    def _expect_table_name(self) -> str:
        token = self.advance()
        if token.type != TokenType.IDENT:
            raise ParseError(
                f"expected table name, got {token.value!r} at position "
                f"{token.position}", token)
        return token.value

    def _if_clause(self, *tail: str) -> bool:
        """``IF NOT EXISTS`` / ``IF EXISTS`` after TABLE; a lone or
        misspelled IF clause is refused with the offending position."""
        if not self.accept_keyword("if"):
            return False
        for expected in tail:
            token = self.peek()
            if not self.accept_keyword(expected):
                raise ParseError(
                    f"expected {' '.join(tail).upper()} after IF, got "
                    f"{token.value!r} at position {token.position}", token)
        return True

    def _parse_create(self) -> CreateTable | CreateRollup:
        self.expect_keyword("create")
        external = bool(self.accept_keyword("external"))
        if self.peek().is_keyword("rollup"):
            if external:
                raise ParseError(
                    "EXTERNAL cannot be combined with CREATE ROLLUP",
                    self.peek())
            return self._parse_create_rollup()
        self.expect_keyword("table")
        if_not_exists = self._if_clause("not", "exists")
        name = self._expect_table_name()
        if self.peek().is_keyword("as"):
            as_token = self.advance()
            if external:
                raise ParseError(
                    f"CREATE EXTERNAL TABLE cannot take AS SELECT "
                    f"(position {as_token.position})", as_token)
            select = self._parse_ctas_select(as_token)
            self.expect_eof()
            return CreateTable(name=name, if_not_exists=if_not_exists,
                               as_select=select)
        columns: list[ColumnDef] = []
        if self.accept_punct("("):
            columns.append(self._parse_column_def())
            while self.accept_punct(","):
                columns.append(self._parse_column_def())
            self.expect_punct(")")
        fmt = None
        if self.accept_keyword("using"):
            token = self.advance()
            if token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise ParseError(
                    f"expected format name after USING, got "
                    f"{token.value!r} at position {token.position}", token)
            fmt = token.value.lower()
        options: dict = {}
        if self.accept_keyword("options"):
            self.expect_punct("(")
            self._parse_option(options)
            while self.accept_punct(","):
                self._parse_option(options)
            self.expect_punct(")")
        self.expect_eof()
        return CreateTable(name=name, columns=tuple(columns), format=fmt,
                           options=options, external=external,
                           if_not_exists=if_not_exists)

    def _parse_column_def(self) -> ColumnDef:
        name_token = self.advance()
        if name_token.type == TokenType.KEYWORD:
            # A keyword-named column could be declared but never
            # referenced in a SELECT (expressions require IDENT), so
            # refuse it here with a position instead of there.
            raise ParseError(
                f"{name_token.value!r} is a reserved word and cannot "
                f"name a column (position {name_token.position})",
                name_token)
        if name_token.type != TokenType.IDENT:
            raise ParseError(
                f"expected column name, got {name_token.value!r} at "
                f"position {name_token.position}", name_token)
        type_token = self.advance()
        if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise ParseError(
                f"expected a type for column {name_token.value!r}, got "
                f"{type_token.value!r} at position {type_token.position}",
                type_token)
        args: list[int] = []
        if self.accept_punct("("):
            while True:
                arg = self.advance()
                if arg.type != TokenType.NUMBER or "." in arg.value:
                    raise ParseError(
                        f"type arguments must be integers, got "
                        f"{arg.value!r} at position {arg.position}", arg)
                args.append(int(arg.value))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        try:
            dtype = type_from_sql(type_token.value, tuple(args))
        except TypeError_ as exc:
            raise ParseError(
                f"{exc} at position {type_token.position}",
                type_token) from exc
        nullable = True
        if self.accept_keyword("not"):
            self.expect_keyword("null")
            nullable = False
        else:
            self.accept_keyword("null")
        return ColumnDef(name_token.value, dtype, nullable)

    def _parse_option(self, options: dict) -> None:
        key_token = self.advance()
        if key_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise ParseError(
                f"expected option name, got {key_token.value!r} at "
                f"position {key_token.position}", key_token)
        key = key_token.value.lower()
        if key in options:
            raise ParseError(
                f"duplicate option {key!r} at position "
                f"{key_token.position}", key_token)
        value_token = self.advance()
        if value_token.type == TokenType.STRING:
            value: object = value_token.value
        elif value_token.type == TokenType.NUMBER:
            value = (float(value_token.value)
                     if "." in value_token.value else int(value_token.value))
        elif value_token.is_keyword("true", "false"):
            value = value_token.value == "true"
        else:
            raise ParseError(
                f"option {key!r} needs a quoted string, number or "
                f"boolean value, got {value_token.value!r} at position "
                f"{value_token.position}", value_token)
        options[key] = value

    def _parse_drop(self) -> DropTable | DropRollup:
        self.expect_keyword("drop")
        if self.accept_keyword("rollup"):
            if_exists = self._if_clause("exists")
            name = self._expect_table_name()
            self.expect_eof()
            return DropRollup(name, if_exists=if_exists)
        self.expect_keyword("table")
        if_exists = self._if_clause("exists")
        name = self._expect_table_name()
        self.expect_eof()
        return DropTable(name, if_exists=if_exists)

    def _parse_alter(self) -> AlterTableRename:
        self.expect_keyword("alter")
        self.expect_keyword("table")
        if_exists = self._if_clause("exists")
        name = self._expect_table_name()
        self.expect_keyword("rename")
        self.expect_keyword("to")
        new_name = self._expect_table_name()
        self.expect_eof()
        return AlterTableRename(name, new_name, if_exists=if_exists)

    def _parse_ctas_select(self, as_token: Token) -> Select:
        select = self.parse_select()
        if self._param_count:
            raise ParseError(
                f"CREATE TABLE AS SELECT cannot take ? parameters "
                f"(position {as_token.position})", as_token)
        select.param_count = 0
        select.binding = self._binding
        return select

    def _parse_create_rollup(self) -> CreateRollup:
        self.expect_keyword("rollup")
        if_not_exists = self._if_clause("not", "exists")
        name = self._expect_table_name()
        self.expect_keyword("on")
        table = self._expect_table_name()
        self.expect_punct("(")
        dims = [self._expect_dim_name()]
        while self.accept_punct(","):
            dims.append(self._expect_dim_name())
        self.expect_punct(")")
        self.expect_keyword("agg")
        self.expect_punct("(")
        aggs = [self._parse_rollup_agg()]
        while self.accept_punct(","):
            aggs.append(self._parse_rollup_agg())
        self.expect_punct(")")
        self.expect_eof()
        return CreateRollup(name=name, table=table, dims=tuple(dims),
                            aggs=tuple(aggs), if_not_exists=if_not_exists)

    def _expect_dim_name(self) -> str:
        token = self.advance()
        if token.type != TokenType.IDENT:
            raise ParseError(
                f"expected dimension column name, got {token.value!r} at "
                f"position {token.position}", token)
        return token.value

    def _parse_rollup_agg(self) -> FuncCall:
        token = self.peek()
        expr = self.parse_expr()
        if not isinstance(expr, FuncCall) or not expr.is_aggregate:
            raise ParseError(
                f"AGG list expects aggregate calls "
                f"({'/'.join(sorted(AGGREGATE_FUNCTIONS))}), got "
                f"{token.value!r} at position {token.position}", token)
        if expr.distinct:
            raise ParseError(
                f"DISTINCT aggregates cannot be rolled up (position "
                f"{token.position})", token)
        if len(expr.args) != 1 or not isinstance(
                expr.args[0], (ColumnRef, Star)):
            raise ParseError(
                f"rollup aggregates take a single column (or * for "
                f"count), got one at position {token.position}", token)
        if isinstance(expr.args[0], Star) and expr.name != "count":
            raise ParseError(
                f"only count(*) may aggregate *, not {expr.name}(*) "
                f"(position {token.position})", token)
        return expr

    def parse_select(self) -> Select:
        self.expect_keyword("select")
        select = Select()
        select.items = self._parse_select_items()
        self.expect_keyword("from")
        extra_conjuncts: list[Expr] = []
        select.tables = self._parse_table_refs(extra_conjuncts)
        if self.accept_keyword("where"):
            select.where = self.parse_expr()
        for conjunct in extra_conjuncts:
            select.where = (conjunct if select.where is None
                            else BinaryOp("and", select.where, conjunct))
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            select.group_by = self._parse_expr_list()
        if self.accept_keyword("having"):
            select.having = self.parse_expr()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            select.order_by = self._parse_order_items()
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.type != TokenType.NUMBER or "." in token.value:
                raise ParseError("LIMIT expects an integer", token)
            select.limit = int(token.value)
        return select

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self.accept_operator("*"):
            return SelectItem(Star())
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            token = self.advance()
            if token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise ParseError("expected alias after AS", token)
            alias = token.value
        elif self.peek().type == TokenType.IDENT:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _parse_table_refs(self, extra_conjuncts: list[Expr]) -> list[TableRef]:
        tables = [self._parse_table_ref()]
        while True:
            if self.accept_punct(","):
                tables.append(self._parse_table_ref())
                continue
            if self.peek().is_keyword("join", "inner"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                tables.append(self._parse_table_ref())
                self.expect_keyword("on")
                extra_conjuncts.append(self.parse_expr())
                continue
            return tables

    def _parse_table_ref(self) -> TableRef:
        token = self.advance()
        if token.type != TokenType.IDENT:
            raise ParseError(f"expected table name, got {token.value!r}",
                             token)
        alias = None
        if self.accept_keyword("as"):
            alias = self.advance().value
        elif self.peek().type == TokenType.IDENT:
            alias = self.advance().value
        return TableRef(token.value, alias)

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self.parse_expr()]
        while self.accept_punct(","):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_items(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            descending = False
            if self.accept_keyword("desc"):
                descending = True
            else:
                self.accept_keyword("asc")
            items.append(OrderItem(expr, descending))
            if not self.accept_punct(","):
                return items

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        op_token = self.accept_operator(*_COMPARISON_OPS)
        if op_token:
            return BinaryOp(op_token.value, left, self._parse_additive())
        negated = bool(self.accept_keyword("not"))
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            items = tuple(self._parse_expr_list())
            self.expect_punct(")")
            return InList(left, items, negated)
        if self.accept_keyword("like"):
            token = self.advance()
            if token.type != TokenType.STRING:
                raise ParseError("LIKE expects a string pattern", token)
            return LikeExpr(left, token.value, negated)
        if negated:
            raise ParseError("NOT must be followed by BETWEEN/IN/LIKE here",
                             self.peek())
        if self.accept_keyword("is"):
            is_negated = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            return IsNull(left, is_negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.accept_operator("+", "-")
            if not token:
                return left
            left = BinaryOp(token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.accept_operator("*", "/")
            if not token:
                return left
            left = BinaryOp(token.value, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        if self.accept_operator("-"):
            return UnaryOp("-", self._parse_unary())
        self.accept_operator("+")
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.type == TokenType.NUMBER:
            self.advance()
            if "." in token.value or "e" in token.value or "E" in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.type == TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.is_keyword("date"):
            self.advance()
            value = self.advance()
            if value.type != TokenType.STRING:
                raise ParseError("DATE expects a string literal", value)
            return Literal(DATE.parse(value.value))
        if token.is_keyword("interval"):
            self.advance()
            value = self.advance()
            if value.type != TokenType.STRING:
                raise ParseError("INTERVAL expects a quoted amount", value)
            unit = self.advance()
            if unit.value not in _INTERVAL_UNITS:
                raise ParseError(f"unknown interval unit {unit.value!r}", unit)
            return IntervalLiteral(int(value.value), unit.value)
        if token.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            subquery = self.parse_select()
            self.expect_punct(")")
            return Exists(subquery)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.type == TokenType.PUNCT and token.value == "?":
            self.advance()
            param = Parameter(self._param_count, self._binding)
            self._param_count += 1
            return param
        if token.type == TokenType.PUNCT and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type == TokenType.IDENT:
            return self._parse_identifier()
        raise ParseError(f"unexpected token {token.value!r}", token)

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise ParseError("CASE needs at least one WHEN", self.peek())
        else_result = None
        if self.accept_keyword("else"):
            else_result = self.parse_expr()
        self.expect_keyword("end")
        return CaseExpr(tuple(whens), else_result)

    def _parse_identifier(self) -> Expr:
        name = self.advance().value
        if self.accept_punct("."):
            column = self.advance()
            if column.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise ParseError("expected column after '.'", column)
            return ColumnRef(column.value, table=name)
        if self.peek().type == TokenType.PUNCT and self.peek().value == "(":
            self.advance()
            distinct = bool(self.accept_keyword("distinct"))
            args: tuple
            if self.accept_operator("*"):
                args = (Star(),)
            elif (self.peek().type == TokenType.PUNCT
                    and self.peek().value == ")"):
                args = ()
            else:
                args = tuple(self._parse_expr_list())
            self.expect_punct(")")
            return FuncCall(name.lower(), args, distinct)
        return ColumnRef(name)
